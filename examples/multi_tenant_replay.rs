//! Multi-tenant trace replay: the production-traffic pipeline end to end.
//!
//! 1. Synthesize a small multi-tenant seed trace — three tenants with their
//!    own length distributions, arrival processes (diurnal, Poisson,
//!    MMPP-bursty), and priority classes.
//! 2. Round-trip it through the on-disk trace format (`to_file` /
//!    `from_file`) — the same path a real production trace would enter by.
//! 3. Amplify the seed by derived-stat resampling to the target request
//!    count, exactly how a 1k-line log becomes a million-request what-if.
//! 4. Replay on a cluster under the bounded-memory sketch quantile mode —
//!    routed through the global tier's weighted fair-share policy with a
//!    per-tenant KV quota on the bursty batch tenant — and report
//!    per-tenant latency/SLO/routing breakdowns.
//!
//! 5. Replay the same trace on the parallel sharded engine (estimator
//!    runtimes) twice — round-robin on the streaming fast path, then
//!    least-outstanding on the windowed speculate-and-verify path — assert
//!    both reports are byte-identical to the sequential engine's, and print
//!    the speculation counters (windows, mispredictions, rollbacks) and any
//!    fallback reason.
//! 6. With `VIDUR_MERGEABLE=1`, rerun the sharded replay in the mergeable
//!    metrics mode — latency sketches fold inside the shards, only tier
//!    effects stream to the merger — assert the report is invariant across
//!    shard counts, and print the per-minute time-series table.
//! 7. With `VIDUR_FAULTS=1`, replay once more under an elastic fleet: a
//!    fault plan crashes and recovers one replica mid-run, degrades another
//!    into a straggler, and gracefully drains a third, while the SLO/queue
//!    autoscaler resizes the fleet — every displaced request requeues
//!    through the routing tier, and the report's churn/availability columns
//!    are printed.
//! 8. With `VIDUR_PREFIX=1`, synthesize a shared-prefix mix (two tenants
//!    reusing system prompts), arm the per-replica prefix-cache tier, and
//!    replay under KV-aware routing — the report's prefix hit-rate and
//!    per-tenant tokens-saved columns are printed and their accounting
//!    checked.
//!
//! Run with: `cargo run --release --example multi_tenant_replay`
//! (2 000 requests by default; set `VIDUR_FULL=1` for the 1M-request run,
//! or `VIDUR_REPLAY_REQUESTS=<n>` for any size; `VIDUR_SHARDS=<k>` picks
//! the shard count of step 5, default one per replica).

use vidur::prelude::*;

fn target_requests() -> usize {
    if let Ok(n) = std::env::var("VIDUR_REPLAY_REQUESTS") {
        return n.parse().expect("VIDUR_REPLAY_REQUESTS must be a number");
    }
    match std::env::var("VIDUR_FULL") {
        Ok(v) if v == "1" => 1_000_000,
        _ => 2_000,
    }
}

fn main() {
    // 1. Three tenants sharing the cluster, each with its own traffic shape.
    let mix = MultiTenantWorkload::new(
        "prod-mix",
        vec![
            TenantStream {
                tenant: "interactive".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Diurnal {
                    mean_qps: 2.0,
                    amplitude: 0.8,
                    period_secs: 600.0,
                },
                prefix: None,
            },
            TenantStream {
                tenant: "standard".into(),
                priority: 1,
                workload: TraceWorkload::bwb_4k(),
                arrivals: ArrivalProcess::Poisson { qps: 1.0 },
                prefix: None,
            },
            TenantStream {
                tenant: "batch".into(),
                priority: 2,
                workload: TraceWorkload::arxiv_4k(),
                arrivals: ArrivalProcess::Mmpp {
                    qps_base: 0.3,
                    qps_burst: 10.0,
                    mean_base_secs: 60.0,
                    mean_burst_secs: 10.0,
                },
                prefix: None,
            },
        ],
    );
    let mut rng = SimRng::new(42);
    let seed_trace = mix.generate(1_000, &mut rng);

    // 2. Round-trip through the on-disk format.
    let path = std::env::temp_dir().join(format!("vidur-replay-{}.vtrace", std::process::id()));
    seed_trace.to_file(&path).expect("write trace");
    let loaded = Trace::from_file(&path).expect("reload trace");
    assert_eq!(loaded, seed_trace, "trace format round-trips exactly");
    println!(
        "trace file : {} ({} requests, {} tenants, round-trip exact)",
        path.display(),
        loaded.len(),
        loaded.num_tenants()
    );
    let _ = std::fs::remove_file(&path);

    // 3. Amplify by derived-stat resampling.
    let n = target_requests();
    let trace = loaded.amplify(n, &mut rng);
    println!(
        "amplified  : {} → {} requests (fitted arrivals: {:?})",
        loaded.len(),
        trace.len(),
        loaded.fit_arrivals()
    );

    // 4. Replay under bounded-memory metrics with a latency SLO.
    let mut config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        6,
        SchedulerConfig::new(BatchPolicyKind::Vllm, 256),
    );
    config.quantile_mode = QuantileMode::Sketch;
    config.tenant_slo = Some(TenantSlo {
        ttft_secs: 2.0,
        e2e_per_token_secs: 0.5,
    });
    // Global tier: weighted fair-share routing (interactive weighs 2x) with
    // the bursty batch tenant capped at 40% of each replica's KV blocks.
    config.global_policy = GlobalPolicyKind::FairShare {
        max_outstanding: 96,
    };
    config.tenant_weights = vec![2.0, 1.0, 1.0];
    config.tenant_kv_quota = vec![1.0, 1.0, 0.4];
    println!("deployment : {}", config.label());
    let source = RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()));
    let report = ClusterSimulator::new(config, trace.clone(), source, 42).run();

    println!();
    println!(
        "completed  : {}/{} in {:.0} s simulated ({:.2} QPS, {} preemptions)",
        report.completed,
        report.num_requests,
        report.makespan_secs,
        report.throughput_qps,
        report.preemptions
    );
    println!();
    println!(
        "tenant       arrived completed  TTFT p50/p99 (s)   e2e p50/p99 (s)   SLO  deferred q-denied share"
    );
    for t in &report.per_tenant {
        println!(
            "{:<12} {:>7} {:>9}   {:>6.2} / {:>6.2}   {:>6.1} / {:>6.1}   {:>4.0}%  {:>8} {:>8} {:>5.2}",
            t.tenant,
            t.arrived,
            t.completed,
            t.ttft.p50,
            t.ttft.p99,
            t.e2e.p50,
            t.e2e.p99,
            t.slo_attainment.unwrap_or(0.0) * 100.0,
            t.deferred,
            t.quota_denied,
            t.fair_share_attainment.unwrap_or(0.0)
        );
    }
    assert_eq!(report.per_tenant.len(), 3);
    assert!(
        report.per_tenant.iter().all(|t| t.completed > 0),
        "every tenant must make progress"
    );
    let routed: u64 = report.per_tenant.iter().map(|t| t.routed).sum();
    assert_eq!(
        routed as usize, report.num_requests,
        "every request routes through the tier exactly once"
    );

    // 5. The parallel sharded engine, both fast paths: round-robin streams
    // pre-routed effects with no verification; least-outstanding reads the
    // live load view, so the sharded engine speculates window placements
    // and verifies each one at its exact sequential position. Either way
    // the contract holds: reports agree bit for bit, only wall-clock
    // changes.
    let shards: usize = std::env::var("VIDUR_SHARDS")
        .map(|v| v.parse().expect("VIDUR_SHARDS must be a number"))
        .unwrap_or(6);
    let mut sharded_config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        6,
        SchedulerConfig::new(BatchPolicyKind::Vllm, 256),
    );
    sharded_config.tenant_slo = Some(TenantSlo {
        ttft_secs: 2.0,
        e2e_per_token_secs: 0.5,
    });
    let est = vidur::simulator::onboard(
        &sharded_config.model,
        &sharded_config.parallelism,
        &sharded_config.sku,
        EstimatorKind::default(),
    );
    let est_source = RuntimeSource::Estimator((*est).clone());
    let timed_run = |policy: GlobalPolicyKind, shards: usize| {
        let mut cfg = sharded_config.clone();
        cfg.global_policy = policy;
        cfg.shards = shards;
        let started = std::time::Instant::now();
        let (report, stats) =
            ClusterSimulator::new(cfg, trace.clone(), est_source.clone(), 42).run_with_stats();
        (report, stats, started.elapsed())
    };
    let (seq_report, _, seq_wall) = timed_run(GlobalPolicyKind::RoundRobin, 1);
    let (shard_report, shard_stats, shard_wall) = timed_run(GlobalPolicyKind::RoundRobin, shards);
    assert_eq!(
        seq_report, shard_report,
        "sharded replay must be bit-identical to the sequential engine"
    );
    println!();
    println!(
        "sharded    : {} shards in {:.0} ms vs sequential {:.0} ms — reports bit-identical \
         ({} effects streamed)",
        shard_stats.shards,
        shard_wall.as_secs_f64() * 1e3,
        seq_wall.as_secs_f64() * 1e3,
        shard_stats.streamed_effects,
    );

    let (lo_seq, _, lo_seq_wall) = timed_run(GlobalPolicyKind::LeastOutstanding, 1);
    let (lo_shard, lo_stats, lo_shard_wall) = timed_run(GlobalPolicyKind::LeastOutstanding, shards);
    assert_eq!(
        lo_seq, lo_shard,
        "speculative sharded routing must be bit-identical to the sequential engine"
    );
    match lo_stats.fallback_reason {
        Some(reason) => println!("speculative: fell back to sequential ({reason})"),
        None => println!(
            "speculative: least-outstanding on {} shards in {:.0} ms vs sequential {:.0} ms — \
             {} windows, {} mispredictions, {} events rolled back",
            lo_stats.shards,
            lo_shard_wall.as_secs_f64() * 1e3,
            lo_seq_wall.as_secs_f64() * 1e3,
            lo_stats.spec_windows,
            lo_stats.mispredictions,
            lo_stats.rollback_events,
        ),
    }

    // 6. Mergeable metrics: fold the latency sketches inside the shards and
    // stream only tier effects to the merger. Reports are invariant under
    // the shard count (byte-identical to a one-shard run) and carry the
    // windowed time series.
    if std::env::var("VIDUR_MERGEABLE").as_deref() == Ok("1") {
        let mut mergeable_config = sharded_config.clone();
        mergeable_config.quantile_mode = QuantileMode::Mergeable;
        mergeable_config.timeseries = Some(TimeseriesConfig::per_minute());
        let timed_fold = |shards: usize| {
            let mut cfg = mergeable_config.clone();
            cfg.shards = shards;
            let started = std::time::Instant::now();
            let (report, stats) =
                ClusterSimulator::new(cfg, trace.clone(), est_source.clone(), 42).run_with_stats();
            (report, stats, started.elapsed())
        };
        let (one_shard, _, _) = timed_fold(1);
        let (fold_report, fold_stats, fold_wall) = timed_fold(shards);
        assert_eq!(
            one_shard, fold_report,
            "mergeable reports must be invariant across shard counts"
        );
        println!();
        println!(
            "mergeable  : {} shards in {:.0} ms, {} tier effects streamed (serial commit skipped), \
             ~{:.0} distinct tenants",
            fold_stats.shards,
            fold_wall.as_secs_f64() * 1e3,
            fold_stats.streamed_effects,
            fold_report.distinct_tenants_est.unwrap_or(0.0),
        );
        println!();
        println!("window (min)  completed  throughput (QPS)  TTFT p99 (s)  KV occupancy");
        for row in &fold_report.timeseries {
            println!(
                "{:>12.0}  {:>9}  {:>16.2}  {:>12.2}  {:>11.1}%",
                row.window_start_secs / 60.0,
                row.completed,
                row.throughput_qps,
                row.ttft_p99,
                row.kv_occupancy * 100.0,
            );
        }
    }

    // 7. Elastic fleet: the same replay surviving crashes, a straggler
    // episode, a graceful drain, and autoscaler-driven resizing. Nothing is
    // lost — displaced work requeues through the routing tier.
    if std::env::var("VIDUR_FAULTS").as_deref() == Ok("1") {
        let mut elastic_config = sharded_config.clone();
        elastic_config.faults.schedule = FaultSchedule::parse(
            "#vidur-faults v1\n\
             # replica 1 hard-crashes, replica 2 throttles to 2.5x slow,\n\
             # replica 3 is gracefully drained for maintenance; all recover.\n\
             20 crash 1\n\
             40 slow 2 2.5\n\
             60 drain 3\n\
             120 recover 1\n\
             160 restore 2\n\
             200 recover 3\n",
        )
        .expect("fault schedule parses");
        let mut spec = AutoscalerSpec::new(2, 8);
        spec.interval_secs = 15.0;
        elastic_config.autoscaler = Some(spec);
        let started = std::time::Instant::now();
        let report =
            ClusterSimulator::new(elastic_config, trace.clone(), est_source.clone(), 42).run();
        assert_eq!(
            report.completed, report.num_requests,
            "crashes and drains must not lose work"
        );
        println!();
        println!(
            "elastic    : {}/{} completed through the churn in {:.0} s simulated ({:.0} ms wall)",
            report.completed,
            report.num_requests,
            report.makespan_secs,
            started.elapsed().as_secs_f64() * 1e3,
        );
        println!(
            "churn      : {} crash-evicted, {} requeued, {} retries, {:.3} replica-hours",
            report.evicted_by_crash, report.requeued, report.retries, report.replica_hours,
        );
        let availability: Vec<String> = report
            .replica_availability
            .iter()
            .map(|a| format!("{:.2}", a))
            .collect();
        println!(
            "uptime     : [{}] per replica slot",
            availability.join(", ")
        );
    }

    // 8. Prefix caching + KV-aware routing: two tenants keep reusing their
    // system prompts, each replica caches the shared prefix blocks, and the
    // router steers repeats toward replicas that already hold them. The
    // report grows hit-rate / tokens-saved columns whose per-tenant splits
    // must sum to the totals.
    if std::env::var("VIDUR_PREFIX").as_deref() == Ok("1") {
        let prefix_mix = MultiTenantWorkload::new(
            "prefix-mix",
            vec![
                TenantStream {
                    tenant: "assistants".into(),
                    priority: 0,
                    workload: TraceWorkload::chat_1m(),
                    arrivals: ArrivalProcess::Poisson { qps: 3.0 },
                    prefix: Some(TenantPrefixConfig {
                        share_ratio: 0.9,
                        prefix_tokens: 256,
                        num_prefixes: 2,
                    }),
                },
                TenantStream {
                    tenant: "rag".into(),
                    priority: 1,
                    workload: TraceWorkload::bwb_4k(),
                    arrivals: ArrivalProcess::Poisson { qps: 1.5 },
                    prefix: Some(TenantPrefixConfig {
                        share_ratio: 1.0,
                        prefix_tokens: 512,
                        num_prefixes: 1,
                    }),
                },
            ],
        );
        let prefix_trace = prefix_mix.generate(n.min(2_000), &mut SimRng::new(7));
        let mut prefix_config = sharded_config.clone();
        prefix_config.global_policy = GlobalPolicyKind::KvAware;
        prefix_config.prefix_cache = Some(PrefixCacheConfig::default());
        let started = std::time::Instant::now();
        let report =
            ClusterSimulator::new(prefix_config, prefix_trace, est_source.clone(), 7).run();
        assert!(
            report.prefix_hit_rate > 0.0,
            "shared-prefix traffic must hit the cache"
        );
        let tenant_hits: u64 = report.per_tenant.iter().map(|t| t.prefix_hits).sum();
        let tenant_saved: u64 = report
            .per_tenant
            .iter()
            .map(|t| t.prefix_tokens_saved)
            .sum();
        assert_eq!(tenant_hits, report.prefix_hits, "hit splits sum to total");
        assert_eq!(
            tenant_saved, report.prefix_tokens_saved,
            "tokens-saved splits sum to total"
        );
        println!();
        println!(
            "prefix     : {:.1}% hit rate, {} hits, {} prefill tokens skipped ({:.0} ms wall)",
            report.prefix_hit_rate * 100.0,
            report.prefix_hits,
            report.prefix_tokens_saved,
            started.elapsed().as_secs_f64() * 1e3,
        );
        for t in &report.per_tenant {
            println!(
                "             {:<12} {:>6} hits  {:>8} tokens saved",
                t.tenant, t.prefix_hits, t.prefix_tokens_saved
            );
        }
    }
}
