//! What-if analysis for a decode-heavy translation service (BWB-4K):
//! how do SKU choice and batch size move cost when decodes dominate?
//! This reproduces the paper's §7.3 finding that the KV-heavy BWB workload
//! flips the optimal SKU and shrinks the optimal batch size.
//!
//! Run with: `cargo run --release --example translation_whatif`

use vidur::prelude::*;

fn evaluate(model: &ModelSpec, sku: GpuSku, batch: usize, base: &Trace) -> Option<(f64, f64)> {
    let config = ClusterConfig::new(
        model.clone(),
        sku,
        ParallelismConfig::new(4, 1),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, batch),
    );
    config.memory_plan().ok()?;
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    let params = CapacityParams {
        bisect_iters: 5,
        ..CapacityParams::default()
    };
    let mut ledger = CostLedger::new();
    let cap = find_capacity(
        &config,
        base,
        &params,
        &RuntimeSource::Estimator((*est).clone()),
        &mut ledger,
    )?;
    Some((
        cap.capacity_qps / config.dollars_per_hour(),
        cap.report_at_capacity.kv_utilization,
    ))
}

fn main() {
    let model = ModelSpec::llama2_70b();
    let mut rng = SimRng::new(33);
    let bwb = TraceWorkload::bwb_4k().generate(120, &ArrivalProcess::Static, &mut rng);
    let chat = TraceWorkload::chat_1m().generate(120, &ArrivalProcess::Static, &mut rng);

    for (name, trace) in [("BWB-4K (translation)", &bwb), ("Chat-1M (chat)", &chat)] {
        println!("\nLLaMA2-70B, TP4, Sarathi-512 — workload: {name}");
        println!(
            "{:<10} {:>6} {:>12} {:>10}",
            "SKU", "batch", "QPS/$", "KV util"
        );
        for sku in [GpuSku::a100_80g(), GpuSku::h100_80g()] {
            for batch in [32, 64, 256] {
                match evaluate(&model, sku.clone(), batch, trace) {
                    Some((qpd, kv)) => println!(
                        "{:<10} {:>6} {:>12.4} {:>9.0}%",
                        sku.name,
                        batch,
                        qpd,
                        kv * 100.0
                    ),
                    None => println!("{:<10} {:>6} {:>12}", sku.name, batch, "infeasible"),
                }
            }
        }
    }
    println!(
        "\nExpected shape (paper §7.3): BWB's long decodes load the KV cache,\n\
         favouring smaller batches and cheaper A100s, while Chat-1M favours\n\
         larger batches on H100s — the optimal config is workload-dependent."
    );
}
