//! Pareto-frontier exploration for a document-summarization service
//! (Arxiv-4K: long prompts, short outputs — the workload the paper's intro
//! motivates with Microsoft M365 Copilot).
//!
//! Sweeps a reduced configuration space for InternLM-20B, prints the
//! SLO-compliant Pareto frontier of QPS-per-dollar vs TTFT-P90, and the
//! winning configuration — a miniature of the paper's Figure 5 analysis.
//!
//! Run with: `cargo run --release --example summarization_pareto`

use vidur::prelude::*;

fn main() {
    let model = ModelSpec::internlm_20b();
    let mut space = SearchSpace::reduced();
    space.max_gpus = 8;
    let configs = space.enumerate(&model);
    println!(
        "InternLM-20B / Arxiv-4K: evaluating {} configurations...",
        configs.len()
    );

    let mut rng = SimRng::new(21);
    let base = TraceWorkload::arxiv_4k().generate(150, &ArrivalProcess::Static, &mut rng);
    let params = CapacityParams {
        bisect_iters: 5,
        ..CapacityParams::default()
    };
    let outcome = run_search(&configs, &base, &params, EstimatorKind::default());
    println!(
        "feasible: {} configs, {} simulation runs, projected hardware cost ${:.0}",
        outcome.evaluations.len(),
        outcome.ledger.runs(),
        outcome.ledger.projected_dollars()
    );

    let slo = SloConstraints::default();
    let frontier = pareto_frontier(&outcome.evaluations, |e| e.ttft_p90);
    println!("\nPareto frontier (TTFT-P90 vs QPS/$):");
    println!(
        "{:<58} {:>9} {:>9} {:>10} {:>5}",
        "config", "QPS/$", "TTFT p90", "TBT p99", "SLO"
    );
    for &i in &frontier {
        let e = &outcome.evaluations[i];
        println!(
            "{:<58} {:>9.3} {:>7.2} s {:>8.0} ms {:>5}",
            e.label,
            e.qps_per_dollar,
            e.ttft_p90,
            e.tbt_p99 * 1e3,
            if slo.satisfied_by(e) { "yes" } else { "no" }
        );
    }

    match outcome.best(&slo) {
        Some(best) => {
            println!("\nBest SLO-compliant config: {}", best.label);
            println!(
                "  capacity {:.2} QPS @ ${:.2}/hr => {:.3} QPS/$",
                best.capacity_qps, best.dollars_per_hour, best.qps_per_dollar
            );
        }
        None => println!("\nNo configuration satisfies the SLOs — relax them or add GPUs."),
    }
}
