//! Capacity planning for a chat service (the paper's §6 workflow):
//! for a fixed LLaMA2-70B deployment, find the maximum QPS sustainable with
//! P99 scheduling delay under 5 s, then compare schedulers at that load —
//! the throughput/latency tradeoff of §2.2.
//!
//! Run with: `cargo run --release --example chat_capacity_planning`

use vidur::prelude::*;

fn main() {
    let mut rng = SimRng::new(7);
    let base = TraceWorkload::chat_1m().generate(250, &ArrivalProcess::Static, &mut rng);
    let params = CapacityParams {
        bisect_iters: 6,
        ..CapacityParams::default()
    };

    println!("LLaMA2-70B on 4xA100 (TP4), Chat-1M — capacity per scheduler\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12}",
        "scheduler", "capacity", "QPS/$", "TTFT p90", "TBT p99"
    );
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::SarathiServe { chunk_size: 2048 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        let config = ClusterConfig::new(
            ModelSpec::llama2_70b(),
            GpuSku::a100_80g(),
            ParallelismConfig::new(4, 1),
            1,
            SchedulerConfig::new(policy, 128),
        );
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let mut ledger = CostLedger::new();
        match find_capacity(&config, &base, &params, &source, &mut ledger) {
            Some(cap) => {
                let r = &cap.report_at_capacity;
                println!(
                    "{:<24} {:>8.2}/s {:>10.3} {:>10.0} ms {:>10.0} ms",
                    policy.to_string(),
                    cap.capacity_qps,
                    cap.capacity_qps / config.dollars_per_hour(),
                    r.ttft.p90 * 1e3,
                    r.tbt.p99 * 1e3,
                );
            }
            None => println!("{:<24} infeasible", policy.to_string()),
        }
    }
    println!(
        "\nExpected shape (paper §2.2): prefill-prioritizing schedulers (vLLM,\n\
         Orca+) push throughput at the cost of TBT tails; Sarathi-Serve keeps\n\
         decode latency flat via chunked prefills; FasterTransformer trades\n\
         throughput for simple decode-prioritized batching."
    );
}
