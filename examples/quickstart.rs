//! Quickstart: simulate one deployment of LLaMA2-7B on a chat workload and
//! print the request/cluster metrics Vidur reports (paper Figure 2's
//! "Simulation Report").
//!
//! Run with: `cargo run --release --example quickstart`

use vidur::prelude::*;

fn main() {
    // 1. Describe the deployment: model, SKU, parallelism, scheduler.
    let config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    );
    println!("deployment : {}", config.label());
    let plan = config.memory_plan().expect("7B fits on one A100");
    println!(
        "memory     : {:.1} GB weights, {} KV blocks ({} tokens)",
        plan.weight_bytes / 1e9,
        plan.num_kv_blocks,
        plan.max_tokens()
    );

    // 2. Generate a workload: 200 chat requests arriving at 1.5 QPS.
    let mut rng = SimRng::new(42);
    let trace =
        TraceWorkload::chat_1m().generate(200, &ArrivalProcess::Poisson { qps: 1.5 }, &mut rng);
    println!(
        "workload   : {} requests from {}",
        trace.len(),
        trace.workload_name
    );

    // 3. Onboard the model: profile operators on the (simulated) GPU and
    //    train the random-forest runtime estimator.
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    println!("onboarded  : {} operators", est.operators().count());

    // 4. Simulate and report.
    let report =
        ClusterSimulator::new(config, trace, RuntimeSource::Estimator((*est).clone()), 42).run();
    println!();
    println!(
        "completed        : {}/{}",
        report.completed, report.num_requests
    );
    println!("makespan         : {:.1} s", report.makespan_secs);
    println!("throughput       : {:.2} QPS", report.throughput_qps);
    println!(
        "TTFT    p50/p90  : {:.0} / {:.0} ms",
        report.ttft.p50 * 1e3,
        report.ttft.p90 * 1e3
    );
    println!(
        "TBT     p50/p99  : {:.0} / {:.0} ms",
        report.tbt.p50 * 1e3,
        report.tbt.p99 * 1e3
    );
    println!(
        "norm. latency p50: {:.1} ms/token",
        report.normalized_e2e.p50 * 1e3
    );
    println!("MFU              : {:.1} %", report.mfu * 100.0);
    println!("MBU              : {:.1} %", report.mbu * 100.0);
    println!("KV utilization   : {:.1} %", report.kv_utilization * 100.0);
    println!(
        "batches          : {} (mean {:.1} reqs, {:.0} tokens)",
        report.total_batches, report.mean_batch_size, report.mean_batch_tokens
    );
}
