//! Fidelity check: run the same workload against the "real" system (the
//! hardware oracle with CPU jitter) and against Vidur's estimator-driven
//! simulation, and print the per-metric prediction errors — a miniature of
//! the paper's Figures 3 and 4.
//!
//! Run with: `cargo run --release --example fidelity_report`

use vidur::prelude::*;

fn main() {
    println!("Fidelity of estimator-driven simulation vs ground truth\n");
    println!(
        "{:<16} {:<10} {:>12} {:>12} {:>10} {:>10}",
        "model", "workload", "exec p50 err", "exec p95 err", "ttft err", "tbt99 err"
    );
    for (model, par) in [
        (ModelSpec::llama2_7b(), ParallelismConfig::serial()),
        (ModelSpec::internlm_20b(), ParallelismConfig::new(2, 1)),
        (ModelSpec::llama2_70b(), ParallelismConfig::new(4, 1)),
    ] {
        for workload in TraceWorkload::paper_workloads() {
            let config = ClusterConfig::new(
                model.clone(),
                GpuSku::a100_80g(),
                par,
                1,
                SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
            );
            let mut rng = SimRng::new(11);
            let trace = workload.generate(80, &ArrivalProcess::Static, &mut rng);
            let rep = run_fidelity_pair(&config, &trace, EstimatorKind::default(), 11);
            println!(
                "{:<16} {:<10} {:>+11.2}% {:>+11.2}% {:>+9.2}% {:>+9.2}%",
                model.name,
                workload.name,
                rep.err_norm_exec_p50(),
                rep.err_norm_exec_p95(),
                rep.err_ttft_p50(),
                rep.err_tbt_p99(),
            );
        }
    }
    println!("\nPaper result: request-level predictions within 9% across models/traces.");
}
