//! Offline batch inference: pick the deployment that finishes a fixed batch
//! job fastest — or cheapest (paper §6's makespan objective for offline
//! scenarios).
//!
//! Scenario: summarize 300 arXiv papers overnight with InternLM-20B. The
//! fastest config is rarely the cheapest: replication halves the makespan
//! but doubles the rental rate.
//!
//! Run with: `cargo run --release --example offline_batch_inference`

use vidur::prelude::*;
use vidur::search::offline::{best_by_cost, run_offline_search};

fn main() {
    let model = ModelSpec::internlm_20b();
    let mut rng = SimRng::new(101);
    let job = TraceWorkload::arxiv_4k().generate(300, &ArrivalProcess::Static, &mut rng);
    println!(
        "Batch job: {} summarization requests, InternLM-20B\n",
        job.len()
    );

    let mut configs = Vec::new();
    for sku in [GpuSku::a100_80g(), GpuSku::h100_80g()] {
        for (tp, replicas) in [(2u32, 1usize), (2, 2), (2, 4), (4, 1), (4, 2)] {
            configs.push(ClusterConfig::new(
                model.clone(),
                sku.clone(),
                ParallelismConfig::new(tp, 1),
                replicas,
                SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 1024 }, 128),
            ));
        }
    }
    let (evals, ledger) = run_offline_search(&configs, &job, EstimatorKind::default(), 101);

    println!(
        "{:<60} {:>10} {:>9} {:>7} {:>9}",
        "config", "makespan", "cost", "MFU", "energy"
    );
    for e in &evals {
        println!(
            "{:<60} {:>8.0} s {:>8.2}$ {:>6.1}% {:>6.2}kWh",
            e.label,
            e.makespan_secs,
            e.cost_dollars,
            e.mfu * 100.0,
            e.energy_kwh
        );
    }
    if let (Some(fastest), Some(cheapest)) = (evals.first(), best_by_cost(&evals)) {
        println!(
            "\nfastest : {} ({:.0} s)",
            fastest.label, fastest.makespan_secs
        );
        println!(
            "cheapest: {} (${:.2})",
            cheapest.label, cheapest.cost_dollars
        );
    }
    println!(
        "\n({} simulation runs; a hardware-based sweep would have burned {:.1} GPU-hours ≈ ${:.0})",
        ledger.runs(),
        ledger.projected_gpu_hours(),
        ledger.projected_dollars()
    );
}
