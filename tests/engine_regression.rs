//! Engine regression pins: both simulators run through the shared
//! `vidur_simulator::engine` batch engine, so these tests pin observable
//! outcomes for fixed seeds. If a refactor of the engine (or of either
//! policy layer) changes batching behavior, these fail before anything
//! subtler does.

use vidur::prelude::*;

fn base_config() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    )
}

fn fixed_trace(n: usize, qps: f64, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng)
}

fn oracle() -> RuntimeSource {
    RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
}

/// Asserts a report's bit-exact fingerprint. The expected values were
/// captured from the seed (pre-hot-loop-refactor) engine, so any change to
/// batch formation order, preemption victim choice, event scheduling, float
/// accumulation order, or RNG draw order fails here — byte-identity, not
/// approximate equality.
#[allow(clippy::too_many_arguments)]
fn assert_fingerprint(
    label: &str,
    r: &SimulationReport,
    makespan: u64,
    ttft_p99: u64,
    tbt_p50: u64,
    e2e_mean: u64,
    mfu: u64,
    batches: u64,
    tokens: u64,
    preemptions: u64,
) {
    assert_eq!(r.makespan_secs.to_bits(), makespan, "{label}: makespan");
    assert_eq!(r.ttft.p99.to_bits(), ttft_p99, "{label}: ttft.p99");
    assert_eq!(r.tbt.p50.to_bits(), tbt_p50, "{label}: tbt.p50");
    assert_eq!(r.e2e.mean.to_bits(), e2e_mean, "{label}: e2e.mean");
    assert_eq!(r.mfu.to_bits(), mfu, "{label}: mfu");
    assert_eq!(r.total_batches, batches, "{label}: total_batches");
    assert_eq!(r.total_tokens, tokens, "{label}: total_tokens");
    assert_eq!(r.preemptions, preemptions, "{label}: preemptions");
}

/// Pinned: the aggregated cluster engine drains a fixed seed's trace.
#[test]
fn cluster_engine_completed_pinned_for_seed_42() {
    let report = ClusterSimulator::new(base_config(), fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report.completed, 80);
    assert!(report.makespan_secs > 0.0);
}

/// Bit-exact pin of the oracle-sourced cluster report (seed values).
#[test]
fn cluster_oracle_report_bits_pinned() {
    let report = ClusterSimulator::new(base_config(), fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "cluster_oracle_seed42",
        &report,
        0x4044b9f98e76d0c2,
        0x3fd0f1caa605d583,
        0x3f87c9e679ad5143,
        0x4005f128a0255786,
        0x3fb31cc55a505cba,
        3420,
        71716,
        0,
    );
}

/// Bit-exact pin of the disaggregated report (seed values).
#[test]
fn disagg_oracle_report_bits_pinned() {
    let cfg = DisaggConfig::new(base_config(), 1, 1);
    let report = DisaggSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "disagg_oracle_seed42",
        &report,
        0x404496aec9e236c1,
        0x3fcfeb42ca2325fe,
        0x3f874d979611d84d,
        0x40046ac83cb4db23,
        0x3fa33d87fa9285e4,
        3777,
        71716,
        0,
    );
}

/// Bit-exact pin of the estimator-sourced cluster report (seed values).
#[test]
fn cluster_estimator_report_bits_pinned() {
    let cfg = base_config();
    let est = vidur::simulator::onboard(
        &cfg.model,
        &cfg.parallelism,
        &cfg.sku,
        EstimatorKind::default(),
    );
    let source = RuntimeSource::Estimator((*est).clone());
    let report = ClusterSimulator::new(cfg, fixed_trace(70, 2.5, 22), source, 22).run();
    assert_fingerprint(
        "cluster_estimator_seed22",
        &report,
        0x4043a20e819c918a,
        0x3fd4132e63178cf2,
        0x3f888bdd65c3a0a1,
        0x4007dd582c3e676b,
        0x3fb34c2dfb56fb04,
        3001,
        68564,
        0,
    );
}

/// Bit-exact pin of a preemption-heavy run (seed values): long generations
/// on vLLM overcommit KV, so the recompute-restart path — victim selection
/// order included — is pinned, not just the smooth paths.
#[test]
fn cluster_preemption_report_bits_pinned() {
    let mut cfg = base_config();
    cfg.scheduler = SchedulerConfig::new(BatchPolicyKind::Vllm, 256);
    let mut rng = SimRng::new(11);
    let trace = TraceWorkload::bwb_4k().generate(300, &ArrivalProcess::Static, &mut rng);
    let report = ClusterSimulator::new(cfg, trace, oracle(), 11).run();
    assert_fingerprint(
        "cluster_preempt_seed11",
        &report,
        0x408030c8a8ecaefc,
        0x407b04e063f3b7f8,
        0x3fac5f7d690c5e07,
        0x40726d67b0b118ac,
        0x3fb6d6ee6dd6c005,
        9650,
        1050838,
        211,
    );
}

/// Pinned: the disaggregated engine drains the same fixed trace.
#[test]
fn disagg_engine_completed_pinned_for_seed_42() {
    let cfg = DisaggConfig::new(base_config(), 1, 1);
    let report = DisaggSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report.completed, 80);
    assert!(report.makespan_secs > 0.0);
}

/// The two policy layers share one engine path; neither may lose
/// determinism: identical (config, trace, seed) inputs must reproduce
/// byte-identical reports.
#[test]
fn cluster_and_disagg_reports_are_reproducible() {
    let cluster =
        || ClusterSimulator::new(base_config(), fixed_trace(60, 3.0, 7), oracle(), 7).run();
    assert_eq!(cluster(), cluster());

    let disagg = || {
        let cfg = DisaggConfig::new(base_config(), 1, 1);
        DisaggSimulator::new(cfg, fixed_trace(60, 3.0, 7), oracle(), 7).run()
    };
    assert_eq!(disagg(), disagg());
}

/// The batch-shape cache is a pure speed/memory trade: with the cache on
/// (the default) the report must be **byte-identical** to a cache-off run —
/// per-op attribution is replayed from the cached timing stream and the
/// oracle's stochastic CPU-overhead jitter draws after the cache lookup.
#[test]
fn plan_cache_report_identical_oracle() {
    let trace = fixed_trace(70, 2.5, 21);
    let on = ClusterSimulator::new(base_config(), trace.clone(), oracle(), 21).run();
    let mut cfg = base_config();
    cfg.plan_cache = false;
    let off = ClusterSimulator::new(cfg, trace, oracle(), 21).run();
    assert_eq!(on, off, "cache must not change oracle-sourced reports");
}

/// Same pin for the estimator source (the Vidur-Search hot path).
#[test]
fn plan_cache_report_identical_estimator() {
    let cfg = base_config();
    let est = vidur::simulator::onboard(
        &cfg.model,
        &cfg.parallelism,
        &cfg.sku,
        EstimatorKind::default(),
    );
    let source = RuntimeSource::Estimator((*est).clone());
    let trace = fixed_trace(70, 2.5, 22);
    let on = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 22).run();
    let mut off_cfg = cfg;
    off_cfg.plan_cache = false;
    let off = ClusterSimulator::new(off_cfg, trace, source, 22).run();
    assert_eq!(on, off, "cache must not change estimator-sourced reports");
}

/// The disaggregated policy layer rides the same engine path; the cache
/// must be invisible there too.
#[test]
fn plan_cache_report_identical_disagg() {
    let trace = fixed_trace(50, 2.5, 23);
    let on_cfg = DisaggConfig::new(base_config(), 1, 1);
    let on = DisaggSimulator::new(on_cfg, trace.clone(), oracle(), 23).run();
    let mut base = base_config();
    base.plan_cache = false;
    let off = DisaggSimulator::new(DisaggConfig::new(base, 1, 1), trace, oracle(), 23).run();
    assert_eq!(on, off, "cache must not change disaggregated reports");
}

/// A multi-tenant bursty replay: three tenants (diurnal chat at priority 0,
/// Poisson translation at priority 1, MMPP-bursty summarization at
/// priority 2) on vLLM with a large batch cap, so KV overcommit forces
/// priority-aware preemptions. Pins the whole production-traffic path —
/// merged multi-stream generation, tiered admission, the priority victim
/// walk, and per-tenant metrics — bit-exactly.
fn multi_tenant_bursty_trace(n: usize, seed: u64) -> Trace {
    let mix = MultiTenantWorkload::new(
        "bursty-mix",
        vec![
            TenantStream {
                tenant: "interactive".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Diurnal {
                    mean_qps: 2.0,
                    amplitude: 0.8,
                    period_secs: 60.0,
                },
                prefix: None,
            },
            TenantStream {
                tenant: "standard".into(),
                priority: 1,
                workload: TraceWorkload::bwb_4k(),
                arrivals: ArrivalProcess::Poisson { qps: 1.0 },
                prefix: None,
            },
            TenantStream {
                tenant: "batch".into(),
                priority: 2,
                workload: TraceWorkload::arxiv_4k(),
                arrivals: ArrivalProcess::Mmpp {
                    qps_base: 0.2,
                    qps_burst: 12.0,
                    mean_base_secs: 20.0,
                    mean_burst_secs: 4.0,
                },
                prefix: None,
            },
        ],
    );
    let mut rng = SimRng::new(seed);
    mix.generate(n, &mut rng)
}

#[test]
fn multi_tenant_bursty_report_bits_pinned() {
    let mut cfg = base_config();
    cfg.scheduler = SchedulerConfig::new(BatchPolicyKind::Vllm, 256);
    cfg.tenant_slo = Some(TenantSlo {
        ttft_secs: 2.0,
        e2e_per_token_secs: 0.5,
    });
    let report = ClusterSimulator::new(cfg, multi_tenant_bursty_trace(260, 17), oracle(), 17).run();
    assert_fingerprint(
        "multi_tenant_bursty_seed17",
        &report,
        0x4064d9bfaa52238e,
        0x405982023e17fb90,
        0x3fac6f979b1a55ca,
        0x4047f4b407fc4b83,
        0x3fc3198bb04cd169,
        3751,
        565762,
        24,
    );
    assert_eq!(report.completed, 260);
    assert!(
        report.preemptions > 0,
        "scenario must force priority-aware preemptions"
    );
    // Per-tenant breakdown: all three tenants present, counts conserve,
    // attainment populated, and the urgent tenant is served at least as
    // well as the bulk tier.
    assert_eq!(report.per_tenant.len(), 3);
    let names: Vec<&str> = report
        .per_tenant
        .iter()
        .map(|t| t.tenant.as_str())
        .collect();
    assert_eq!(names, ["interactive", "standard", "batch"]);
    let arrived: usize = report.per_tenant.iter().map(|t| t.arrived).sum();
    let completed: usize = report.per_tenant.iter().map(|t| t.completed).sum();
    assert_eq!(arrived, 260);
    assert_eq!(completed, 260);
    for t in &report.per_tenant {
        assert!(t.completed > 0, "{}: no completions", t.tenant);
        assert!(t.slo_attainment.is_some());
        assert!(t.ttft.p99 >= t.ttft.p50);
    }
}

/// Under an aggressive simulated-time cap, the shared deadline latch stops
/// both simulators the same way: incomplete but nonzero progress.
#[test]
fn deadline_latch_consistent_across_backends() {
    let mut cfg = base_config();
    cfg.max_sim_time = Some(SimTime::from_secs_f64(10.0));
    let trace = fixed_trace(1000, 100.0, 13);

    let cluster = ClusterSimulator::new(cfg.clone(), trace.clone(), oracle(), 13).run();
    assert!(cluster.completed > 0 && cluster.completed < 1000);

    let disagg = DisaggSimulator::new(DisaggConfig::new(cfg, 1, 1), trace, oracle(), 13).run();
    assert!(disagg.completed > 0 && disagg.completed < 1000);
}

/// Sketch-mode metrics are a memory/accuracy trade, not a behavior change:
/// the simulation itself is untouched (same batches, makespan, counters,
/// exact means and maxima — bit-equal), only mid-quantiles become
/// approximate.
#[test]
fn sketch_metrics_change_only_quantiles() {
    let trace = fixed_trace(80, 2.5, 42);
    let exact = ClusterSimulator::new(base_config(), trace.clone(), oracle(), 42).run();
    let mut cfg = base_config();
    cfg.quantile_mode = QuantileMode::Sketch;
    let sketch = ClusterSimulator::new(cfg, trace, oracle(), 42).run();
    // Simulation-side outcomes: identical bits.
    assert_eq!(sketch.completed, exact.completed);
    assert_eq!(
        sketch.makespan_secs.to_bits(),
        exact.makespan_secs.to_bits()
    );
    assert_eq!(sketch.total_batches, exact.total_batches);
    assert_eq!(sketch.total_tokens, exact.total_tokens);
    assert_eq!(sketch.mfu.to_bits(), exact.mfu.to_bits());
    assert_eq!(sketch.energy_kwh.to_bits(), exact.energy_kwh.to_bits());
    // TBT moments survive sketching bit-for-bit: both modes stream token
    // samples in the same order. Request-level means accumulate in
    // completion order rather than id order, so they agree only to float
    // rounding; maxima are order-independent and stay bit-equal.
    assert_eq!(sketch.tbt.mean.to_bits(), exact.tbt.mean.to_bits());
    assert_eq!(sketch.tbt.max.to_bits(), exact.tbt.max.to_bits());
    assert_eq!(sketch.e2e.max.to_bits(), exact.e2e.max.to_bits());
    assert!((sketch.e2e.mean - exact.e2e.mean).abs() <= 1e-9 * exact.e2e.mean.abs());
    // Mid-quantiles are approximate but must stay close.
    for (s, e, name) in [
        (sketch.tbt.p50, exact.tbt.p50, "tbt.p50"),
        (sketch.e2e.p50, exact.e2e.p50, "e2e.p50"),
        (sketch.ttft.p90, exact.ttft.p90, "ttft.p90"),
        (
            sketch.normalized_e2e.p50,
            exact.normalized_e2e.p50,
            "ne2e.p50",
        ),
    ] {
        let tol = 0.25 * e.abs().max(1e-9);
        assert!(
            (s - e).abs() <= tol,
            "{name}: sketch {s} vs exact {e} beyond 25%"
        );
    }
}

/// Estimator source for multi-replica sharded differentials (jitter-free,
/// so the sharded fast path engages).
fn estimator_source() -> RuntimeSource {
    let cfg = base_config();
    let est = vidur::simulator::onboard(
        &cfg.model,
        &cfg.parallelism,
        &cfg.sku,
        EstimatorKind::default(),
    );
    RuntimeSource::Estimator((*est).clone())
}

/// Runs `cfg` over `trace` sequentially and with `shards` event-loop
/// shards; the reports must be **byte-identical** — the sharded engine's
/// whole contract (see `vidur_simulator::sharded`).
fn assert_sharded_identical(label: &str, cfg: ClusterConfig, trace: Trace, shards: usize) {
    let source = estimator_source();
    let sequential = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run();
    let mut sharded_cfg = cfg;
    sharded_cfg.shards = shards;
    let sharded = ClusterSimulator::new(sharded_cfg, trace, source, 5).run();
    assert_eq!(
        sequential, sharded,
        "{label}: sharded run must be bit-exact"
    );
}

/// The genuine parallel path: 4 replicas round-robin over 4 shards.
#[test]
fn sharded_multi_replica_round_robin_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    assert_sharded_identical("rr_4x4", cfg, fixed_trace(200, 8.0, 31), 4);
}

/// Shard count need not divide the replica count: 4 replicas on 3 shards
/// exercises uneven deals and the local-index arithmetic.
#[test]
fn sharded_uneven_shard_count_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    assert_sharded_identical("rr_4x3", cfg, fixed_trace(200, 8.0, 33), 3);
}

/// Random routing pre-draws the same RNG sequence when replayed in arrival
/// order, so it shares the fast path with round-robin.
#[test]
fn sharded_random_routing_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.global_policy = GlobalPolicyKind::Random;
    assert_sharded_identical("random_4x4", cfg, fixed_trace(200, 8.0, 35), 4);
}

/// Shape-cache off: the sharded engine re-times every batch per shard; the
/// merge must still replay identically.
#[test]
fn sharded_without_plan_cache_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.plan_cache = false;
    assert_sharded_identical("rr_nocache_2x2", cfg, fixed_trace(150, 6.0, 37), 2);
}

/// Sketch-mode quantiles stream samples in commit order, which the merge
/// reproduces exactly — the sketches must end bit-identical too.
#[test]
fn sharded_sketch_metrics_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.quantile_mode = QuantileMode::Sketch;
    assert_sharded_identical("rr_sketch_4x4", cfg, fixed_trace(200, 8.0, 39), 4);
}

/// A deadline-capped overload: shards truncate independently at the cap and
/// the merge must still agree with the sequential stop behavior.
#[test]
fn sharded_deadline_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.max_sim_time = Some(SimTime::from_secs_f64(15.0));
    let trace = fixed_trace(600, 60.0, 41);
    let source = estimator_source();
    let sequential = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run();
    assert!(
        sequential.completed < 600,
        "deadline scenario must actually truncate"
    );
    cfg.shards = 2;
    let sharded = ClusterSimulator::new(cfg, trace, source, 5).run();
    assert_eq!(
        sequential, sharded,
        "deadline: sharded run must be bit-exact"
    );
}

/// Multi-tenant trace on multi-replica round-robin: per-tenant metrics and
/// routing stats flow through the merge's tier replay.
#[test]
fn sharded_multi_tenant_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.tenant_slo = Some(TenantSlo {
        ttft_secs: 2.0,
        e2e_per_token_secs: 0.5,
    });
    let trace = multi_tenant_bursty_trace(200, 19);
    let source = estimator_source();
    let sequential = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run();
    cfg.shards = 4;
    let sharded = ClusterSimulator::new(cfg, trace, source, 5).run();
    assert_eq!(
        sequential, sharded,
        "multi-tenant: sharded run must be bit-exact"
    );
}

// ---- speculative sharded routing (stateful policies) ---------------------

/// Runs `cfg` sequentially and with `shards` shards under the estimator
/// source, asserting byte-identical reports AND that the windowed
/// speculate-and-verify path actually engaged — no silent fallback.
fn assert_speculative_identical(
    label: &str,
    cfg: ClusterConfig,
    trace: &Trace,
    shards: usize,
) -> RunStats {
    let source = estimator_source();
    let (sequential, seq_stats) =
        ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run_with_stats();
    assert_eq!(seq_stats.shards, 1, "{label}: baseline must be sequential");
    let mut sharded_cfg = cfg;
    sharded_cfg.shards = shards;
    let (sharded, stats) =
        ClusterSimulator::new(sharded_cfg, trace.clone(), source, 5).run_with_stats();
    assert_eq!(
        sequential, sharded,
        "{label}: speculative sharded run must be bit-exact"
    );
    assert_eq!(
        stats.fallback_reason, None,
        "{label}: must stay on the fast path"
    );
    assert_eq!(stats.shards, shards, "{label}: must engage {shards} shards");
    assert!(
        stats.spec_windows > 0,
        "{label}: must execute speculation windows"
    );
    stats
}

/// Every admitted stateful policy, every shard count (including a trivial
/// one-shard deal and a count that does not divide the replicas): the
/// speculative path must reproduce the sequential report bit for bit. The
/// deferral-capable policies get caps high enough to never defer here; the
/// deferral abort has its own test below.
#[test]
fn sharded_stateful_policies_identical() {
    let policies = [
        GlobalPolicyKind::LeastOutstanding,
        GlobalPolicyKind::PriorityAware {
            max_outstanding: 10_000,
        },
        GlobalPolicyKind::FairShare {
            max_outstanding: 10_000,
        },
        GlobalPolicyKind::Affinity { spill_margin: 4 },
        GlobalPolicyKind::KvAware,
    ];
    let trace = multi_tenant_bursty_trace(220, 53);
    for policy in policies {
        for shards in [2, 3, 7] {
            let mut cfg = base_config();
            cfg.num_replicas = 7;
            cfg.global_policy = policy;
            cfg.tenant_slo = Some(TenantSlo {
                ttft_secs: 2.0,
                e2e_per_token_secs: 0.5,
            });
            assert_speculative_identical(&format!("{policy:?}_7x{shards}"), cfg, &trace, shards);
        }
    }
}

/// Pinning a large speculation window forces misprediction pressure: the
/// stale pre-routes must actually be caught and rolled back — and the
/// report must still come out byte-identical. This is the deterministic
/// rollback pin: if the verify loop ever stops detecting mismatches (or
/// the rollback path corrupts state), one of these two asserts fails.
#[test]
fn sharded_speculation_rollback_fires_and_stays_exact() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.global_policy = GlobalPolicyKind::LeastOutstanding;
    cfg.spec_window = Some(256);
    let trace = fixed_trace(400, 30.0, 57);
    let stats = assert_speculative_identical("rollback_pin_4x4", cfg, &trace, 4);
    assert!(
        stats.mispredictions > 0,
        "a 256-arrival window under 30 QPS must mispredict at least once \
         (got {} windows, {} mispredictions)",
        stats.spec_windows,
        stats.mispredictions
    );
    assert!(
        stats.rollback_events > 0,
        "mispredictions must discard simulated events"
    );
}

/// One-arrival windows are trivially exact: speculation against the
/// committed tier *is* the sequential decision, so nothing can mispredict.
#[test]
fn sharded_single_arrival_windows_never_mispredict() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.global_policy = GlobalPolicyKind::LeastOutstanding;
    cfg.spec_window = Some(1);
    let trace = fixed_trace(150, 20.0, 59);
    let stats = assert_speculative_identical("window1_4x4", cfg, &trace, 4);
    assert_eq!(
        stats.mispredictions, 0,
        "one-arrival windows must never mispredict"
    );
}

/// A misprediction storm under adaptive sizing: the window shrinks instead
/// of thrashing, the run degrades toward sequential-per-window, and the
/// report stays byte-identical throughout.
#[test]
fn sharded_speculation_storm_degrades_bit_exact() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.global_policy = GlobalPolicyKind::LeastOutstanding;
    let trace = fixed_trace(500, 50.0, 61);
    let stats = assert_speculative_identical("storm_2x2", cfg, &trace, 2);
    assert!(
        stats.mispredictions > 0,
        "two heavily loaded replicas must flip the argmin at least once"
    );
    assert!(
        stats.spec_windows > stats.mispredictions,
        "adaptive shrink must keep committing windows between rollbacks"
    );
}

/// Pin the `rng_version: 2` jitter stream: per-replica forked RNGs draw a
/// different (but equally deterministic) CPU-overhead sequence than the v1
/// engine-wide stream, so v2 gets its own fingerprint. The v1 pin is
/// `cluster_oracle_report_bits_pinned` — both versions stay pinned so
/// neither stream can drift.
#[test]
fn rng_v2_jitter_fingerprint_pinned() {
    let mut cfg = base_config();
    cfg.rng_version = 2;
    let report = ClusterSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "cluster_oracle_seed42_rngv2",
        &report,
        0x4044b9d0c2c8088f,
        0x3fd101fbecde2ccb,
        0x3f87c4c00df78f6e,
        0x4005e69d86a1e5da,
        0x3fb31ceaf8fb5ca1,
        3423,
        71716,
        0,
    );
}

/// Under `rng_version: 2` each replica owns a forked jitter stream whose
/// draw order depends only on that replica's schedule sequence — which is
/// identical for any shard count — so jittered oracle runs join the sharded
/// fast path: byte-identical on both the streaming (round-robin) and the
/// speculative (least-outstanding) paths.
#[test]
fn sharded_jittered_v2_identical() {
    for policy in [
        GlobalPolicyKind::RoundRobin,
        GlobalPolicyKind::LeastOutstanding,
    ] {
        let mut cfg = base_config();
        cfg.num_replicas = 4;
        cfg.rng_version = 2;
        cfg.global_policy = policy;
        let trace = fixed_trace(200, 8.0, 65);
        let sequential = ClusterSimulator::new(cfg.clone(), trace.clone(), oracle(), 42).run();
        for shards in [2, 3] {
            let mut sharded_cfg = cfg.clone();
            sharded_cfg.shards = shards;
            let (sharded, stats) =
                ClusterSimulator::new(sharded_cfg, trace.clone(), oracle(), 42).run_with_stats();
            assert_eq!(
                stats.fallback_reason, None,
                "{policy:?}: v2 jitter must be fast-path eligible"
            );
            assert_eq!(stats.shards, shards);
            assert_eq!(
                sequential, sharded,
                "{policy:?}@{shards}: jittered v2 sharded run must be bit-exact"
            );
        }
    }
}

/// When a deferral-capable policy actually defers, the bind happens on a
/// later event — possibly on another shard — so the sharded attempt aborts
/// mid-run, rebuilds, and re-runs sequentially: byte-exact, with the abort
/// reason reported.
#[test]
fn sharded_stateful_deferral_falls_back_bit_exact() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.global_policy = GlobalPolicyKind::FairShare { max_outstanding: 2 };
    let trace = fixed_trace(120, 20.0, 63);
    let source = estimator_source();
    let (sequential, _) =
        ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run_with_stats();
    cfg.shards = 2;
    let (sharded, stats) = ClusterSimulator::new(cfg, trace, source, 5).run_with_stats();
    assert_eq!(sequential, sharded, "deferral fallback must be bit-exact");
    assert_eq!(stats.shards, 1, "deferral must force the sequential path");
    assert_eq!(
        stats.fallback_reason,
        Some("stateful policy deferred a request mid-run"),
        "the abort reason must surface"
    );
}

/// Mergeable-mode reports are merge-order invariant: the collector state is
/// a pure fold over per-replica single-writer slots, so any shard count
/// (1 = the sequential engine) must produce a byte-identical report — the
/// mode's whole contract, time-series rows and the distinct-tenant estimate
/// included.
#[test]
fn mergeable_reports_invariant_across_shard_counts() {
    let mut cfg = base_config();
    cfg.num_replicas = 7;
    cfg.quantile_mode = QuantileMode::Mergeable;
    cfg.tenant_slo = Some(TenantSlo {
        ttft_secs: 2.0,
        e2e_per_token_secs: 0.5,
    });
    cfg.timeseries = Some(TimeseriesConfig::per_minute());
    let trace = multi_tenant_bursty_trace(220, 47);
    let source = estimator_source();
    let run = |shards: usize| {
        let mut cfg = cfg.clone();
        cfg.shards = shards;
        ClusterSimulator::new(cfg, trace.clone(), source.clone(), 5).run()
    };
    let baseline = run(1);
    assert_eq!(baseline.completed, 220);
    assert!(
        !baseline.timeseries.is_empty(),
        "time-series rows must be populated"
    );
    assert!(baseline.distinct_tenants_est.is_some());
    for shards in [2, 3, 7] {
        let sharded = run(shards);
        assert_eq!(
            baseline, sharded,
            "mergeable report must be byte-identical at {shards} shards"
        );
    }
}

/// In mergeable mode the shards commit request/batch/KV effects locally and
/// stream only tier-relevant effects to the serial merger — at least 5×
/// fewer than the full replay the exact mode's commit loop needs.
#[test]
fn mergeable_streams_5x_fewer_effects() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.shards = 4;
    let trace = fixed_trace(200, 8.0, 51);
    let source = estimator_source();
    let (_, replay) =
        ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run_with_stats();
    cfg.quantile_mode = QuantileMode::Mergeable;
    let (_, fold) = ClusterSimulator::new(cfg, trace, source, 5).run_with_stats();
    assert_eq!(replay.shards, 4, "replay run must engage the sharded path");
    assert_eq!(fold.shards, 4, "fold run must engage the sharded path");
    assert!(fold.streamed_effects > 0, "tier effects still stream");
    assert!(
        replay.streamed_effects >= 5 * fold.streamed_effects,
        "mergeable must stream >=5x fewer effects: replay {} vs fold {}",
        replay.streamed_effects,
        fold.streamed_effects
    );
}

/// Mergeable metrics are a summary trade, not a behavior change: the
/// simulation itself is untouched (bit-equal counters, makespan, MFU,
/// energy, maxima), means agree to float rounding, and the t-digest
/// mid-quantiles stay close to exact.
#[test]
fn mergeable_metrics_change_only_quantiles() {
    let trace = fixed_trace(80, 2.5, 42);
    let source = estimator_source();
    let exact = ClusterSimulator::new(base_config(), trace.clone(), source.clone(), 42).run();
    let mut cfg = base_config();
    cfg.quantile_mode = QuantileMode::Mergeable;
    let fold = ClusterSimulator::new(cfg, trace, source, 42).run();
    // Simulation-side outcomes: identical bits (one replica, so even the
    // f64 accumulation order matches the exact mode's).
    assert_eq!(fold.completed, exact.completed);
    assert_eq!(fold.makespan_secs.to_bits(), exact.makespan_secs.to_bits());
    assert_eq!(fold.total_batches, exact.total_batches);
    assert_eq!(fold.total_tokens, exact.total_tokens);
    assert_eq!(fold.mfu.to_bits(), exact.mfu.to_bits());
    assert_eq!(fold.energy_kwh.to_bits(), exact.energy_kwh.to_bits());
    // Maxima are order-independent and stay bit-equal; means agree to float
    // rounding (the fold accumulates in completion order, exact in id
    // order).
    assert_eq!(fold.tbt.max.to_bits(), exact.tbt.max.to_bits());
    assert_eq!(fold.e2e.max.to_bits(), exact.e2e.max.to_bits());
    assert!((fold.e2e.mean - exact.e2e.mean).abs() <= 1e-9 * exact.e2e.mean.abs());
    assert!((fold.tbt.mean - exact.tbt.mean).abs() <= 1e-9 * exact.tbt.mean.abs());
    // Mid-quantiles come from the t-digest: approximate but close.
    for (m, e, name) in [
        (fold.tbt.p50, exact.tbt.p50, "tbt.p50"),
        (fold.e2e.p50, exact.e2e.p50, "e2e.p50"),
        (fold.ttft.p90, exact.ttft.p90, "ttft.p90"),
        (
            fold.normalized_e2e.p50,
            exact.normalized_e2e.p50,
            "ne2e.p50",
        ),
    ] {
        let tol = 0.25 * e.abs().max(1e-9);
        assert!(
            (m - e).abs() <= tol,
            "{name}: mergeable {m} vs exact {e} beyond 25%"
        );
    }
}

/// Off-fast-path configurations silently fall back to the sequential engine,
/// so `shards > 1` never changes a report anywhere: the oracle source
/// (jittered), a stateful routing policy, and the single-replica pins all
/// stay bit-identical with shards requested.
#[test]
fn sharded_fallback_keeps_pinned_reports() {
    // Oracle jitter → fallback; this is the cluster_oracle_seed42 pin.
    let mut cfg = base_config();
    cfg.shards = 4;
    let report = ClusterSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "cluster_oracle_seed42_sharded",
        &report,
        0x4044b9f98e76d0c2,
        0x3fd0f1caa605d583,
        0x3f87c9e679ad5143,
        0x4005f128a0255786,
        0x3fb31cc55a505cba,
        3420,
        71716,
        0,
    );

    // Stateful deferred routing → fallback even with the estimator.
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.global_policy = GlobalPolicyKind::Deferred { max_outstanding: 4 };
    let trace = fixed_trace(100, 4.0, 43);
    let source = estimator_source();
    let sequential = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run();
    cfg.shards = 2;
    let sharded = ClusterSimulator::new(cfg, trace, source, 5).run();
    assert_eq!(sequential, sharded, "deferred policy must fall back");
}

// ---- elastic fleet / fault injection ------------------------------------

/// An explicitly-empty fault plan with no autoscaler never arms the elastic
/// layer: the report is **byte-identical** to a default-config run and
/// reproduces the existing bit-exact pins (the fault layer's whole
/// backwards-compatibility guarantee).
#[test]
fn empty_fault_plan_reports_byte_identical() {
    let mut cfg = base_config();
    cfg.faults = FaultPlan::none();
    cfg.autoscaler = None;
    let report = ClusterSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "cluster_oracle_seed42_empty_plan",
        &report,
        0x4044b9f98e76d0c2,
        0x3fd0f1caa605d583,
        0x3f87c9e679ad5143,
        0x4005f128a0255786,
        0x3fb31cc55a505cba,
        3420,
        71716,
        0,
    );
    let default_run =
        ClusterSimulator::new(base_config(), fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report, default_run, "empty plan must be byte-identical");
    // The elastic report columns stay at their inert defaults.
    assert_eq!(report.retries, 0);
    assert_eq!(report.requeued, 0);
    assert_eq!(report.evicted_by_crash, 0);
    assert_eq!(report.replica_hours, 0.0);
    assert!(report.replica_availability.is_empty());
}

/// The empty plan is also invisible on the sharded and mergeable paths:
/// the multi-replica differentials still hold bit-exactly with the (inert)
/// elastic fields present in the config.
#[test]
fn empty_fault_plan_sharded_and_mergeable_identical() {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.faults = FaultPlan::none();
    assert_sharded_identical(
        "rr_4x4_empty_plan",
        cfg.clone(),
        fixed_trace(200, 8.0, 31),
        4,
    );
    cfg.quantile_mode = QuantileMode::Mergeable;
    assert_sharded_identical(
        "rr_4x4_empty_plan_mergeable",
        cfg,
        fixed_trace(200, 8.0, 31),
        4,
    );
}

/// A *non-empty* plan whose only record fires far past the makespan: the
/// sharded fast path must fall back to the sequential engine (membership
/// churn is cross-shard by nature), and the simulation-side fingerprint
/// stays pinned — only the fleet-accounting columns light up.
#[test]
fn armed_inert_fault_plan_falls_back_and_keeps_fingerprint() {
    let mut cfg = base_config();
    cfg.shards = 4;
    cfg.faults.schedule = FaultSchedule {
        records: vec![FaultRecord {
            at: SimTime::from_secs_f64(1e6),
            replica: 0,
            action: FaultAction::Crash,
        }],
    };
    let (report, stats) =
        ClusterSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run_with_stats();
    assert_eq!(stats.shards, 1, "armed plan must force the sequential path");
    assert_fingerprint(
        "cluster_oracle_seed42_armed_inert",
        &report,
        0x4044b9f98e76d0c2,
        0x3fd0f1caa605d583,
        0x3f87c9e679ad5143,
        0x4005f128a0255786,
        0x3fb31cc55a505cba,
        3420,
        71716,
        0,
    );
    // The crash never fired, so no churn was recorded — but the fleet
    // accountant ran: replica-hours cover the whole makespan.
    assert_eq!(report.evicted_by_crash, 0);
    assert_eq!(report.requeued, 0);
    assert_eq!(report.retries, 0);
    assert_eq!(report.replica_availability, vec![1.0]);
    assert!(
        (report.replica_hours - report.makespan_secs / 3600.0).abs() < 1e-12,
        "one replica up for the whole run"
    );
}

/// A mid-run crash with a later recovery: every in-flight and queued
/// request on the dead replica requeues through the routing tier, KV is
/// reclaimed, and the run still completes everything — with the churn
/// visible in the report.
#[test]
fn crash_requeues_and_recovery_completes_everything() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.faults.schedule = FaultSchedule {
        records: vec![
            FaultRecord {
                at: SimTime::from_secs_f64(8.0),
                replica: 0,
                action: FaultAction::Crash,
            },
            FaultRecord {
                at: SimTime::from_secs_f64(30.0),
                replica: 0,
                action: FaultAction::Recover,
            },
        ],
    };
    let trace = fixed_trace(150, 6.0, 37);
    let report = ClusterSimulator::new(cfg, trace, estimator_source(), 5).run();
    assert_eq!(report.completed, 150, "no request may be lost to the crash");
    assert!(report.evicted_by_crash > 0, "crash must catch live work");
    assert!(report.requeued >= report.evicted_by_crash);
    assert!(report.retries > 0, "requeued work re-dispatches");
    assert_eq!(report.replica_availability.len(), 2);
    assert!(
        report.replica_availability[0] < 1.0,
        "crashed replica was down for a while: {}",
        report.replica_availability[0]
    );
    assert_eq!(report.replica_availability[1], 1.0);
    assert!(report.replica_hours > 0.0);
}

/// A transient straggler episode (slow → restore) must not lose work, and
/// must actually slow the run down relative to the fault-free baseline.
#[test]
fn straggler_episode_slows_run_without_losing_work() {
    let trace = fixed_trace(80, 2.5, 42);
    let baseline =
        ClusterSimulator::new(base_config(), trace.clone(), estimator_source(), 42).run();
    let mut cfg = base_config();
    cfg.faults.schedule = FaultSchedule {
        records: vec![
            FaultRecord {
                at: SimTime::from_secs_f64(2.0),
                replica: 0,
                action: FaultAction::Slow(3.0),
            },
            FaultRecord {
                at: SimTime::from_secs_f64(20.0),
                replica: 0,
                action: FaultAction::Restore,
            },
        ],
    };
    let slowed = ClusterSimulator::new(cfg, trace, estimator_source(), 42).run();
    assert_eq!(slowed.completed, 80);
    assert!(
        slowed.makespan_secs > baseline.makespan_secs,
        "3x straggler episode must stretch the makespan: {} vs {}",
        slowed.makespan_secs,
        baseline.makespan_secs
    );
    // Degradation is not a crash: nothing evicted, nothing requeued.
    assert_eq!(slowed.evicted_by_crash, 0);
    assert_eq!(slowed.requeued, 0);
}

/// A graceful drain finishes running work, migrates the queue, and marks
/// the replica down once idle — without any crash-evictions.
#[test]
fn graceful_drain_migrates_queue_without_evictions() {
    let mut cfg = base_config();
    cfg.num_replicas = 2;
    cfg.faults.schedule = FaultSchedule {
        records: vec![FaultRecord {
            at: SimTime::from_secs_f64(8.0),
            replica: 1,
            action: FaultAction::Drain,
        }],
    };
    let trace = fixed_trace(150, 6.0, 37);
    let report = ClusterSimulator::new(cfg, trace, estimator_source(), 5).run();
    assert_eq!(report.completed, 150, "drain must not lose work");
    assert_eq!(report.evicted_by_crash, 0, "drain is not a crash");
    assert!(
        report.replica_availability[1] < 1.0,
        "drained replica goes down once idle: {}",
        report.replica_availability[1]
    );
    assert_eq!(report.replica_availability[0], 1.0);
}

// ---- prefix cache / KV-aware routing ------------------------------------

/// High-share multi-tenant trace: nearly every request carries one of a
/// handful of shared system prompts, so the prefix tier has real reuse for
/// cache-aware routing to exploit.
fn high_share_prefix_trace(n: usize, seed: u64) -> Trace {
    let mix = MultiTenantWorkload::new(
        "prefix-mix",
        vec![
            TenantStream {
                tenant: "interactive".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 3.0 },
                prefix: Some(TenantPrefixConfig {
                    share_ratio: 0.9,
                    prefix_tokens: 256,
                    num_prefixes: 2,
                }),
            },
            TenantStream {
                tenant: "batch".into(),
                priority: 1,
                workload: TraceWorkload::bwb_4k(),
                arrivals: ArrivalProcess::Poisson { qps: 1.5 },
                prefix: Some(TenantPrefixConfig {
                    share_ratio: 1.0,
                    prefix_tokens: 512,
                    num_prefixes: 1,
                }),
            },
        ],
    );
    let mut rng = SimRng::new(seed);
    mix.generate(n, &mut rng)
}

fn prefix_cfg(policy: GlobalPolicyKind) -> ClusterConfig {
    let mut cfg = base_config();
    cfg.num_replicas = 4;
    cfg.global_policy = policy;
    cfg.prefix_cache = Some(PrefixCacheConfig::default());
    cfg
}

/// Conservation checks every prefix-armed report must satisfy: the
/// per-tenant splits account for every hit and every saved token, and the
/// hit rate is hits over completions.
fn assert_prefix_accounting(label: &str, r: &SimulationReport) {
    let tenant_hits: u64 = r.per_tenant.iter().map(|t| t.prefix_hits).sum();
    let tenant_saved: u64 = r.per_tenant.iter().map(|t| t.prefix_tokens_saved).sum();
    assert_eq!(tenant_hits, r.prefix_hits, "{label}: tenant hit split");
    assert_eq!(
        tenant_saved, r.prefix_tokens_saved,
        "{label}: tenant saved split"
    );
    let expected_rate = r.prefix_hits as f64 / r.completed as f64;
    assert_eq!(
        r.prefix_hit_rate.to_bits(),
        expected_rate.to_bits(),
        "{label}: hit rate must be hits/completed"
    );
}

/// Bit-exact pin: KV-aware routing over the high-share trace. The prefix
/// columns must light up — a ~92% hit rate on this trace — and the
/// per-tenant splits must conserve.
#[test]
fn prefix_kv_aware_report_bits_pinned() {
    let report = ClusterSimulator::new(
        prefix_cfg(GlobalPolicyKind::KvAware),
        high_share_prefix_trace(220, 61),
        oracle(),
        61,
    )
    .run();
    assert_fingerprint(
        "prefix_kvaware_seed61",
        &report,
        0x405541ce28c7ca59,
        0x3fd193efecec0ad9,
        0x3f927fd987a3d667,
        0x402ab0c7f08a9039,
        0x3fa38ead54a08251,
        18870,
        292928,
        0,
    );
    assert_eq!(report.completed, 220);
    assert_eq!(report.prefix_hits, 195, "high-share trace must hit hot");
    assert_eq!(report.prefix_tokens_saved, 64480);
    assert!(report.prefix_hit_rate > 0.85);
    assert_prefix_accounting("prefix_kvaware_seed61", &report);
    for t in &report.per_tenant {
        assert!(
            t.prefix_hits > 0,
            "{}: both tenants share prefixes",
            t.tenant
        );
    }
}

/// Bit-exact pin: hit-sticky affinity routing over the same trace.
#[test]
fn prefix_affinity_report_bits_pinned() {
    let report = ClusterSimulator::new(
        prefix_cfg(GlobalPolicyKind::Affinity { spill_margin: 4 }),
        high_share_prefix_trace(220, 61),
        oracle(),
        61,
    )
    .run();
    assert_fingerprint(
        "prefix_affinity_seed61",
        &report,
        0x4061788efd5f77f1,
        0x403d6b1b9b94e2ff,
        0x3fa57876199df1ff,
        0x403e7a7bdf65e8e4,
        0x3f9856b027d6795f,
        12903,
        300016,
        0,
    );
    assert_eq!(report.completed, 220);
    assert_eq!(report.prefix_hits, 203);
    assert_eq!(report.prefix_tokens_saved, 57392);
    assert_prefix_accounting("prefix_affinity_seed61", &report);
}

/// An armed prefix cache is stateful across the whole fleet, so the sharded
/// fast path must fall back to the sequential engine — with the estimator
/// source and round-robin-free policies this config would otherwise be
/// fast-path-eligible, making the gate itself the thing under test.
#[test]
fn prefix_routing_sharded_fallback_identical() {
    for policy in [
        GlobalPolicyKind::KvAware,
        GlobalPolicyKind::Affinity { spill_margin: 4 },
    ] {
        let cfg = prefix_cfg(policy);
        let trace = high_share_prefix_trace(200, 63);
        let source = estimator_source();
        let (sequential, _) =
            ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 5).run_with_stats();
        let mut sharded_cfg = cfg;
        sharded_cfg.shards = 4;
        let (sharded, stats) =
            ClusterSimulator::new(sharded_cfg, trace, source, 5).run_with_stats();
        assert_eq!(
            stats.shards, 1,
            "{policy:?}: armed cache must force fallback"
        );
        assert_eq!(
            sequential, sharded,
            "{policy:?}: sharded run must fall back bit-exactly"
        );
        assert!(sequential.prefix_hits > 0, "{policy:?}: trace must hit");
    }
}

/// Re-pin with `prefix_cache` *explicitly* disabled: `None` is not merely
/// the default, it is the documented byte-identical-off switch, so the
/// original seed fingerprint must reproduce and match a default-config run
/// with the prefix report columns at their inert zeros.
#[test]
fn prefix_cache_disabled_keeps_pinned_reports() {
    let mut cfg = base_config();
    cfg.prefix_cache = None;
    let report = ClusterSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_fingerprint(
        "cluster_oracle_seed42_prefix_off",
        &report,
        0x4044b9f98e76d0c2,
        0x3fd0f1caa605d583,
        0x3f87c9e679ad5143,
        0x4005f128a0255786,
        0x3fb31cc55a505cba,
        3420,
        71716,
        0,
    );
    let default_run =
        ClusterSimulator::new(base_config(), fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report, default_run, "explicit None must be byte-identical");
    assert_eq!(report.prefix_hits, 0);
    assert_eq!(report.prefix_tokens_saved, 0);
    assert_eq!(report.prefix_hit_rate, 0.0);
}

/// The differential proof the ISSUE demands: on a trace with **zero**
/// prefix sharing, arming the cache changes nothing — the report is
/// byte-identical to a disabled run, under both an oblivious policy and
/// KV-aware routing (whose published hit vectors are all zero).
#[test]
fn zero_share_trace_prefix_cache_invisible() {
    for policy in [GlobalPolicyKind::RoundRobin, GlobalPolicyKind::KvAware] {
        let mut cfg = base_config();
        cfg.num_replicas = 4;
        cfg.global_policy = policy;
        let trace = multi_tenant_bursty_trace(200, 19);
        let disabled = ClusterSimulator::new(cfg.clone(), trace.clone(), oracle(), 19).run();
        cfg.prefix_cache = Some(PrefixCacheConfig::default());
        let armed = ClusterSimulator::new(cfg, trace, oracle(), 19).run();
        assert_eq!(
            armed, disabled,
            "{policy:?}: armed cache must be invisible without sharing"
        );
        assert_eq!(armed.prefix_hits, 0);
        assert_eq!(armed.prefix_tokens_saved, 0);
    }
}

/// The SLO/queue autoscaler scales a one-replica fleet up under a heavy
/// open-loop burst: scaled-up slots actually serve work (non-zero
/// availability past slot 0) and the run completes everything.
#[test]
fn autoscaler_scales_up_under_load() {
    let mut cfg = base_config();
    cfg.num_replicas = 1;
    let mut spec = AutoscalerSpec::new(1, 4);
    spec.interval_secs = 10.0;
    cfg.autoscaler = Some(spec);
    let trace = fixed_trace(250, 20.0, 29);
    let report = ClusterSimulator::new(cfg, trace, estimator_source(), 29).run();
    assert_eq!(report.completed, 250);
    assert_eq!(report.replica_availability.len(), 4);
    assert!(
        report.replica_availability[1] > 0.0,
        "autoscaler must have warmed up at least one extra replica"
    );
    // Elastic replica-hours stay below the statically-provisioned ceiling.
    let static_hours = 4.0 * report.makespan_secs / 3600.0;
    assert!(report.replica_hours > 0.0 && report.replica_hours < static_hours);
}
