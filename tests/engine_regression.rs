//! Engine regression pins: both simulators run through the shared
//! `vidur_simulator::engine` batch engine, so these tests pin observable
//! outcomes for fixed seeds. If a refactor of the engine (or of either
//! policy layer) changes batching behavior, these fail before anything
//! subtler does.

use vidur::prelude::*;

fn base_config() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    )
}

fn fixed_trace(n: usize, qps: f64, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng)
}

fn oracle() -> RuntimeSource {
    RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
}

/// Pinned: the aggregated cluster engine drains a fixed seed's trace.
#[test]
fn cluster_engine_completed_pinned_for_seed_42() {
    let report = ClusterSimulator::new(base_config(), fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report.completed, 80);
    assert!(report.makespan_secs > 0.0);
}

/// Pinned: the disaggregated engine drains the same fixed trace.
#[test]
fn disagg_engine_completed_pinned_for_seed_42() {
    let cfg = DisaggConfig::new(base_config(), 1, 1);
    let report = DisaggSimulator::new(cfg, fixed_trace(80, 2.5, 42), oracle(), 42).run();
    assert_eq!(report.completed, 80);
    assert!(report.makespan_secs > 0.0);
}

/// The two policy layers share one engine path; neither may lose
/// determinism: identical (config, trace, seed) inputs must reproduce
/// byte-identical reports.
#[test]
fn cluster_and_disagg_reports_are_reproducible() {
    let cluster =
        || ClusterSimulator::new(base_config(), fixed_trace(60, 3.0, 7), oracle(), 7).run();
    assert_eq!(cluster(), cluster());

    let disagg = || {
        let cfg = DisaggConfig::new(base_config(), 1, 1);
        DisaggSimulator::new(cfg, fixed_trace(60, 3.0, 7), oracle(), 7).run()
    };
    assert_eq!(disagg(), disagg());
}

/// The batch-shape cache is a pure speed/memory trade: with the cache on
/// (the default) the report must be **byte-identical** to a cache-off run —
/// per-op attribution is replayed from the cached timing stream and the
/// oracle's stochastic CPU-overhead jitter draws after the cache lookup.
#[test]
fn plan_cache_report_identical_oracle() {
    let trace = fixed_trace(70, 2.5, 21);
    let on = ClusterSimulator::new(base_config(), trace.clone(), oracle(), 21).run();
    let mut cfg = base_config();
    cfg.plan_cache = false;
    let off = ClusterSimulator::new(cfg, trace, oracle(), 21).run();
    assert_eq!(on, off, "cache must not change oracle-sourced reports");
}

/// Same pin for the estimator source (the Vidur-Search hot path).
#[test]
fn plan_cache_report_identical_estimator() {
    let cfg = base_config();
    let est = vidur::simulator::onboard(
        &cfg.model,
        &cfg.parallelism,
        &cfg.sku,
        EstimatorKind::default(),
    );
    let source = RuntimeSource::Estimator((*est).clone());
    let trace = fixed_trace(70, 2.5, 22);
    let on = ClusterSimulator::new(cfg.clone(), trace.clone(), source.clone(), 22).run();
    let mut off_cfg = cfg;
    off_cfg.plan_cache = false;
    let off = ClusterSimulator::new(off_cfg, trace, source, 22).run();
    assert_eq!(on, off, "cache must not change estimator-sourced reports");
}

/// The disaggregated policy layer rides the same engine path; the cache
/// must be invisible there too.
#[test]
fn plan_cache_report_identical_disagg() {
    let trace = fixed_trace(50, 2.5, 23);
    let on_cfg = DisaggConfig::new(base_config(), 1, 1);
    let on = DisaggSimulator::new(on_cfg, trace.clone(), oracle(), 23).run();
    let mut base = base_config();
    base.plan_cache = false;
    let off = DisaggSimulator::new(DisaggConfig::new(base, 1, 1), trace, oracle(), 23).run();
    assert_eq!(on, off, "cache must not change disaggregated reports");
}

/// Under an aggressive simulated-time cap, the shared deadline latch stops
/// both simulators the same way: incomplete but nonzero progress.
#[test]
fn deadline_latch_consistent_across_backends() {
    let mut cfg = base_config();
    cfg.max_sim_time = Some(SimTime::from_secs_f64(10.0));
    let trace = fixed_trace(1000, 100.0, 13);

    let cluster = ClusterSimulator::new(cfg.clone(), trace.clone(), oracle(), 13).run();
    assert!(cluster.completed > 0 && cluster.completed < 1000);

    let disagg = DisaggSimulator::new(DisaggConfig::new(cfg, 1, 1), trace, oracle(), 13).run();
    assert!(disagg.completed > 0 && disagg.completed < 1000);
}
