//! Cross-crate integration tests: the full onboarding → simulation →
//! reporting pipeline, conservation laws, and determinism.

use vidur::prelude::*;

fn config(policy: BatchPolicyKind, replicas: usize) -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        replicas,
        SchedulerConfig::new(policy, 64),
    )
}

fn trace(workload: &TraceWorkload, n: usize, qps: Option<f64>, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    let arrivals = match qps {
        Some(q) => ArrivalProcess::Poisson { qps: q },
        None => ArrivalProcess::Static,
    };
    workload.generate(n, &arrivals, &mut rng)
}

fn run(config: ClusterConfig, trace: Trace, seed: u64) -> SimulationReport {
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    ClusterSimulator::new(
        config,
        trace,
        RuntimeSource::Estimator((*est).clone()),
        seed,
    )
    .run()
}

#[test]
fn every_policy_completes_every_workload() {
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        for workload in TraceWorkload::paper_workloads() {
            let t = trace(&workload, 25, None, 9);
            let report = run(config(policy, 1), t, 9);
            assert_eq!(
                report.completed, 25,
                "{policy} on {}: incomplete",
                workload.name
            );
        }
    }
}

#[test]
fn report_invariants_hold() {
    let report = run(
        config(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 2),
        trace(&TraceWorkload::chat_1m(), 60, Some(2.0), 10),
        10,
    );
    assert_eq!(report.completed, report.num_requests);
    // Latency orderings.
    assert!(report.ttft.p50 <= report.ttft.p90);
    assert!(report.ttft.p90 <= report.ttft.p99);
    assert!(report.e2e.p50 >= report.ttft.p50, "e2e includes ttft");
    assert!(report.normalized_exec.p50 <= report.normalized_e2e.p50 + 1e-12);
    // Utilizations bounded.
    assert!((0.0..=1.0).contains(&report.mfu));
    assert!((0.0..=1.0).contains(&report.mbu));
    assert!((0.0..=1.0).contains(&report.kv_utilization));
    // Token conservation: every prompt token and every generated token was
    // processed at least once (restarts can add more).
    assert!(report.total_tokens >= 60);
}

#[test]
fn oracle_and_estimator_agree_closely_end_to_end() {
    let c = config(BatchPolicyKind::Vllm, 1);
    let t = trace(&TraceWorkload::chat_1m(), 60, None, 11);
    let rep = run_fidelity_pair(&c, &t, EstimatorKind::default(), 11);
    assert!(rep.err_norm_exec_p50().abs() < 10.0);
    assert!(rep.err_norm_exec_p95().abs() < 10.0);
}

#[test]
fn deterministic_across_runs() {
    let c = config(BatchPolicyKind::OrcaPlus, 2);
    let t = trace(&TraceWorkload::bwb_4k(), 30, Some(0.5), 12);
    let a = run(c.clone(), t.clone(), 12);
    let b = run(c, t, 12);
    assert_eq!(a, b);
}

#[test]
fn pipeline_parallel_preserves_completion() {
    let mut c = config(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 1);
    c.parallelism = ParallelismConfig::new(1, 4);
    let t = trace(&TraceWorkload::chat_1m(), 30, None, 13);
    let report = run(c, t, 13);
    assert_eq!(report.completed, 30);
}

#[test]
fn tensor_parallel_tradeoff_matches_topology() {
    // LLaMA2-70B: within the 4-GPU NVLink island, more TP shards each layer
    // and lowers per-token latency (TP2 → TP4). Crossing the island (TP8)
    // pushes all-reduce onto PCIe-class links and latency regresses — the
    // paper's §2.2 point that TP needs high-bandwidth interconnects.
    let mk = |tp: u32| {
        let c = ClusterConfig::new(
            ModelSpec::llama2_70b(),
            GpuSku::a100_80g(),
            ParallelismConfig::new(tp, 1),
            1,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 32),
        );
        let t = trace(&TraceWorkload::chat_1m(), 25, None, 14);
        run(c, t, 14)
    };
    let tp2 = mk(2);
    let tp4 = mk(4);
    let tp8 = mk(8);
    assert!(
        tp4.normalized_exec.p50 < tp2.normalized_exec.p50,
        "TP4 {} vs TP2 {}",
        tp4.normalized_exec.p50,
        tp2.normalized_exec.p50
    );
    assert!(
        tp8.normalized_exec.p50 > tp4.normalized_exec.p50,
        "beyond the NVLink island TP should regress: TP8 {} vs TP4 {}",
        tp8.normalized_exec.p50,
        tp4.normalized_exec.p50
    );
}

#[test]
fn h100_beats_a100_on_throughput() {
    let t = trace(&TraceWorkload::arxiv_4k(), 30, None, 15);
    let a100 = run(config(BatchPolicyKind::Vllm, 1), t.clone(), 15);
    let mut c = config(BatchPolicyKind::Vllm, 1);
    c.sku = GpuSku::h100_80g();
    let h100 = run(c, t, 15);
    assert!(h100.makespan_secs < a100.makespan_secs);
}

#[test]
fn decode_heavy_workload_is_slower_per_request() {
    let chat = run(
        config(BatchPolicyKind::Vllm, 1),
        trace(&TraceWorkload::chat_1m(), 40, None, 16),
        16,
    );
    let bwb = run(
        config(BatchPolicyKind::Vllm, 1),
        trace(&TraceWorkload::bwb_4k(), 40, None, 16),
        16,
    );
    // BWB generates ~8x the decode tokens: far longer makespan.
    assert!(bwb.makespan_secs > 2.0 * chat.makespan_secs);
}
