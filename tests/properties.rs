//! Cross-crate property-based tests: simulation conservation laws and
//! scheduler invariants under randomized request streams.

use proptest::prelude::*;
use vidur::prelude::*;

fn run_sim(policy: BatchPolicyKind, reqs: &[(u64, u64)], qps: f64, seed: u64) -> SimulationReport {
    let config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(policy, 32),
    );
    let mut rng = SimRng::new(seed);
    let arrivals = ArrivalProcess::Poisson { qps };
    let times = arrivals.generate(reqs.len(), &mut rng);
    let trace = Trace {
        workload_name: "prop".to_string(),
        tenants: Vec::new(),
        prefixes: Vec::new(),
        requests: reqs
            .iter()
            .zip(times)
            .enumerate()
            .map(|(i, (&(p, d), arrival))| TraceRequest {
                id: i as u64,
                arrival,
                prefill_tokens: p,
                decode_tokens: d,
                tenant: 0,
                priority: 0,
                prefix_id: NO_PREFIX,
                prefix_len: 0,
            })
            .collect(),
    };
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    ClusterSimulator::new(
        config,
        trace,
        RuntimeSource::Estimator((*est).clone()),
        seed,
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn all_requests_complete_and_latencies_ordered(
        reqs in proptest::collection::vec((1u64..2000, 1u64..300), 1..25),
        seed in 0u64..1000,
    ) {
        for policy in [
            BatchPolicyKind::Vllm,
            BatchPolicyKind::SarathiServe { chunk_size: 256 },
        ] {
            let report = run_sim(policy, &reqs, 1.0, seed);
            prop_assert_eq!(report.completed, reqs.len());
            // Conservation: processed tokens cover at least all prompt +
            // generated-after-prefill tokens.
            let min_tokens: u64 = reqs.iter().map(|&(p, d)| p + d - 1).sum();
            prop_assert!(report.total_tokens >= min_tokens,
                "{} < {}", report.total_tokens, min_tokens);
            // Quantile orderings.
            prop_assert!(report.e2e.p50 <= report.e2e.p95 + 1e-12);
            prop_assert!(report.ttft.mean <= report.e2e.max + 1e-12);
            prop_assert!(report.scheduling_delay.p50 <= report.ttft.p50 + 1e-9,
                "TTFT includes scheduling delay");
        }
    }

    #[test]
    fn throughput_bounded_by_arrival_rate(
        reqs in proptest::collection::vec((1u64..500, 1u64..50), 5..20),
        qps in 0.2f64..2.0,
    ) {
        let report = run_sim(BatchPolicyKind::OrcaPlus, &reqs, qps, 3);
        // Completion throughput can't exceed arrival throughput by much
        // (only by the drain-phase compression of the last requests).
        prop_assert!(report.throughput_qps <= qps * 3.0 + 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scheduler_never_exceeds_budgets(
        reqs in proptest::collection::vec((1u64..3000, 1u64..100), 1..40),
        chunk in prop_oneof![Just(256u64), Just(512), Just(1024)],
    ) {
        let config = SchedulerConfig::new(
            BatchPolicyKind::SarathiServe { chunk_size: chunk }, 16);
        let mut s = ReplicaScheduler::new(config, 100_000, 16);
        for (i, &(p, d)) in reqs.iter().enumerate() {
            s.add_request(Request::new(i as u64, SimTime::ZERO, p, d));
        }
        let mut guard = 0;
        while s.outstanding() > 0 {
            let Some(batch) = s.next_batch() else { break };
            prop_assert!(batch.total_query_tokens() <= chunk,
                "token budget violated: {} > {chunk}", batch.total_query_tokens());
            prop_assert!(batch.num_requests() <= 16, "batch size violated");
            s.complete_batch(&batch);
            guard += 1;
            prop_assert!(guard < 200_000, "no convergence");
        }
        prop_assert_eq!(s.outstanding(), 0);
        prop_assert_eq!(s.blocks().used_blocks(), 0, "KV fully released");
    }
}

/// A two-tenant trace with per-tenant KV quotas armed, for the elastic
/// conservation property below: quota parking and crash eviction interact
/// on every requeue.
fn quota_trace(n: usize, qps: f64, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    let arrivals = ArrivalProcess::Poisson { qps };
    let times = arrivals.generate(n, &mut rng);
    Trace {
        workload_name: "elastic-prop".to_string(),
        tenants: vec!["alpha".to_string(), "beta".to_string()],
        prefixes: Vec::new(),
        requests: times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| TraceRequest {
                id: i as u64,
                arrival,
                prefill_tokens: 200 + (i as u64 * 97) % 900,
                decode_tokens: 20 + (i as u64 * 31) % 120,
                tenant: (i % 2) as u32,
                priority: (i % 2) as u8,
                prefix_id: NO_PREFIX,
                prefix_len: 0,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Conservation under churn: across random crash/recovery schedules and
    /// **every** routing policy, no request is lost or double-completed,
    /// and the quota/park bookkeeping survives crash eviction (per-tenant
    /// counts still conserve).
    #[test]
    fn no_request_lost_across_random_crashes_and_policies(
        n in 25usize..45,
        fault_seed in 0u64..1000,
        trace_seed in 0u64..1000,
    ) {
        let replicas = 3usize;
        let horizon = 40.0;
        // Exponential MTBF/MTTR churn, then force-recover everything at the
        // horizon so a schedule truncated mid-downtime cannot strand work.
        let mut schedule = FaultSchedule::random_crashes(
            fault_seed, replicas, horizon, 12.0, 4.0);
        for r in 0..replicas as u32 {
            schedule.records.push(FaultRecord {
                at: SimTime::from_secs_f64(horizon + 1.0),
                replica: r,
                action: FaultAction::Recover,
            });
        }
        let trace = quota_trace(n, 4.0, trace_seed);
        for policy in [
            GlobalPolicyKind::RoundRobin,
            GlobalPolicyKind::LeastOutstanding,
            GlobalPolicyKind::Random,
            GlobalPolicyKind::Deferred { max_outstanding: 8 },
            GlobalPolicyKind::PriorityAware { max_outstanding: 8 },
            GlobalPolicyKind::FairShare { max_outstanding: 8 },
            GlobalPolicyKind::Affinity { spill_margin: 4 },
        ] {
            let mut config = ClusterConfig::new(
                ModelSpec::llama2_7b(),
                GpuSku::a100_80g(),
                ParallelismConfig::serial(),
                replicas,
                SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 32),
            );
            config.global_policy = policy;
            config.tenant_kv_quota = vec![0.6, 0.6];
            config.faults.schedule = schedule.clone();
            let est = onboard(
                &config.model,
                &config.parallelism,
                &config.sku,
                EstimatorKind::default(),
            );
            let report = ClusterSimulator::new(
                config,
                trace.clone(),
                RuntimeSource::Estimator((*est).clone()),
                7,
            )
            .run();
            // No request lost, none double-completed.
            prop_assert_eq!(report.completed, n,
                "{policy:?}: lost work under churn");
            prop_assert_eq!(report.num_requests, n);
            // Per-tenant conservation survives eviction/requeue.
            let arrived: usize = report.per_tenant.iter().map(|t| t.arrived).sum();
            let completed: usize = report.per_tenant.iter().map(|t| t.completed).sum();
            prop_assert_eq!(arrived, n, "{policy:?}: per-tenant arrivals drifted");
            prop_assert_eq!(completed, n, "{policy:?}: per-tenant completions drifted");
            // Churn accounting is internally consistent.
            prop_assert!(report.requeued >= report.evicted_by_crash,
                "{policy:?}: requeued {} < evicted {}",
                report.requeued, report.evicted_by_crash);
            let tenant_requeued: u64 =
                report.per_tenant.iter().map(|t| t.requeued).sum();
            prop_assert_eq!(tenant_requeued, report.requeued,
                "{policy:?}: per-tenant requeue split must sum to the total");
            prop_assert_eq!(report.replica_availability.len(), replicas);
            for (r, a) in report.replica_availability.iter().enumerate() {
                prop_assert!((0.0..=1.0).contains(a),
                    "{policy:?}: availability[{r}] = {a} out of range");
            }
        }
    }
}

/// A two-tenant, two-priority trace for the speculative-sharding
/// differential: enough load structure that every stateful policy has real
/// decisions to make (and mispredict).
fn spec_trace(n: usize, qps: f64, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    let times = ArrivalProcess::Poisson { qps }.generate(n, &mut rng);
    Trace {
        workload_name: "spec-prop".to_string(),
        tenants: vec!["alpha".to_string(), "beta".to_string()],
        prefixes: Vec::new(),
        requests: times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| TraceRequest {
                id: i as u64,
                arrival,
                prefill_tokens: 100 + (i as u64 * 131) % 1200,
                decode_tokens: 10 + (i as u64 * 37) % 150,
                tenant: (i % 2) as u32,
                priority: (i % 3 == 0) as u8,
                prefix_id: NO_PREFIX,
                prefix_len: 0,
            })
            .collect(),
    }
}

fn stateful_policy() -> impl Strategy<Value = GlobalPolicyKind> {
    prop_oneof![
        Just(GlobalPolicyKind::LeastOutstanding),
        (4usize..64).prop_map(|m| GlobalPolicyKind::PriorityAware { max_outstanding: m }),
        (4usize..64).prop_map(|m| GlobalPolicyKind::FairShare { max_outstanding: m }),
        (0usize..6).prop_map(|m| GlobalPolicyKind::Affinity { spill_margin: m }),
        Just(GlobalPolicyKind::KvAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The speculative sharded engine's whole contract, fuzzed: any
    /// admitted stateful policy, any shard count, any pinned window size —
    /// including tiny windows that force misprediction pressure, and
    /// deferral-prone caps that force the mid-run abort — must reproduce
    /// the sequential report byte for byte.
    #[test]
    fn speculative_sharding_differential(
        policy in stateful_policy(),
        shards in prop_oneof![Just(1usize), Just(2), Just(3), Just(7)],
        window in prop_oneof![Just(1usize), Just(2), Just(3), Just(8)],
        qps in 4.0f64..24.0,
        seed in 0u64..1000,
    ) {
        let mut config = ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            7,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        );
        config.global_policy = policy;
        config.tenant_weights = vec![2.0, 1.0];
        let trace = spec_trace(140, qps, seed);
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let sequential = ClusterSimulator::new(
            config.clone(), trace.clone(), source.clone(), seed).run();
        config.shards = shards;
        config.spec_window = Some(window);
        let (sharded, stats) = ClusterSimulator::new(
            config, trace, source, seed).run_with_stats();
        prop_assert_eq!(&sequential, &sharded,
            "{:?} shards={} window={}: speculative run must be bit-exact \
             (stats: {:?})", policy, shards, window, stats);
        // A deferral-prone cap may abort to the sequential engine; that is
        // a legal outcome, but it must say so.
        if shards > 1 && stats.shards == 1 {
            prop_assert!(stats.fallback_reason.is_some(),
                "silent fallback: {:?}", stats);
        }
    }
}
