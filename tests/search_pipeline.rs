//! Integration tests for the Vidur-Search pipeline: enumeration →
//! capacity search → SLO/Pareto selection, and its reproducibility.

use vidur::prelude::*;

fn base_trace(n: usize, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Static, &mut rng)
}

fn small_configs() -> Vec<ClusterConfig> {
    let space = SearchSpace {
        skus: vec![GpuSku::a100_80g()],
        tp_degrees: vec![1],
        pp_degrees: vec![1],
        schedulers: vec![
            BatchPolicyKind::Vllm,
            BatchPolicyKind::SarathiServe { chunk_size: 512 },
        ],
        batch_sizes: vec![32, 128],
        routing: vec![GlobalPolicyKind::RoundRobin],
        max_gpus: 2,
    };
    space.enumerate(&ModelSpec::llama2_7b())
}

#[test]
fn search_produces_ranked_feasible_configs() {
    let params = CapacityParams {
        bisect_iters: 4,
        ..CapacityParams::default()
    };
    let outcome = run_search(
        &small_configs(),
        &base_trace(40, 21),
        &params,
        EstimatorKind::default(),
    );
    assert_eq!(outcome.evaluations.len(), 4);
    let best = outcome.best_unconstrained().expect("has configs");
    for e in &outcome.evaluations {
        assert!(best.qps_per_dollar >= e.qps_per_dollar);
        assert!(e.capacity_qps > 0.0);
        assert!(e.sched_delay_p99 < 5.0, "constraint held at capacity");
    }
    // Ledger accounted every probe of every config.
    assert!(outcome.ledger.runs() as usize >= 2 * outcome.evaluations.len());
    assert!(outcome.ledger.projected_dollars() > 0.0);
}

#[test]
fn search_is_reproducible() {
    let params = CapacityParams {
        bisect_iters: 3,
        ..CapacityParams::default()
    };
    let a = run_search(
        &small_configs(),
        &base_trace(30, 22),
        &params,
        EstimatorKind::default(),
    );
    let b = run_search(
        &small_configs(),
        &base_trace(30, 22),
        &params,
        EstimatorKind::default(),
    );
    // Wall-clock differs; everything else must match.
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.ledger.runs(), b.ledger.runs());
}

#[test]
fn pareto_frontier_subset_of_evaluations() {
    let params = CapacityParams {
        bisect_iters: 3,
        ..CapacityParams::default()
    };
    let outcome = run_search(
        &small_configs(),
        &base_trace(30, 23),
        &params,
        EstimatorKind::default(),
    );
    let frontier = pareto_frontier(&outcome.evaluations, |e| e.ttft_p90);
    assert!(!frontier.is_empty());
    assert!(frontier.len() <= outcome.evaluations.len());
    // Frontier is sorted by latency and strictly improving in QPS/$.
    for w in frontier.windows(2) {
        let (a, b) = (&outcome.evaluations[w[0]], &outcome.evaluations[w[1]]);
        assert!(a.ttft_p90 <= b.ttft_p90);
        assert!(a.qps_per_dollar < b.qps_per_dollar);
    }
}

#[test]
fn misconfig_matrix_diagonal_unity() {
    let mut rng = SimRng::new(24);
    let traces: Vec<Trace> = [TraceWorkload::chat_1m(), TraceWorkload::bwb_4k()]
        .iter()
        .map(|w| w.generate(25, &ArrivalProcess::Static, &mut rng))
        .collect();
    let cfgs = small_configs();
    let optima = vec![cfgs[0].clone(), cfgs[1].clone()];
    let params = CapacityParams {
        bisect_iters: 3,
        ..CapacityParams::default()
    };
    let m = misconfiguration_matrix(&optima, &traces, &params, EstimatorKind::default());
    for i in 0..2 {
        assert!((m.ratios[i][i] - 1.0).abs() < 1e-9);
        for j in 0..2 {
            assert!(m.ratios[i][j] > 0.0);
        }
    }
}
