//! Integration tests for the global scheduling tier: fair-share starvation
//! bounds, per-tenant KV quotas, and routing statistics in the report —
//! plus the disaggregated simulator running non-default tier policies.

use vidur::prelude::*;

fn base_config() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        2,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    )
}

fn oracle() -> RuntimeSource {
    RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
}

/// A skewed 4-tenant mix: one heavy bursty tenant and three light
/// interactive tenants, near the 2-replica capacity so routing decides who
/// waits.
fn skewed_mix(n: usize, seed: u64) -> Trace {
    let mix = MultiTenantWorkload::new(
        "skewed",
        vec![
            TenantStream {
                tenant: "heavy".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Mmpp {
                    qps_base: 2.0,
                    qps_burst: 30.0,
                    mean_base_secs: 12.0,
                    mean_burst_secs: 5.0,
                },
                prefix: None,
            },
            TenantStream {
                tenant: "light-a".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 0.4 },
                prefix: None,
            },
            TenantStream {
                tenant: "light-b".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 0.4 },
                prefix: None,
            },
            TenantStream {
                tenant: "light-c".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 0.4 },
                prefix: None,
            },
        ],
    );
    let mut rng = SimRng::new(seed);
    mix.generate(n, &mut rng)
}

/// Worst TTFT p99 among the starved parties: the light tenants, whose
/// requests queue behind the heavy tenant's bursts under share-blind
/// routing. (The heavy tenant itself is the *source* of the overload —
/// fair-share deliberately pushes its excess back, so its own tail is the
/// price of fairness, not starvation.)
fn worst_light_ttft_p99(report: &SimulationReport) -> f64 {
    report.per_tenant[1..]
        .iter()
        .filter(|t| t.completed > 0)
        .map(|t| t.ttft.p99)
        .fold(0.0, f64::max)
}

/// Acceptance pin: fair-share routing demonstrably bounds starvation. On a
/// skewed multi-tenant run the worst starved tenant's TTFT p99 improves at
/// least 2x over blind round-robin, and the report carries per-tenant
/// routed/deferred counts and fair-share attainment.
#[test]
fn fair_share_bounds_starvation_vs_round_robin() {
    let trace = skewed_mix(300, 23);

    let rr = ClusterSimulator::new(base_config(), trace.clone(), oracle(), 23).run();
    assert_eq!(rr.completed, 300);

    let mut fs_cfg = base_config();
    fs_cfg.global_policy = GlobalPolicyKind::FairShare {
        max_outstanding: 24,
    };
    let fs = ClusterSimulator::new(fs_cfg, trace, oracle(), 23).run();
    assert_eq!(fs.completed, 300, "fair-share must still drain everything");

    let rr_worst = worst_light_ttft_p99(&rr);
    let fs_worst = worst_light_ttft_p99(&fs);
    assert!(
        fs_worst < 0.5 * rr_worst,
        "fair-share must improve the worst starved tenant's TTFT p99 at \
         least 2x: {fs_worst} vs {rr_worst}"
    );

    // Routing statistics surface per tenant.
    assert_eq!(fs.per_tenant.len(), 4);
    let routed: u64 = fs.per_tenant.iter().map(|t| t.routed).sum();
    assert_eq!(routed, 300, "every request routes exactly once");
    assert!(
        fs.per_tenant.iter().any(|t| t.deferred > 0),
        "the burst must actually defer requests through the tier"
    );
    for t in &fs.per_tenant {
        assert_eq!(t.routed as usize, t.arrived, "{}", t.tenant);
        let attainment = t
            .fair_share_attainment
            .expect("fair-share runs report attainment");
        assert!(attainment > 0.0, "{}: attainment {attainment}", t.tenant);
    }
    // Round-robin runs carry no attainment column.
    assert!(rr
        .per_tenant
        .iter()
        .all(|t| t.fair_share_attainment.is_none()));
}

/// Fair-share weights skew service toward the heavy tenant when asked to:
/// attainment is measured against the *weighted* entitlement.
#[test]
fn fair_share_attainment_tracks_weights() {
    let trace = skewed_mix(200, 29);
    let mut cfg = base_config();
    cfg.global_policy = GlobalPolicyKind::FairShare { max_outstanding: 4 };
    cfg.tenant_weights = vec![4.0, 1.0, 1.0, 1.0];
    let report = ClusterSimulator::new(cfg, trace, oracle(), 29).run();
    assert_eq!(report.completed, 200);
    for t in &report.per_tenant {
        assert!(t.fair_share_attainment.is_some(), "{}", t.tenant);
    }
}

/// Per-tenant KV quotas: a capped tenant's floods are denied at replica
/// admission (and reported), while the run still drains completely.
#[test]
fn tenant_kv_quota_denials_reported_and_run_drains() {
    let trace = skewed_mix(300, 31);
    let mut cfg = base_config();
    // The heavy tenant (id 0) may hold at most 6% of each replica's KV
    // blocks; light tenants are unlimited.
    cfg.tenant_kv_quota = vec![0.06];
    let report = ClusterSimulator::new(cfg, trace.clone(), oracle(), 31).run();
    assert_eq!(report.completed, 300, "quotas must not strand requests");
    let heavy = &report.per_tenant[0];
    assert!(
        heavy.quota_denied > 0,
        "the capped tenant must hit its quota under burst"
    );
    let light_denied: u64 = report.per_tenant[1..].iter().map(|t| t.quota_denied).sum();
    assert_eq!(light_denied, 0, "unlimited tenants are never denied");

    // The capped tenant's pressure on everyone else drops: light tenants'
    // worst TTFT p99 must not degrade vs the unconstrained run.
    let unconstrained = ClusterSimulator::new(base_config(), trace, oracle(), 31).run();
    let light_worst = |r: &SimulationReport| {
        r.per_tenant[1..]
            .iter()
            .filter(|t| t.completed > 0)
            .map(|t| t.ttft.p99)
            .fold(0.0, f64::max)
    };
    assert!(
        light_worst(&report) <= light_worst(&unconstrained) * 1.05,
        "capping the heavy tenant must not hurt light tenants: {} vs {}",
        light_worst(&report),
        light_worst(&unconstrained)
    );
}

/// The disaggregated simulator accepts non-default tier policies per pool
/// and still drains (its *default* policies stay pinned bit-exactly in
/// `tests/engine_regression.rs`).
#[test]
fn disagg_runs_configurable_pool_policies() {
    let mut rng = SimRng::new(41);
    let trace =
        TraceWorkload::chat_1m().generate(60, &ArrivalProcess::Poisson { qps: 2.0 }, &mut rng);
    let mut cfg = DisaggConfig::new(base_config(), 1, 1);
    cfg.base.num_replicas = 1;
    cfg.prefill_policy = GlobalPolicyKind::LeastOutstanding;
    cfg.decode_policy = GlobalPolicyKind::Deferred {
        max_outstanding: 48,
    };
    let report = DisaggSimulator::new(cfg, trace, oracle(), 41).run();
    assert_eq!(report.completed, 60);
}

/// Affinity routing keeps a tenant's requests on its home replica under
/// light load (the KV/prefix-reuse model) while still draining everything
/// under pressure.
#[test]
fn affinity_routing_completes_and_reports() {
    let trace = skewed_mix(200, 37);
    let mut cfg = base_config();
    cfg.global_policy = GlobalPolicyKind::Affinity { spill_margin: 4 };
    let report = ClusterSimulator::new(cfg, trace, oracle(), 37).run();
    assert_eq!(report.completed, 200);
    let routed: u64 = report.per_tenant.iter().map(|t| t.routed).sum();
    assert_eq!(routed, 200);
}

/// Priority-aware routing binds urgent tiers first out of the deferred
/// queue: under a saturating burst the urgent class's TTFT tail must not be
/// worse than the bulk class's.
#[test]
fn priority_aware_routing_serves_urgent_tier_first() {
    let mix = MultiTenantWorkload::new(
        "tiered",
        vec![
            TenantStream {
                tenant: "urgent".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 1.5 },
                prefix: None,
            },
            TenantStream {
                tenant: "bulk".into(),
                priority: 3,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 4.5 },
                prefix: None,
            },
        ],
    );
    let mut rng = SimRng::new(43);
    let trace = mix.generate(240, &mut rng);
    let mut cfg = base_config();
    cfg.global_policy = GlobalPolicyKind::PriorityAware { max_outstanding: 4 };
    let report = ClusterSimulator::new(cfg, trace, oracle(), 43).run();
    assert_eq!(report.completed, 240);
    let urgent = &report.per_tenant[0];
    let bulk = &report.per_tenant[1];
    assert!(urgent.completed > 0 && bulk.completed > 0);
    assert!(
        urgent.ttft.p99 <= bulk.ttft.p99,
        "urgent tier tail {} must not exceed bulk tail {}",
        urgent.ttft.p99,
        bulk.ttft.p99
    );
}
