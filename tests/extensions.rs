//! Integration tests for the extensions beyond the paper's evaluation:
//! disaggregated serving, deferred routing, async pipeline communication,
//! offline search, and energy/operator metrics.

use vidur::prelude::*;
use vidur::search::offline::{best_by_cost, run_offline_search};
use vidur::simulator::{DisaggConfig, DisaggSimulator};

fn base_config() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    )
}

fn est_source(config: &ClusterConfig) -> RuntimeSource {
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    RuntimeSource::Estimator((*est).clone())
}

fn trace(n: usize, qps: f64, seed: u64) -> Trace {
    let mut rng = SimRng::new(seed);
    TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng)
}

#[test]
fn disagg_with_estimator_completes_and_reports() {
    let cfg = base_config();
    let source = est_source(&cfg);
    let report =
        DisaggSimulator::new(DisaggConfig::new(cfg, 1, 1), trace(60, 2.5, 41), source, 41).run();
    assert_eq!(report.completed, 60);
    assert!(report.energy_kwh > 0.0);
    assert!(!report.operator_time_breakdown.is_empty());
    // TTFT ordering still holds through the hand-off.
    assert!(report.ttft.p50 <= report.e2e.p50);
}

#[test]
fn disagg_pools_scale_throughput() {
    let cfg = base_config();
    let source = est_source(&cfg);
    let t = trace(80, 3.0, 42);
    let small = DisaggSimulator::new(
        DisaggConfig::new(cfg.clone(), 1, 1),
        t.clone(),
        source.clone(),
        42,
    )
    .run();
    let big = DisaggSimulator::new(DisaggConfig::new(cfg, 2, 2), t, source, 42).run();
    assert!(
        big.e2e.p90 <= small.e2e.p90 * 1.01,
        "more pools can't hurt tails"
    );
}

#[test]
fn deferred_routing_tightens_tail_under_bursts() {
    let mut rng = SimRng::new(43);
    let t = TraceWorkload::chat_1m().generate(
        160,
        &ArrivalProcess::Gamma { qps: 8.0, cv: 4.0 },
        &mut rng,
    );
    let mut rr = base_config();
    rr.num_replicas = 4;
    let source = est_source(&rr);
    let rr_report = ClusterSimulator::new(rr.clone(), t.clone(), source.clone(), 43).run();
    let mut def = rr;
    def.global_policy = GlobalPolicyKind::Deferred {
        max_outstanding: 24,
    };
    let def_report = ClusterSimulator::new(def, t, source, 43).run();
    assert_eq!(def_report.completed, 160);
    // Load-aware late binding never loses badly to blind round-robin.
    assert!(def_report.e2e.p99 <= rr_report.e2e.p99 * 1.05);
}

#[test]
fn offline_search_and_online_search_agree_on_feasibility() {
    let mut rng = SimRng::new(44);
    let job = TraceWorkload::chat_1m().generate(30, &ArrivalProcess::Static, &mut rng);
    let configs = vec![base_config()];
    let (evals, _) = run_offline_search(&configs, &job, EstimatorKind::default(), 44);
    assert_eq!(evals.len(), 1);
    assert!(evals[0].makespan_secs > 0.0);
    assert!(best_by_cost(&evals).is_some());
    // Offline throughput implied by makespan matches the capacity search's
    // offline bracket within tolerance.
    let mut ledger = CostLedger::new();
    let params = CapacityParams {
        bisect_iters: 2,
        ..CapacityParams::default()
    };
    let source = est_source(&configs[0]);
    let cap = find_capacity(&configs[0], &job, &params, &source, &mut ledger).unwrap();
    let offline_qps = 30.0 / evals[0].makespan_secs;
    let rel = (cap.offline_report.throughput_qps - offline_qps).abs() / offline_qps;
    assert!(rel < 0.05, "offline throughput mismatch: {rel}");
}

#[test]
fn operator_breakdown_dominated_by_matmuls_for_decode_traffic() {
    let cfg = base_config();
    let source = est_source(&cfg);
    let report = ClusterSimulator::new(cfg, trace(50, 1.0, 45), source, 45).run();
    let top: Vec<&str> = report
        .operator_time_breakdown
        .iter()
        .take(5)
        .map(|(n, _)| n.as_str())
        .collect();
    // Decode iterations stream the big weight matrices; one of the MLP/QKV
    // matmuls must lead the breakdown.
    assert!(
        top[0].contains("proj") || top[0] == "attn_decode",
        "unexpected leader {top:?}"
    );
}

#[test]
fn energy_scales_with_work() {
    let cfg = base_config();
    let source = est_source(&cfg);
    let small = ClusterSimulator::new(cfg.clone(), trace(20, 1.0, 46), source.clone(), 46).run();
    let large = ClusterSimulator::new(cfg, trace(80, 1.0, 46), source, 46).run();
    assert!(large.energy_kwh > small.energy_kwh);
    // Wh per request is of the same magnitude across scales.
    let ratio = large.energy_wh_per_request / small.energy_wh_per_request;
    assert!(ratio > 0.3 && ratio < 3.0, "{ratio}");
}
