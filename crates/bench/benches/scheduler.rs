//! Criterion micro-benchmarks for the replica scheduler: batch formation
//! is invoked once per iteration, hundreds of thousands of times per
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vidur_core::time::SimTime;
use vidur_scheduler::{BatchPolicyKind, ReplicaScheduler, Request, SchedulerConfig};

fn drive(policy: BatchPolicyKind, n_requests: u64) -> u64 {
    let mut s = ReplicaScheduler::new(SchedulerConfig::new(policy, 64), 50_000, 16);
    for i in 0..n_requests {
        s.add_request(Request::new(
            i,
            SimTime::ZERO,
            200 + (i % 700),
            1 + (i % 50),
        ));
    }
    let mut iters = 0;
    while s.outstanding() > 0 {
        let Some(batch) = s.next_batch() else { break };
        s.complete_batch(&batch);
        iters += 1;
    }
    iters
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_drain_200req");
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &policy,
            |b, &p| b.iter(|| drive(p, 200)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
