//! Batch-formation microbench suite: the replica scheduler's
//! `next_batch`/`complete_batch` cycle is invoked once per simulated
//! iteration — hundreds of thousands of times per run, millions per search —
//! so this suite tracks its cost across PRs.
//!
//! Seven scenarios cover the hot-loop regimes:
//!
//! * `decode_heavy` — a saturated decode pool (the steady state of every
//!   long-running replica; the ≥2× acceptance gate lives here),
//! * `churn_preempt` — vLLM recompute churn under KV pressure,
//! * `sarathi_chunked` — chunked prefills riding decode batches,
//! * `lightllm_10k` — token-level admission over a 10k-request backlog,
//! * `multi_tenant_burst` — four interleaved priority classes under KV
//!   pressure: tier-ordered admission inserts plus the full-scan
//!   priority-aware preemption victim walk,
//! * `routing_fairshare` — the global routing tier under skewed 4-tenant
//!   load, gated on fair-share strictly improving the worst light tenant's
//!   first-schedule p99 over round-robin,
//! * `prefix_routing` — a shared-prefix overload through the full cluster
//!   simulator with the prefix-cache tier armed, gated on KV-aware routing
//!   beating round-robin on both hit rate and TTFT p99 (simulated time, so
//!   hardware-independent).
//!
//! Every scenario runs both the optimized `ReplicaScheduler` and the seed's
//! `ReferenceScheduler` (see `vidur_scheduler::reference`) in the same
//! process, so the reported speedup is hardware-independent and the two
//! implementations are differentially smoke-checked (same batch and
//! preemption counts) on every run.
//!
//! Output: human-readable lines plus machine-readable
//! `results/BENCH_scheduler.json`. With `BENCH_SCHEDULER_BASELINE=<path>`
//! set (CI points it at the committed
//! `crates/bench/baselines/BENCH_scheduler.json`), the run fails (exit 1)
//! if the decode-heavy speedup drops below 2× or regresses more than 25%
//! against the baseline — CI's perf-regression gate. `BENCH_SMOKE=1`
//! shrinks the deep-backlog workload for CI.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{
    BatchPolicyKind, GlobalPolicyKind, ReferenceScheduler, ReplicaScheduler, Request, RouteRequest,
    RoutingTier, SchedulerConfig,
};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator, PrefixCacheConfig};
use vidur_workload::{
    ArrivalProcess, MultiTenantWorkload, TenantPrefixConfig, TenantStream, TraceWorkload,
};

/// One scenario's workload description:
/// `(prefill, decode, priority)` per request.
struct Scenario {
    name: &'static str,
    policy: BatchPolicyKind,
    max_batch: usize,
    total_blocks: u64,
    requests: Vec<(u64, u64, u8)>,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    // Smoke mode shrinks only the deep-backlog scenario: the others finish
    // in milliseconds at full size, and shrinking decode_heavy below its
    // batch width would stop exercising the wide-batch regime the 2× gate
    // is about.
    let scale = |n: usize| if smoke && n >= 10_000 { n / 4 } else { n };
    vec![
        // Decode-heavy: short prompts, long generations, large batch — after
        // a brief prefill ramp the scheduler spends the whole run forming
        // full-width decode batches (the seed rescanned and reallocated the
        // running set on each of them).
        Scenario {
            name: "decode_heavy",
            policy: BatchPolicyKind::OrcaPlus,
            max_batch: 192,
            total_blocks: 500_000,
            requests: (0..scale(384) as u64)
                .map(|i| (32 + i % 64, 250 + i % 57, 0))
                .collect(),
        },
        // Churn-heavy: vLLM recompute under tight KV — admissions, growth
        // failures, preemption victim scans, and re-admissions dominate.
        // Long generations outgrow the prompt-only reservations, so decode
        // growth must evict (the drain asserts preemptions actually happen).
        Scenario {
            name: "churn_preempt",
            policy: BatchPolicyKind::Vllm,
            max_batch: 64,
            total_blocks: 500,
            requests: (0..scale(128) as u64)
                .map(|i| (40 + i % 90, 160 + i % 80, 0))
                .collect(),
        },
        // Sarathi: long prompts chunked at 512 tokens with decodes riding
        // along — exercises the partial-prefill continuation scan.
        Scenario {
            name: "sarathi_chunked",
            policy: BatchPolicyKind::SarathiServe { chunk_size: 512 },
            max_batch: 64,
            total_blocks: 500_000,
            requests: (0..scale(200) as u64)
                .map(|i| (900 + (i * 131) % 1600, 40 + i % 80, 0))
                .collect(),
        },
        // LightLLM over a deep backlog: the projected-KV admission bound was
        // a re-sum over the running set per formed batch in the seed.
        Scenario {
            name: "lightllm_10k",
            policy: BatchPolicyKind::LightLlm,
            max_batch: 256,
            total_blocks: 200_000,
            requests: (0..scale(10_000) as u64)
                .map(|i| (50 + i % 350, 10 + i % 60, 0))
                .collect(),
        },
        // Multi-tenant priority burst: four interleaved priority classes
        // under KV pressure, so every admission pays the tier-ordered
        // insert and every OOM runs the full priority-aware victim walk
        // (the uniform-priority scenarios above keep their early-exit fast
        // paths honest by comparison).
        Scenario {
            name: "multi_tenant_burst",
            policy: BatchPolicyKind::Vllm,
            max_batch: 128,
            total_blocks: 1_100,
            requests: (0..scale(1_500) as u64)
                .map(|i| (60 + i % 200, 30 + i % 90, (i % 4) as u8))
                .collect(),
        },
    ]
}

/// Drains the optimized scheduler through the engine's hot path
/// (`next_batch` / `complete_batch_into` / `recycle_batch`); returns
/// (batches, preemptions).
fn drain_optimized(sc: &Scenario) -> (u64, u64) {
    let mut s = ReplicaScheduler::new(
        SchedulerConfig::new(sc.policy, sc.max_batch),
        sc.total_blocks,
        16,
    );
    for (i, &(p, d, prio)) in sc.requests.iter().enumerate() {
        s.add_request(Request::new(i as u64, SimTime::ZERO, p, d).with_priority(prio));
    }
    let mut events = Vec::new();
    let mut batches = 0u64;
    while s.outstanding() > 0 {
        let Some(batch) = s.next_batch() else { break };
        s.complete_batch_into(&batch, &mut events);
        s.recycle_batch(batch);
        batches += 1;
    }
    (batches, s.preemptions())
}

/// Drains the seed-faithful reference implementation.
fn drain_reference(sc: &Scenario) -> (u64, u64) {
    let mut s = ReferenceScheduler::new(
        SchedulerConfig::new(sc.policy, sc.max_batch),
        sc.total_blocks,
        16,
    );
    for (i, &(p, d, prio)) in sc.requests.iter().enumerate() {
        s.add_request(Request::new(i as u64, SimTime::ZERO, p, d).with_priority(prio));
    }
    let mut batches = 0u64;
    while s.outstanding() > 0 {
        let Some(batch) = s.next_batch() else { break };
        s.complete_batch(&batch);
        batches += 1;
    }
    (batches, s.preemptions())
}

// ---- routing_fairshare: the global tier under skewed multi-tenant load ---

/// Replicas behind the routing tier in the fair-share scenario.
const ROUTING_REPLICAS: usize = 4;

/// One arrival in the round-stepped routing drive:
/// `(round, tenant, prefill, decode)`.
fn routing_arrivals(smoke: bool) -> Vec<(u64, u32, u64, u64)> {
    let rounds = if smoke { 120 } else { 240 };
    let mut arrivals = Vec::new();
    for round in 0..rounds as u64 {
        // Heavy tenant 0: a 64-request burst every 24 rounds.
        if round % 24 == 0 {
            for i in 0..64u64 {
                arrivals.push((round, 0, 48 + i % 64, 8));
            }
        }
        // Light tenants 1..3: one request every other round each.
        if round % 2 == 0 {
            for tenant in 1..4u32 {
                arrivals.push((round, tenant, 64, 8));
            }
        }
    }
    arrivals
}

/// Drives the skewed 4-tenant schedule through a [`RoutingTier`] over four
/// replica schedulers, one batch per replica per round. Returns
/// `(batches, worst light-tenant p99 first-schedule delay in rounds)` —
/// the starvation measure the fairness gate compares across policies.
fn drive_routing(kind: GlobalPolicyKind, smoke: bool) -> (u64, u64) {
    let arrivals = routing_arrivals(smoke);
    let total = arrivals.len();
    let mut tier = RoutingTier::new(kind, ROUTING_REPLICAS, 7, &[]);
    let mut replicas: Vec<ReplicaScheduler> = (0..ROUTING_REPLICAS)
        .map(|_| {
            ReplicaScheduler::new(SchedulerConfig::new(BatchPolicyKind::Vllm, 16), 100_000, 16)
        })
        .collect();
    let mut first_sched: Vec<Option<u64>> = vec![None; total];
    let mut events = Vec::new();
    let mut next_arrival = 0usize;
    let mut completed = 0usize;
    let mut batches = 0u64;
    let mut round = 0u64;
    let dispatch = |replicas: &mut Vec<ReplicaScheduler>,
                    arrivals: &Vec<(u64, u32, u64, u64)>,
                    key: u64,
                    target: usize| {
        let (_, tenant, prefill, decode) = arrivals[key as usize];
        replicas[target]
            .add_request(Request::new(key, SimTime::ZERO, prefill, decode).with_tenant(tenant));
    };
    while completed < total {
        assert!(round < 100_000, "routing drive must converge");
        while next_arrival < total && arrivals[next_arrival].0 <= round {
            let (_, tenant, prefill, decode) = arrivals[next_arrival];
            let req = RouteRequest {
                key: next_arrival as u64,
                tenant,
                priority: 0,
                tokens: prefill + decode,
            };
            if let Some(target) = tier.route(req) {
                dispatch(&mut replicas, &arrivals, req.key, target);
            }
            next_arrival += 1;
        }
        for (r, replica) in replicas.iter_mut().enumerate() {
            let Some(batch) = replica.next_batch() else {
                continue;
            };
            batches += 1;
            for slice in batch.slices() {
                let entry = &mut first_sched[slice.request_id as usize];
                if entry.is_none() {
                    *entry = Some(round);
                }
            }
            replica.complete_batch_into(&batch, &mut events);
            for ev in &events {
                if ev.finished {
                    completed += 1;
                    let (_, tenant, prefill, decode) = arrivals[ev.id as usize];
                    tier.on_finished(r, tenant, prefill + decode);
                }
            }
            replica.recycle_batch(batch);
        }
        while let Some((req, target)) = tier.next_ready() {
            dispatch(&mut replicas, &arrivals, req.key, target);
        }
        round += 1;
    }
    // Worst light-tenant p99 of (first-schedule round - arrival round).
    let mut worst = 0u64;
    for tenant in 1..4u32 {
        let mut delays: Vec<u64> = arrivals
            .iter()
            .enumerate()
            .filter(|(_, a)| a.1 == tenant)
            .map(|(i, a)| first_sched[i].expect("scheduled") - a.0)
            .collect();
        delays.sort_unstable();
        let p99 = delays[(delays.len() * 99).div_ceil(100).saturating_sub(1)];
        worst = worst.max(p99);
    }
    (batches, worst)
}

/// Best-of-`reps` wall-clock nanoseconds for `f` (one untimed warm-up).
fn best_of<F: FnMut() -> (u64, u64)>(reps: usize, mut f: F) -> (f64, u64, u64) {
    let (batches, preemptions) = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(out, (batches, preemptions), "non-deterministic drain");
        best = best.min(ns);
    }
    (best, batches, preemptions)
}

#[derive(Debug, Serialize, Deserialize)]
struct ScenarioResult {
    name: String,
    batches: u64,
    preemptions: u64,
    optimized_ns_per_batch: f64,
    reference_ns_per_batch: f64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: u32,
    smoke: bool,
    scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let reps = if smoke { 2 } else { 5 };
    let mut results = Vec::new();
    for sc in scenarios(smoke) {
        let (opt_ns, opt_batches, opt_preempt) = best_of(reps, || drain_optimized(&sc));
        let (ref_ns, ref_batches, ref_preempt) = best_of(reps, || drain_reference(&sc));
        // Differential smoke: both implementations must agree on what ran.
        assert_eq!(
            (opt_batches, opt_preempt),
            (ref_batches, ref_preempt),
            "{}: optimized and reference schedulers diverged",
            sc.name
        );
        // The churn scenario only measures what it claims while preemption
        // actually fires; fail loudly if a workload/scheduler change ever
        // turns it into a smooth decode run.
        if sc.name == "churn_preempt" || sc.name == "multi_tenant_burst" {
            assert!(
                opt_preempt > 0,
                "{} stopped preempting — retune the scenario",
                sc.name
            );
        }
        let r = ScenarioResult {
            name: sc.name.to_string(),
            batches: opt_batches,
            preemptions: opt_preempt,
            optimized_ns_per_batch: opt_ns / opt_batches as f64,
            reference_ns_per_batch: ref_ns / ref_batches as f64,
            speedup: ref_ns / opt_ns,
        };
        println!(
            "bench: scheduler_formation/{:<16} {:>9.0} ns/batch (seed {:>9.0} ns/batch, {:>5.2}x, {} batches, {} preemptions)",
            r.name,
            r.optimized_ns_per_batch,
            r.reference_ns_per_batch,
            r.speedup,
            r.batches,
            r.preemptions
        );
        results.push(r);
    }

    // Global-tier scenario: fair-share vs round-robin over a skewed
    // 4-tenant load. "optimized" = fair-share, "reference" = round-robin;
    // the hard gate is fairness, not speed — the worst light tenant's
    // first-schedule p99 (in rounds) must strictly improve, which is an
    // in-process, hardware-independent property.
    {
        let (fs_ns, fs_batches, fs_worst) = best_of(reps, || {
            drive_routing(GlobalPolicyKind::FairShare { max_outstanding: 8 }, smoke)
        });
        let (rr_ns, rr_batches, rr_worst) =
            best_of(reps, || drive_routing(GlobalPolicyKind::RoundRobin, smoke));
        println!(
            "bench: scheduler_routing/routing_fairshare {:>9.0} ns/batch (round-robin {:>9.0} ns/batch, light-tenant p99 wait {} vs {} rounds)",
            fs_ns / fs_batches as f64,
            rr_ns / rr_batches as f64,
            fs_worst,
            rr_worst
        );
        assert!(
            fs_worst < rr_worst,
            "fair-share routing stopped bounding starvation: light-tenant \
             p99 wait {fs_worst} rounds vs round-robin {rr_worst}"
        );
        // `speedup` records the starvation-improvement factor (round-robin
        // worst light-tenant p99 wait / fair-share's), not a time ratio.
        results.push(ScenarioResult {
            name: "routing_fairshare".to_string(),
            batches: fs_batches,
            preemptions: 0,
            optimized_ns_per_batch: fs_ns / fs_batches as f64,
            reference_ns_per_batch: rr_ns / rr_batches as f64,
            speedup: rr_worst as f64 / fs_worst.max(1) as f64,
        });
    }

    // Prefix-cache routing scenario: KV-aware routing vs round-robin over a
    // high-share multi-tenant trace through the full cluster simulator, the
    // prefix-cache tier armed on both sides. Round-robin smears each shared
    // prefix across every replica (4x the cold misses, and a lower sustained
    // hit rate); KV-aware routing lands requests where their prefix is
    // already resident, so prefills shrink, queues drain faster, and first
    // tokens come back sooner. The hard gate is TTFT p99 — deterministic
    // and in-process, hence hardware-independent.
    {
        let n = if smoke { 150 } else { 400 };
        let mix = MultiTenantWorkload::new(
            "prefix-routing",
            vec![
                TenantStream {
                    tenant: "assistants".into(),
                    priority: 0,
                    workload: TraceWorkload::arxiv_4k(),
                    arrivals: ArrivalProcess::Poisson { qps: 8.0 },
                    prefix: Some(TenantPrefixConfig {
                        share_ratio: 0.95,
                        prefix_tokens: 2048,
                        num_prefixes: 16,
                    }),
                },
                TenantStream {
                    tenant: "rag".into(),
                    priority: 1,
                    workload: TraceWorkload::arxiv_4k(),
                    arrivals: ArrivalProcess::Poisson { qps: 8.0 },
                    prefix: Some(TenantPrefixConfig {
                        share_ratio: 1.0,
                        prefix_tokens: 1024,
                        num_prefixes: 16,
                    }),
                },
            ],
        );
        let mut rng = SimRng::new(71);
        let trace = mix.generate(n, &mut rng);
        let base = ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            4,
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
        );
        let est = onboard(
            &base.model,
            &base.parallelism,
            &base.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let run = |policy: GlobalPolicyKind| {
            let mut cfg = base.clone();
            cfg.global_policy = policy;
            cfg.prefix_cache = Some(PrefixCacheConfig::default());
            ClusterSimulator::new(cfg, trace.clone(), source.clone(), 71).run()
        };
        let time_policy = |policy: GlobalPolicyKind| {
            let report = run(policy);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let start = Instant::now();
                let again = std::hint::black_box(run(policy));
                let ns = start.elapsed().as_nanos() as f64;
                assert_eq!(again, report, "non-deterministic simulator run");
                best = best.min(ns);
            }
            (best, report)
        };
        let (kv_ns, kv) = time_policy(GlobalPolicyKind::KvAware);
        let (rr_ns, rr) = time_policy(GlobalPolicyKind::RoundRobin);
        println!(
            "bench: scheduler_routing/prefix_routing   TTFT p99 {:.3}s vs round-robin {:.3}s \
             ({:.2}x; hit rate {:.1}% vs {:.1}%, tokens saved {} vs {})",
            kv.ttft.p99,
            rr.ttft.p99,
            rr.ttft.p99 / kv.ttft.p99,
            100.0 * kv.prefix_hit_rate,
            100.0 * rr.prefix_hit_rate,
            kv.prefix_tokens_saved,
            rr.prefix_tokens_saved,
        );
        assert!(
            kv.prefix_hit_rate > rr.prefix_hit_rate,
            "kv-aware routing stopped improving the hit rate: {:.3} vs {:.3}",
            kv.prefix_hit_rate,
            rr.prefix_hit_rate
        );
        assert!(
            kv.ttft.p99 < rr.ttft.p99,
            "kv-aware routing stopped beating round-robin on TTFT p99: \
             {:.4}s vs {:.4}s",
            kv.ttft.p99,
            rr.ttft.p99
        );
        // `speedup` records the TTFT-p99 improvement factor (round-robin
        // p99 / kv-aware p99), not a time ratio.
        results.push(ScenarioResult {
            name: "prefix_routing".to_string(),
            batches: kv.total_batches,
            preemptions: kv.preemptions,
            optimized_ns_per_batch: kv_ns / kv.total_batches as f64,
            reference_ns_per_batch: rr_ns / rr.total_batches as f64,
            speedup: rr.ttft.p99 / kv.ttft.p99,
        });
    }

    let report = BenchReport {
        schema: 1,
        smoke,
        scenarios: results,
    };

    // Regression gate: compare against the committed baseline BEFORE
    // overwriting it. Speedup-vs-reference is measured in-process, so the
    // gate is hardware-independent.
    let mut failed = false;
    if let Ok(path) = std::env::var("BENCH_SCHEDULER_BASELINE") {
        // Bench binaries run with the package as cwd; resolve
        // workspace-root-relative paths through the results dir's parent.
        let mut resolved = std::path::PathBuf::from(&path);
        if !resolved.exists() {
            if let Some(root) = vidur_bench::results_dir().parent() {
                resolved = root.join(&path);
            }
        }
        let baseline_txt = std::fs::read_to_string(&resolved)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", resolved.display()));
        let baseline: BenchReport =
            serde_json::from_str(&baseline_txt).expect("parse baseline BENCH_scheduler.json");
        let cur = report
            .scenario("decode_heavy")
            .expect("decode_heavy scenario present");
        if cur.speedup < 2.0 {
            eprintln!(
                "FAIL: decode_heavy speedup {:.2}x is below the 2x acceptance floor",
                cur.speedup
            );
            failed = true;
        }
        if let Some(base) = baseline.scenario("decode_heavy") {
            let floor = 0.75 * base.speedup;
            if cur.speedup < floor {
                eprintln!(
                    "FAIL: decode_heavy speedup {:.2}x regressed >25% vs baseline {:.2}x",
                    cur.speedup, base.speedup
                );
                failed = true;
            } else {
                println!(
                    "gate: decode_heavy {:.2}x vs baseline {:.2}x (floor {:.2}x) — ok",
                    cur.speedup, base.speedup, floor
                );
            }
        }
    }

    vidur_bench::write_json("BENCH_scheduler", &report);
    if failed {
        std::process::exit(1);
    }
}
