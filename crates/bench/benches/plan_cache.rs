//! Criterion micro-benchmark for the batch-shape stage-time cache: an
//! estimator-sourced capacity search over `chat_1m` — the inner loop of
//! Vidur-Search, where the ~10⁵-config sweeps of the paper spend their
//! time — run with the plan cache off and on, plus a hit-rate report.
//!
//! The searched slice of the grid is one parallelism point (llama2-7B,
//! TP1-PP4) across twelve scheduler variants (four policies × three
//! batch sizes). Stage times depend on the parallelism, not the
//! scheduler, so all twelve capacity searches share one
//! [`StageTimer`] — exactly what `onboard_timer`'s process-wide cache gives
//! Vidur-Search — and every timer here is built fresh so each measured
//! iteration starts from a cold shape cache.
//!
//! The acceptance bar for the cache is a ≥2× speedup on this search;
//! `CostLedger` surfaces the hit/miss counters behind it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_search::{find_capacity_with_timer, CapacityParams, CostLedger};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, StageTimer};
use vidur_workload::{ArrivalProcess, Trace, TraceWorkload};

fn parallelism() -> ParallelismConfig {
    ParallelismConfig::new(1, 4)
}

fn scheduler_grid() -> Vec<(BatchPolicyKind, usize)> {
    let mut grid = Vec::new();
    for bs in [32, 64, 128] {
        grid.push((BatchPolicyKind::Vllm, bs));
        grid.push((BatchPolicyKind::SarathiServe { chunk_size: 512 }, bs));
        grid.push((BatchPolicyKind::SarathiServe { chunk_size: 1024 }, bs));
        grid.push((BatchPolicyKind::OrcaPlus, bs));
    }
    grid
}

fn config(policy: BatchPolicyKind, batch_size: usize) -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        parallelism(),
        1,
        SchedulerConfig::new(policy, batch_size),
    )
}

fn base_trace() -> Trace {
    let mut rng = SimRng::new(77);
    TraceWorkload::chat_1m().generate(60, &ArrivalProcess::Static, &mut rng)
}

fn params() -> CapacityParams {
    CapacityParams {
        bisect_iters: 7,
        ..CapacityParams::default()
    }
}

/// A fresh (cold-cache) stage timer for the grid's parallelism point.
fn fresh_timer(cached: bool) -> StageTimer {
    let cfg = config(BatchPolicyKind::Vllm, 64);
    let est = onboard(
        &cfg.model,
        &cfg.parallelism,
        &cfg.sku,
        EstimatorKind::default(),
    );
    StageTimer::new(
        cfg.model.clone(),
        cfg.parallelism,
        cfg.async_pipeline_comm,
        RuntimeSource::Estimator((*est).clone()),
        cached,
    )
}

/// Capacity-searches the scheduler grid through one shared timer,
/// recording into `ledger`. Returns summed capacity (an output sink).
fn run_grid(timer: &StageTimer, ledger: &mut CostLedger, base: &Trace) -> f64 {
    let mut acc = 0.0;
    for (policy, bs) in scheduler_grid() {
        let cfg = config(policy, bs);
        if let Some(cap) = find_capacity_with_timer(&cfg, base, &params(), timer, ledger) {
            acc += cap.capacity_qps;
        }
    }
    acc
}

fn bench_capacity_search(c: &mut Criterion) {
    let base = base_trace();
    // Warm the process-wide estimator cache so onboarding cost (shared by
    // both variants) stays out of the measurement.
    let _ = fresh_timer(false);
    let mut group = c.benchmark_group("capacity_search_chat1m");
    group.bench_function("cache_off", |b| {
        b.iter(|| {
            let timer = fresh_timer(false);
            let mut ledger = CostLedger::new();
            black_box(run_grid(&timer, &mut ledger, &base))
        });
    });
    group.bench_function("cache_on", |b| {
        b.iter(|| {
            let timer = fresh_timer(true);
            let mut ledger = CostLedger::new();
            black_box(run_grid(&timer, &mut ledger, &base))
        });
    });
    group.finish();
}

/// Prints the speedup and the ledger-surfaced hit/miss counters (the
/// acceptance report: ≥2× with the cache on), and cross-checks that both
/// cache states find identical capacities.
fn report_hit_rate(_c: &mut Criterion) {
    let base = base_trace();
    let timed = |cached: bool| {
        // Best-of-3 cold runs, matching the shim's measurement loop.
        let mut best = f64::INFINITY;
        let mut last = (0.0, CostLedger::new());
        for _ in 0..3 {
            let timer = fresh_timer(cached);
            let mut ledger = CostLedger::new();
            let started = Instant::now();
            let acc = run_grid(&timer, &mut ledger, &base);
            best = best.min(started.elapsed().as_secs_f64());
            ledger.record_cache(timer.stats());
            last = (acc, ledger);
        }
        (best, last.0, last.1)
    };
    let (off_secs, off_acc, _) = timed(false);
    let (on_secs, on_acc, ledger) = timed(true);
    assert_eq!(
        off_acc.to_bits(),
        on_acc.to_bits(),
        "cache must not change search results"
    );
    println!(
        "plan_cache: off {:.3}s on {:.3}s speedup {:.2}x | hits {} misses {} hit-rate {:.1}%",
        off_secs,
        on_secs,
        off_secs / on_secs,
        ledger.cache_hits(),
        ledger.cache_misses(),
        ledger.cache_hit_rate() * 100.0
    );
}

criterion_group!(benches, bench_capacity_search, report_hit_rate);
criterion_main!(benches);
