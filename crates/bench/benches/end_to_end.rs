//! Criterion end-to-end benchmark: simulated-requests-per-wall-second of
//! the full cluster simulator — the number behind the paper's Table 2
//! savings factors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn bench_end_to_end(c: &mut Criterion) {
    let config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        1,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    );
    let est = onboard(
        &config.model,
        &config.parallelism,
        &config.sku,
        EstimatorKind::default(),
    );
    let n = 100usize;
    let mut rng = SimRng::new(9);
    let trace =
        TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps: 2.0 }, &mut rng);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("simulate_100_chat_requests", |b| {
        b.iter(|| {
            ClusterSimulator::new(
                config.clone(),
                trace.clone(),
                RuntimeSource::Estimator((*est).clone()),
                9,
            )
            .run()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
