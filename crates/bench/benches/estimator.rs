//! Criterion micro-benchmarks for the runtime estimator: training cost per
//! operator table and prediction latency (predictions sit on the simulator's
//! hot path — every batch iteration queries ~20 operators).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vidur_core::rng::SimRng;
use vidur_estimator::{EstimatorKind, ForestConfig, RandomForest, RuntimeEstimator};
use vidur_hardware::{GpuSku, KernelOracle};
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_profiler::{ProfileCollector, ProfilingPlan};

fn trained() -> RuntimeEstimator {
    let plan = ProfilingPlan::for_model(&ModelSpec::llama2_7b(), &ParallelismConfig::serial());
    let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
    let table = collector.collect(&plan, &mut SimRng::new(1));
    RuntimeEstimator::train(&table, EstimatorKind::default(), 7)
}

fn bench_training(c: &mut Criterion) {
    let plan = ProfilingPlan::for_model(&ModelSpec::llama2_7b(), &ParallelismConfig::serial());
    let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
    let table = collector.collect(&plan, &mut SimRng::new(1));
    let mut group = c.benchmark_group("estimator_training");
    group.sample_size(10);
    group.bench_function("train_full_model", |b| {
        b.iter(|| RuntimeEstimator::train(&table, EstimatorKind::default(), 7));
    });
    group.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=512).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| (x / 64.0).ceil() * 1e-5).collect();
    c.bench_function("estimator/forest_fit_512pts", |b| {
        b.iter(|| RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut SimRng::new(3)));
    });
}

fn bench_prediction(c: &mut Criterion) {
    let est = trained();
    let invs: Vec<OpInvocation> = (1..=1_000)
        .map(|m| {
            OpInvocation::new(
                Operator::MlpUpProj,
                OpInput::Matmul {
                    m,
                    k: 4096,
                    n: 11008,
                },
                32,
            )
        })
        .collect();
    let mut group = c.benchmark_group("estimator");
    group.throughput(Throughput::Elements(invs.len() as u64));
    group.bench_function("predict_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for inv in &invs {
                acc += est.op_time(inv);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_forest_fit, bench_prediction);
criterion_main!(benches);
