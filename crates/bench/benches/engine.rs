//! Criterion micro-benchmarks for the discrete-event engine: event queue
//! throughput is what bounds large-scale simulation speed (the paper's
//! "large-scale" claim rests on simulating millions of iterations quickly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vidur_core::event::EventQueue;
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            let times: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 40)).collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("log_normal_x1000", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.log_normal(0.0, 0.5);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng);
criterion_main!(benches);
