//! Event-loop benchmark suite: the two speed layers of the sharded-engine
//! PR, each gated against a committed baseline.
//!
//! * `queue_churn` — the event-queue core in isolation. A discrete-event
//!   simulator's queue sees a distinctive pattern: a large sorted pre-push
//!   of arrivals, then steady-state churn where each pop schedules a couple
//!   of *near-future* events (completions land just past the current time,
//!   so binary-heap pushes sift almost to the root every time). Runs the
//!   same deterministic churn on the pairing-heap [`EventQueue`] and on the
//!   seed's binary-heap [`BaselineQueue`], in-process, and reports the
//!   ratio — hardware-independent, like the scheduler suite's gates.
//! * `sharded_replay` — the end-to-end layer: a multi-replica estimator
//!   replay run sequentially and with one shard per replica. The reports
//!   must be **byte-identical** (that assertion runs everywhere); the ≥2×
//!   wall-clock gate only applies when the host actually has ≥ 4 cores
//!   (`available_parallelism`), since shard threads time-slice on smaller
//!   machines. The host's core count is recorded in the report.
//! * `metrics_merge` — the same sharded replay in mergeable-metrics mode
//!   (per-shard collectors folded at drain) against the exact mode's full
//!   serial-commit replay. The streamed-effect reduction (≥5×) is asserted
//!   in-process on every run; the ≥1.3× wall-clock gate, like
//!   `sharded_replay`'s, binds only on ≥4-core hosts.
//! * `sharded_stateful` — the speculate-and-verify layer: an offline chat
//!   burst under **least-outstanding** routing (a stateful policy that
//!   reads live replica load) over 8 replicas, sequential vs sharded.
//!   Byte-identical reports, an engaged fast path (no fallback), and a
//!   misprediction rate below 30% of speculated windows are asserted
//!   in-process on every run; the ≥1.5× wall-clock gate binds only on
//!   ≥4-core hosts.
//! * `elastic_diurnal` — a diurnal amplified replay served twice: by a
//!   statically-overprovisioned fleet sized for the peak, and by the SLO/
//!   queue autoscaler growing from one replica inside the same ceiling.
//!   Asserted in-process on every run (hardware-independent): the
//!   autoscaled run holds TTFT-SLO attainment within 5 points of the static
//!   fleet at ≤60% of its replica-hours. The recorded `speedup` is the
//!   replica-hours savings factor, not a wall-clock ratio.
//!
//! Output: human-readable lines plus machine-readable
//! `results/BENCH_event_loop.json`. With `BENCH_EVENT_LOOP_BASELINE=<path>`
//! set (CI points it at the committed
//! `crates/bench/baselines/BENCH_event_loop.json`), the run fails (exit 1)
//! if `queue_churn` falls below its absolute floor or regresses more than
//! 25% against the baseline, or if `sharded_replay` misses 2× (or
//! `sharded_stateful` misses 1.5×) on a ≥4-core host. `BENCH_SMOKE=1`
//! shrinks the workloads for CI.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use vidur_core::event::{BaselineQueue, EventQueue};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, GlobalPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{
    onboard, AutoscalerSpec, ClusterConfig, ClusterSimulator, QuantileMode, SimulationReport,
    TenantSlo,
};
use vidur_workload::{ArrivalProcess, MultiTenantWorkload, TenantStream, Trace, TraceWorkload};

/// The queue-churn workload: `arrivals` sorted pre-pushes, then pops with
/// `children` near-future re-pushes each until the queue drains.
struct QueueWorkload {
    arrivals: usize,
    children_every: u64,
}

/// Drives one queue implementation through the DES pattern; the returned
/// checksum (events popped, low bits of accumulated times) must agree
/// across implementations and repetitions.
macro_rules! drive_queue {
    ($queue:expr, $wl:expr) => {{
        let mut queue = $queue;
        let mut rng = SimRng::new(0xE7E47);
        let mut t = SimTime::ZERO;
        // Sorted arrival pre-push (the trace seed).
        for i in 0..$wl.arrivals as u64 {
            t += SimDuration::from_secs_f64(1e-3 * rng.log_normal(0.0, 0.5));
            queue.push(t, i);
        }
        let mut popped = 0u64;
        let mut acc = 0u64;
        while let Some((now, id)) = queue.pop() {
            popped += 1;
            acc = acc
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(now.as_secs_f64().to_bits() ^ id);
            // Steady-state churn: most events schedule a near-future
            // follow-up (a completion a few stage-times ahead), some also
            // arm a wake-up landing even closer. Near-future pushes are the
            // binary heap's worst case (full sift toward the root).
            if id % $wl.children_every != 0 {
                let dt = 1e-4 * (1.0 + (id % 7) as f64);
                queue.push(now + SimDuration::from_secs_f64(dt), id + 1_000_000);
                if id % 3 == 0 {
                    queue.push(now + SimDuration::from_secs_f64(dt * 0.5), id + 2_000_000);
                }
            }
            if popped >= 4 * $wl.arrivals as u64 {
                break;
            }
        }
        (popped, acc)
    }};
}

/// Best-of-`reps` wall-clock nanoseconds for `f` (one untimed warm-up).
fn best_of<O: PartialEq + std::fmt::Debug, F: FnMut() -> O>(reps: usize, mut f: F) -> (f64, O) {
    let expect = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(out, expect, "non-deterministic benchmark body");
        best = best.min(ns);
    }
    (best, expect)
}

/// The multi-replica replay scenario behind `sharded_replay`: 4 replicas of
/// Llama-2-7B fed a Poisson chat trace through round-robin routing with the
/// trained estimator (jitter-free, so the sharded fast path engages).
fn replay_config() -> ClusterConfig {
    let mut config = ClusterConfig::new(
        ModelSpec::llama2_7b(),
        GpuSku::a100_80g(),
        ParallelismConfig::serial(),
        4,
        SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
    );
    config.plan_cache = true;
    config
}

fn replay_trace(smoke: bool) -> Trace {
    let n = if smoke { 400 } else { 1_200 };
    let mut rng = SimRng::new(29);
    TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps: 10.0 }, &mut rng)
}

#[derive(Debug, Serialize, Deserialize)]
struct ScenarioResult {
    name: String,
    optimized_ns: f64,
    reference_ns: f64,
    speedup: f64,
    /// Event-loop shards of the optimized side (1 for in-process
    /// microbenchmarks).
    shards: usize,
    /// Quantile mode of the optimized side ("n/a" for scenarios that don't
    /// run the simulator).
    quantile_mode: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: u32,
    smoke: bool,
    /// `available_parallelism()` of the measuring host — the end-to-end
    /// gate only binds at 4+.
    cores: usize,
    scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let reps = if smoke { 3 } else { 7 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut results = Vec::new();

    // --- queue_churn: pairing heap vs the seed's binary heap -------------
    {
        // Not scaled down in smoke mode: the ratio depends on queue depth
        // (deeper heaps sift further), so a shrunk smoke run would measure
        // a different regime than the committed full-size baseline — and
        // the full run costs well under a second per repetition.
        let wl = QueueWorkload {
            arrivals: 200_000,
            children_every: 4,
        };
        let (pairing_ns, (popped, checksum)) =
            best_of(reps, || drive_queue!(EventQueue::<u64>::new(), &wl));
        let (binary_ns, baseline_out) =
            best_of(reps, || drive_queue!(BaselineQueue::<u64>::new(), &wl));
        assert_eq!(
            (popped, checksum),
            baseline_out,
            "pairing and binary heaps popped different event streams"
        );
        let r = ScenarioResult {
            name: "queue_churn".to_string(),
            optimized_ns: pairing_ns / popped as f64,
            reference_ns: binary_ns / popped as f64,
            speedup: binary_ns / pairing_ns,
            shards: 1,
            quantile_mode: "n/a".to_string(),
        };
        println!(
            "bench: event_loop/queue_churn   {:>7.1} ns/event (binary heap {:>7.1} ns/event, {:>5.2}x, {} events)",
            r.optimized_ns, r.reference_ns, r.speedup, popped
        );
        results.push(r);
    }

    // --- sharded_replay: sequential vs one-shard-per-replica -------------
    {
        let config = replay_config();
        let trace = replay_trace(smoke);
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let run = |shards: usize| {
            let mut cfg = config.clone();
            cfg.shards = shards;
            ClusterSimulator::new(cfg, trace.clone(), source.clone(), 29).run()
        };
        let (seq_ns, seq_report) = best_of(reps, || run(1));
        let (shard_ns, shard_report) = best_of(reps, || run(4));
        // The whole point: parallelism must not change a single bit.
        assert_eq!(
            seq_report, shard_report,
            "sharded replay diverged from the sequential engine"
        );
        let r = ScenarioResult {
            name: "sharded_replay".to_string(),
            optimized_ns: shard_ns,
            reference_ns: seq_ns,
            speedup: seq_ns / shard_ns,
            shards: 4,
            quantile_mode: "exact".to_string(),
        };
        println!(
            "bench: event_loop/sharded_replay {:>6.1} ms (sequential {:>6.1} ms, {:>5.2}x on {} cores, {} requests)",
            r.optimized_ns / 1e6,
            r.reference_ns / 1e6,
            r.speedup,
            cores,
            trace.len()
        );
        results.push(r);
    }

    // --- metrics_merge: fold-in-the-shards vs full serial-commit replay --
    {
        let config = replay_config();
        let trace = replay_trace(smoke);
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let run = |mode: QuantileMode| {
            let mut cfg = config.clone();
            cfg.shards = 4;
            cfg.quantile_mode = mode;
            ClusterSimulator::new(cfg, trace.clone(), source.clone(), 29).run_with_stats()
        };
        let (replay_ns, (_, replay_stats)) = best_of(reps, || run(QuantileMode::Exact));
        let (fold_ns, (_, fold_stats)) = best_of(reps, || run(QuantileMode::Mergeable));
        // Smoke gate, asserted on every run: the mergeable mode exists to
        // shrink the serial commit, so the streamed-effect count must drop
        // at least 5x regardless of host speed.
        assert!(
            fold_stats.streamed_effects > 0,
            "mergeable mode must still stream tier effects"
        );
        assert!(
            replay_stats.streamed_effects >= 5 * fold_stats.streamed_effects,
            "mergeable mode must stream >=5x fewer effects: replay {} vs fold {}",
            replay_stats.streamed_effects,
            fold_stats.streamed_effects
        );
        let r = ScenarioResult {
            name: "metrics_merge".to_string(),
            optimized_ns: fold_ns,
            reference_ns: replay_ns,
            speedup: replay_ns / fold_ns,
            shards: 4,
            quantile_mode: "mergeable".to_string(),
        };
        println!(
            "bench: event_loop/metrics_merge  {:>6.1} ms (serial commit {:>6.1} ms, {:>5.2}x, effects {} -> {})",
            r.optimized_ns / 1e6,
            r.reference_ns / 1e6,
            r.speedup,
            replay_stats.streamed_effects,
            fold_stats.streamed_effects
        );
        results.push(r);
    }

    // --- sharded_stateful: speculate-and-verify vs sequential ------------
    {
        let mut config = replay_config();
        config.num_replicas = 8;
        config.global_policy = GlobalPolicyKind::LeastOutstanding;
        // Cache-cold pricing: with the plan cache on, repeated batch shapes
        // make shard-side simulation nearly free and the serial verify +
        // commit replay dominates; cold pricing is the regime the paper's
        // capacity sweeps run in (every config change invalidates shapes).
        config.plan_cache = false;
        // Offline burst (the paper's capacity-style replay): every arrival
        // precedes every completion, so the load view speculation routes
        // against matches the live tier and windows verify clean — the
        // regime where speculation pays. (At steady-state qps, completions
        // interleave into nearly every multi-arrival window and the
        // adaptive controller equilibrates near alternating clean and
        // mispredicted windows — still bit-exact, gated by the storm
        // regression test, but rollback-bound rather than a speedup.)
        let trace = {
            let n = if smoke { 400 } else { 1_200 };
            let mut rng = SimRng::new(31);
            TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Static, &mut rng)
        };
        let est = onboard(
            &config.model,
            &config.parallelism,
            &config.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let run = |shards: usize| {
            let mut cfg = config.clone();
            cfg.shards = shards;
            ClusterSimulator::new(cfg, trace.clone(), source.clone(), 29).run_with_stats()
        };
        let (seq_ns, (seq_report, _)) = best_of(reps, || run(1));
        let (spec_ns, (spec_report, spec_stats)) = best_of(reps, || run(4));
        // The tentpole contract, asserted on every run regardless of host:
        // speculation must engage (no silent fallback to one shard) and must
        // not change a single bit of the report.
        assert_eq!(
            seq_report, spec_report,
            "speculative sharded replay diverged from the sequential engine"
        );
        assert_eq!(
            spec_stats.fallback_reason, None,
            "least-outstanding replay must stay on the sharded fast path"
        );
        assert!(
            spec_stats.spec_windows > 0,
            "speculative run must report its windows"
        );
        // Speculation only pays off while most windows verify clean; a storm
        // of rollbacks would silently serialize the run. 30% is loose — the
        // committed offline-burst workload mispredicts no windows at all.
        let miss_rate = spec_stats.mispredictions as f64 / spec_stats.spec_windows as f64;
        assert!(
            miss_rate < 0.30,
            "misprediction rate {miss_rate:.3} exceeds the 0.30 ceiling ({} of {} windows)",
            spec_stats.mispredictions,
            spec_stats.spec_windows
        );
        let r = ScenarioResult {
            name: "sharded_stateful".to_string(),
            optimized_ns: spec_ns,
            reference_ns: seq_ns,
            speedup: seq_ns / spec_ns,
            shards: 4,
            quantile_mode: "exact".to_string(),
        };
        println!(
            "bench: event_loop/sharded_stateful {:>4.1} ms (sequential {:>6.1} ms, {:>5.2}x on {} cores, {} windows, {} mispredicted)",
            r.optimized_ns / 1e6,
            r.reference_ns / 1e6,
            r.speedup,
            cores,
            spec_stats.spec_windows,
            spec_stats.mispredictions
        );
        results.push(r);
    }

    // --- elastic_diurnal: autoscaler vs static overprovisioning ----------
    {
        let peak_replicas = 8;
        let n = if smoke { 300 } else { 900 };
        let mix = MultiTenantWorkload::new(
            "diurnal-amplified",
            vec![TenantStream {
                tenant: "interactive".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                // Full-amplitude diurnal swing: the peak needs most of the
                // static fleet, the trough needs almost none of it.
                arrivals: ArrivalProcess::Diurnal {
                    mean_qps: 3.0,
                    amplitude: 1.0,
                    period_secs: 120.0,
                },
                prefix: None,
            }],
        );
        let mut rng = SimRng::new(61);
        let trace = mix.generate(n, &mut rng);
        let base = replay_config();
        let est = onboard(
            &base.model,
            &base.parallelism,
            &base.sku,
            EstimatorKind::default(),
        );
        let source = RuntimeSource::Estimator((*est).clone());
        let run = |num_replicas: usize, autoscaler: Option<AutoscalerSpec>| {
            let mut cfg = base.clone();
            cfg.num_replicas = num_replicas;
            cfg.autoscaler = autoscaler;
            cfg.tenant_slo = Some(TenantSlo {
                ttft_secs: 2.0,
                e2e_per_token_secs: 0.5,
            });
            let start = Instant::now();
            let report = ClusterSimulator::new(cfg, trace.clone(), source.clone(), 61).run();
            (start.elapsed().as_nanos() as f64, report)
        };
        let attainment = |report: &SimulationReport| -> f64 {
            report.per_tenant[0]
                .slo_attainment
                .expect("tenant SLO armed, requests completed")
        };
        let (static_ns, static_report) = run(peak_replicas, None);
        let mut spec = AutoscalerSpec::new(1, peak_replicas);
        spec.interval_secs = 5.0;
        spec.scale_step = 2;
        spec.queue_low = 6.0;
        let (auto_ns, auto_report) = run(1, Some(spec));
        assert_eq!(
            auto_report.completed, n,
            "autoscaled run must drain the trace"
        );
        // The static fleet never arms the elastic layer, so its
        // replica-hours are the full fleet over the whole makespan.
        let static_hours = peak_replicas as f64 * static_report.makespan_secs / 3600.0;
        let auto_hours = auto_report.replica_hours;
        let (attn_static, attn_auto) = (attainment(&static_report), attainment(&auto_report));
        // The scenario's whole contract, asserted on every run: near-static
        // SLO attainment at a fraction of the replica-hours.
        assert!(
            attn_auto >= attn_static - 0.05,
            "autoscaler gave up too much attainment: {attn_auto:.3} vs static {attn_static:.3}"
        );
        assert!(
            auto_hours <= 0.6 * static_hours,
            "autoscaler must save >=40% replica-hours: {auto_hours:.4} vs static {static_hours:.4}"
        );
        let r = ScenarioResult {
            name: "elastic_diurnal".to_string(),
            optimized_ns: auto_ns,
            reference_ns: static_ns,
            speedup: static_hours / auto_hours,
            shards: 1,
            quantile_mode: "exact".to_string(),
        };
        println!(
            "bench: event_loop/elastic_diurnal attainment {:.3} vs static {:.3}, replica-hours {:.4} vs {:.4} ({:.2}x savings, {} requests)",
            attn_auto, attn_static, auto_hours, static_hours, r.speedup, n
        );
        results.push(r);
    }

    let report = BenchReport {
        schema: 2,
        smoke,
        cores,
        scenarios: results,
    };

    // Regression gate: compare against the committed baseline BEFORE
    // overwriting the results file.
    let mut failed = false;
    if let Ok(path) = std::env::var("BENCH_EVENT_LOOP_BASELINE") {
        let mut resolved = std::path::PathBuf::from(&path);
        if !resolved.exists() {
            if let Some(root) = vidur_bench::results_dir().parent() {
                resolved = root.join(&path);
            }
        }
        let baseline_txt = std::fs::read_to_string(&resolved)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", resolved.display()));
        let baseline: BenchReport =
            serde_json::from_str(&baseline_txt).expect("parse baseline BENCH_event_loop.json");

        let queue = report
            .scenario("queue_churn")
            .expect("queue_churn scenario present");
        if queue.speedup < 1.1 {
            eprintln!(
                "FAIL: queue_churn speedup {:.2}x is below the 1.1x acceptance floor",
                queue.speedup
            );
            failed = true;
        }
        if let Some(base) = baseline.scenario("queue_churn") {
            let floor = 0.75 * base.speedup;
            if queue.speedup < floor {
                eprintln!(
                    "FAIL: queue_churn speedup {:.2}x regressed >25% vs baseline {:.2}x",
                    queue.speedup, base.speedup
                );
                failed = true;
            } else {
                println!(
                    "gate: queue_churn {:.2}x vs baseline {:.2}x (floor {:.2}x) — ok",
                    queue.speedup, base.speedup, floor
                );
            }
        }

        let replay = report
            .scenario("sharded_replay")
            .expect("sharded_replay scenario present");
        if cores >= 4 {
            if replay.speedup < 2.0 {
                eprintln!(
                    "FAIL: sharded_replay speedup {:.2}x is below the 2x acceptance floor \
                     ({cores} cores)",
                    replay.speedup
                );
                failed = true;
            } else {
                println!(
                    "gate: sharded_replay {:.2}x on {cores} cores (floor 2.00x) — ok",
                    replay.speedup
                );
            }
        } else {
            println!(
                "gate: sharded_replay {:.2}x — skipped ({cores} cores < 4; bit-exactness still asserted)",
                replay.speedup
            );
        }

        let fold = report
            .scenario("metrics_merge")
            .expect("metrics_merge scenario present");
        if cores >= 4 {
            if fold.speedup < 1.3 {
                eprintln!(
                    "FAIL: metrics_merge speedup {:.2}x is below the 1.3x acceptance floor \
                     ({cores} cores)",
                    fold.speedup
                );
                failed = true;
            } else {
                println!(
                    "gate: metrics_merge {:.2}x on {cores} cores (floor 1.30x) — ok",
                    fold.speedup
                );
            }
        } else {
            println!(
                "gate: metrics_merge {:.2}x — skipped ({cores} cores < 4; effect-count drop still asserted)",
                fold.speedup
            );
        }

        let stateful = report
            .scenario("sharded_stateful")
            .expect("sharded_stateful scenario present");
        if cores >= 4 {
            if stateful.speedup < 1.5 {
                eprintln!(
                    "FAIL: sharded_stateful speedup {:.2}x is below the 1.5x acceptance floor \
                     ({cores} cores)",
                    stateful.speedup
                );
                failed = true;
            } else {
                println!(
                    "gate: sharded_stateful {:.2}x on {cores} cores (floor 1.50x) — ok",
                    stateful.speedup
                );
            }
        } else {
            println!(
                "gate: sharded_stateful {:.2}x — skipped ({cores} cores < 4; bit-exactness and \
                 misprediction ceiling still asserted)",
                stateful.speedup
            );
        }

        // elastic_diurnal's attainment/replica-hours contract is asserted
        // in-process above (hardware-independent); here we only require the
        // scenario to be present and its savings factor to clear the 1/0.6
        // floor the in-process assert implies.
        let elastic = report
            .scenario("elastic_diurnal")
            .expect("elastic_diurnal scenario present");
        if elastic.speedup < 1.0 / 0.6 {
            eprintln!(
                "FAIL: elastic_diurnal replica-hours savings {:.2}x below the 1.67x floor",
                elastic.speedup
            );
            failed = true;
        } else {
            println!(
                "gate: elastic_diurnal {:.2}x replica-hours savings (floor 1.67x) — ok",
                elastic.speedup
            );
        }
    }

    vidur_bench::write_json("BENCH_event_loop", &report);
    if failed {
        std::process::exit(1);
    }
}
