//! # vidur-bench
//!
//! The benchmark harness regenerating every table and figure of the Vidur
//! paper (see DESIGN.md's per-experiment index), plus ablation studies and
//! Criterion micro-benchmarks.
//!
//! Each `src/bin/*` binary prints a markdown table matching the paper
//! artifact it reproduces and writes a JSON result under `results/`.
//! Absolute numbers come from the analytical hardware oracle, not the
//! authors' testbed — the claims under test are *shape* claims: who wins,
//! by what factor, where crossovers fall.
//!
//! Scale: binaries default to a laptop-friendly scale (reduced config grid,
//! a few hundred requests per probe). Set `VIDUR_FULL=1` for larger traces
//! and the paper-sized grid.

#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale knobs, derived from `VIDUR_FULL`.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Requests per workload sample used in fidelity runs.
    pub fidelity_requests: usize,
    /// Requests per capacity-search probe.
    pub probe_requests: usize,
    /// Capacity bisection iterations.
    pub bisect_iters: u32,
    /// Whether to sweep the full paper configuration grid.
    pub full_grid: bool,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        if std::env::var("VIDUR_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale {
                fidelity_requests: 300,
                probe_requests: 300,
                bisect_iters: 7,
                full_grid: true,
            }
        } else {
            Scale {
                fidelity_requests: 80,
                probe_requests: 100,
                bisect_iters: 5,
                full_grid: false,
            }
        }
    }

    /// The configuration space at this scale.
    pub fn space(&self) -> vidur_search::SearchSpace {
        if self.full_grid {
            vidur_search::SearchSpace::paper()
        } else {
            vidur_search::SearchSpace::reduced()
        }
    }
}

/// Directory where experiment artifacts are written (`results/` at the
/// workspace root, overridable with `VIDUR_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("VIDUR_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Walk up from the executable's cwd to find the workspace root.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Writes a serializable result as pretty JSON under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result");
    eprintln!("[wrote {}]", path.display());
}

/// Prints a markdown table: header row plus aligned data rows.
pub fn print_markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Formats a signed percentage like the paper's figure annotations.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_quick() {
        // Without VIDUR_FULL, the quick profile applies.
        std::env::remove_var("VIDUR_FULL");
        let s = Scale::from_env();
        assert!(!s.full_grid);
        assert!(s.probe_requests <= 150);
    }

    #[test]
    fn fmt_pct_signs() {
        assert_eq!(fmt_pct(1.234), "+1.23%");
        assert_eq!(fmt_pct(-0.5), "-0.50%");
    }

    #[test]
    fn markdown_table_prints() {
        // Smoke: must not panic on ragged rows.
        print_markdown_table(
            &["a", "b"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }
}

/// Shared helpers for the dynamic-fidelity experiments (Figures 4, 7, 8).
pub mod dynamic {
    use super::Scale;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use vidur_core::rng::SimRng;
    use vidur_estimator::EstimatorKind;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_search::{find_capacity, CapacityParams, CostLedger};
    use vidur_simulator::cluster::RuntimeSource;
    use vidur_simulator::{run_fidelity_pair, ClusterConfig, FidelityReport};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    /// The four (model, TP) pairs of §7.2.
    pub fn paper_setups() -> Vec<(ModelSpec, ParallelismConfig)> {
        vec![
            (ModelSpec::llama2_7b(), ParallelismConfig::new(1, 1)),
            (ModelSpec::internlm_20b(), ParallelismConfig::new(2, 1)),
            (ModelSpec::llama2_70b(), ParallelismConfig::new(4, 1)),
            (ModelSpec::qwen_72b(), ParallelismConfig::new(4, 1)),
        ]
    }

    /// The §7.2 deployment for a (model, TP) pair: one replica, vLLM
    /// scheduler, batch 64, A100.
    pub fn paper_config(model: &ModelSpec, par: ParallelismConfig) -> ClusterConfig {
        ClusterConfig::new(
            model.clone(),
            GpuSku::a100_80g(),
            par,
            1,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        )
    }

    /// Runs the paired fidelity experiment at `capacity_frac` of the
    /// system's measured capacity (ground-truth capacity, like the paper's
    /// real-system calibration). Returns `None` when the configuration has
    /// no feasible capacity.
    pub fn fidelity_at_load(
        model: &ModelSpec,
        par: ParallelismConfig,
        workload: &TraceWorkload,
        capacity_frac: f64,
        scale: &Scale,
        seed: u64,
    ) -> Option<FidelityReport> {
        let config = paper_config(model, par);
        let mut rng = SimRng::new(seed);
        let base = workload.generate(scale.probe_requests, &ArrivalProcess::Static, &mut rng);
        let params = CapacityParams {
            bisect_iters: scale.bisect_iters,
            seed,
            ..CapacityParams::default()
        };
        // Ground-truth capacity per (model, workload, seed) is reused across
        // load fractions (Figures 7/8 sweep five fractions per pair).
        type CapacityKey = (String, String, u64);
        static CAPACITY_CACHE: Mutex<Option<HashMap<CapacityKey, Option<f64>>>> = Mutex::new(None);
        let key = (model.name.clone(), workload.name.clone(), seed);
        let cached = CAPACITY_CACHE
            .lock()
            .as_ref()
            .and_then(|c| c.get(&key).copied());
        let capacity = match cached {
            Some(c) => c,
            None => {
                let oracle = RuntimeSource::Oracle(KernelOracle::new(config.sku.clone()));
                let mut ledger = CostLedger::new();
                let c = find_capacity(&config, &base, &params, &oracle, &mut ledger)
                    .map(|r| r.capacity_qps);
                CAPACITY_CACHE
                    .lock()
                    .get_or_insert_with(HashMap::new)
                    .insert(key, c);
                c
            }
        };
        let qps = capacity? * capacity_frac;
        let trace = base.with_arrivals(&ArrivalProcess::Poisson { qps }, &mut rng);
        Some(run_fidelity_pair(
            &config,
            &trace,
            EstimatorKind::default(),
            seed,
        ))
    }
}

/// Shared full-search machinery for Figures 1a/1b/5/6 and Table 2.
///
/// The 12-way (model × trace) configuration search is the most expensive
/// artifact; it is computed once and cached as
/// `results/search_outcomes.json`, which the dependent binaries reuse.
pub mod searches {
    use super::{results_dir, Scale};
    use serde::{Deserialize, Serialize};
    use std::time::Instant;
    use vidur_core::rng::SimRng;
    use vidur_estimator::EstimatorKind;
    use vidur_model::ModelSpec;
    use vidur_search::{run_search, CapacityParams, SearchOutcome};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    /// One (model, trace) search result plus its wall-clock cost.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct PairOutcome {
        /// Model name.
        pub model: String,
        /// Workload name.
        pub workload: String,
        /// The search outcome (evaluations + ledger).
        pub outcome: SearchOutcome,
    }

    /// Loads the cached 12-pair search, or computes and caches it.
    pub fn search_outcomes(scale: &Scale) -> Vec<PairOutcome> {
        let path = results_dir().join("search_outcomes.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(cached) = serde_json::from_str::<Vec<PairOutcome>>(&text) {
                eprintln!("[reusing cached search: {}]", path.display());
                return cached;
            }
        }
        let mut out = Vec::new();
        for model in ModelSpec::paper_models() {
            let configs = scale.space().enumerate(&model);
            for workload in TraceWorkload::paper_workloads() {
                eprintln!(
                    "[searching {} x {} : {} configs]",
                    model.name,
                    workload.name,
                    configs.len()
                );
                let mut rng = SimRng::new(1_000);
                let base =
                    workload.generate(scale.probe_requests, &ArrivalProcess::Static, &mut rng);
                let params = CapacityParams {
                    bisect_iters: scale.bisect_iters,
                    ..CapacityParams::default()
                };
                let started = Instant::now();
                let mut outcome = run_search(&configs, &base, &params, EstimatorKind::default());
                outcome
                    .ledger
                    .add_wall_clock(started.elapsed().as_secs_f64());
                out.push(PairOutcome {
                    model: model.name.clone(),
                    workload: workload.name.clone(),
                    outcome,
                });
            }
        }
        std::fs::create_dir_all(results_dir()).expect("results dir");
        std::fs::write(
            &path,
            serde_json::to_string(&out).expect("serialize search outcomes"),
        )
        .expect("write search cache");
        eprintln!("[cached search: {}]", path.display());
        out
    }
}
