//! Ablation: aggregated vs prefill/decode-disaggregated serving
//! (Splitwise / DistServe, paper §2.2) at equal GPU count.
//!
//! Expected shape: disaggregation tightens the TBT tail (decodes never
//! contend with incoming prompts) and trades a little TTFT (KV transfer);
//! the win grows on prompt-heavy traffic where aggregated decode batches
//! keep getting paused or diluted.

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator, DisaggConfig, DisaggSimulator};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    let model = ModelSpec::llama2_7b();
    let par = ParallelismConfig::serial();
    let sku = GpuSku::a100_80g();
    let est = onboard(&model, &par, &sku, EstimatorKind::default());
    println!("# Ablation — aggregated vs disaggregated (2 GPUs total, LLaMA2-7B)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (workload, qps) in [
        (TraceWorkload::chat_1m(), 4.0),
        (TraceWorkload::arxiv_4k(), 1.2),
        (TraceWorkload::bwb_4k(), 0.8),
    ] {
        let mut rng = SimRng::new(83);
        let trace = workload.generate(
            scale.fidelity_requests * 2,
            &ArrivalProcess::Poisson { qps },
            &mut rng,
        );
        let base = ClusterConfig::new(
            model.clone(),
            sku.clone(),
            par,
            2,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        );
        let agg = ClusterSimulator::new(
            base.clone(),
            trace.clone(),
            RuntimeSource::Estimator((*est).clone()),
            83,
        )
        .run();
        let mut one = base.clone();
        one.num_replicas = 1;
        let disagg = DisaggSimulator::new(
            DisaggConfig::new(one, 1, 1),
            trace,
            RuntimeSource::Estimator((*est).clone()),
            83,
        )
        .run();
        for (mode, r) in [("aggregated x2", &agg), ("disagg 1P+1D", &disagg)] {
            rows.push(vec![
                workload.name.clone(),
                mode.to_string(),
                format!("{}", r.completed),
                format!("{:.0} ms", r.ttft.p90 * 1e3),
                format!("{:.1} ms", r.tbt.p50 * 1e3),
                format!("{:.1} ms", r.tbt.p99 * 1e3),
                format!("{:.2}", r.throughput_qps),
            ]);
        }
        results.push((workload.name.clone(), agg, disagg));
    }
    print_markdown_table(
        &[
            "trace",
            "mode",
            "completed",
            "TTFT p90",
            "TBT p50",
            "TBT p99",
            "throughput",
        ],
        &rows,
    );
    write_json("ablation_disagg", &results);
}
