//! Regenerates **Figure 4**: fidelity of normalized *end-to-end* latency
//! predictions on dynamic (Poisson) workloads at 85% of each system's
//! capacity — median and P95, real vs predicted, four models × three
//! traces. Paper result: <5% error in almost all scenarios, worst for the
//! 7B model.

use vidur_bench::dynamic::{fidelity_at_load, paper_setups};
use vidur_bench::{fmt_pct, print_markdown_table, write_json, Scale};
use vidur_workload::TraceWorkload;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 4 — dynamic-workload fidelity at 85% capacity ({} requests/run)\n",
        scale.probe_requests
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (model, par) in paper_setups() {
        for workload in TraceWorkload::paper_workloads() {
            let Some(rep) = fidelity_at_load(&model, par, &workload, 0.85, &scale, 4_000) else {
                println!("({}: no feasible capacity — skipped)", model.name);
                continue;
            };
            rows.push(vec![
                format!("{} (TP{})", model.name, par.tensor_parallel),
                workload.name.clone(),
                format!("{:.4}", rep.real.normalized_e2e.p50),
                format!("{:.4}", rep.predicted.normalized_e2e.p50),
                fmt_pct(rep.err_norm_e2e_p50()),
                format!("{:.4}", rep.real.normalized_e2e.p95),
                format!("{:.4}", rep.predicted.normalized_e2e.p95),
                fmt_pct(rep.err_norm_e2e_p95()),
            ]);
            results.push(rep);
        }
    }
    print_markdown_table(
        &[
            "model",
            "trace",
            "real p50 (s/tok)",
            "pred p50",
            "err p50",
            "real p95 (s/tok)",
            "pred p95",
            "err p95",
        ],
        &rows,
    );
    let worst = results
        .iter()
        .map(|r| r.err_norm_e2e_p50().abs().max(r.err_norm_e2e_p95().abs()))
        .fold(0.0f64, f64::max);
    println!("\nworst |error| = {worst:.2}%  (paper: <5% in almost all scenarios, max 8.5%)");
    write_json("fig4_dynamic_fidelity", &results);
}
