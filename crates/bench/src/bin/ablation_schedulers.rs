//! Ablation: the scheduler throughput/latency tradeoff (paper §2.2).
//!
//! Runs all five batching policies on the same LLaMA2-7B/Chat-1M workload
//! at a fixed arrival rate and compares throughput, TTFT and TBT tails.
//! Expected shape: prefill-prioritizing schedulers (vLLM, Orca+) deliver
//! low TTFT but pause decodes (high TBT tail); Sarathi-Serve holds the TBT
//! tail flat via chunked prefills at slightly higher TTFT;
//! FasterTransformer (decode-prioritizing, cohort batching) has the worst
//! queueing behaviour at load.

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    let model = ModelSpec::llama2_7b();
    let par = ParallelismConfig::serial();
    let sku = GpuSku::a100_80g();
    let qps = 2.4; // ~80% of the 7B/A100 chat capacity measured by the capacity tests
    let mut rng = SimRng::new(61);
    let n = scale.fidelity_requests * 2;
    let trace = TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng);
    let est = onboard(&model, &par, &sku, EstimatorKind::default());
    println!("# Ablation — scheduler comparison (LLaMA2-7B, Chat-1M @ {qps} QPS, {n} requests)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::SarathiServe { chunk_size: 2048 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        let config = ClusterConfig::new(
            model.clone(),
            sku.clone(),
            par,
            1,
            SchedulerConfig::new(policy, 64),
        );
        let report = ClusterSimulator::new(
            config,
            trace.clone(),
            RuntimeSource::Estimator((*est).clone()),
            61,
        )
        .run();
        rows.push(vec![
            policy.to_string(),
            format!("{:.2}", report.throughput_qps),
            format!("{:.0} ms", report.ttft.p90 * 1e3),
            format!("{:.0} ms", report.tbt.p50 * 1e3),
            format!("{:.0} ms", report.tbt.p99 * 1e3),
            format!("{:.1} s", report.scheduling_delay.p99),
            format!("{:.1}", report.mean_batch_size),
        ]);
        results.push((policy.to_string(), report));
    }
    print_markdown_table(
        &[
            "scheduler",
            "throughput",
            "TTFT p90",
            "TBT p50",
            "TBT p99",
            "sched delay p99",
            "mean batch",
        ],
        &rows,
    );
    write_json("ablation_schedulers", &results);
}
