//! Ablation: estimator family (paper §4.4's design argument).
//!
//! Compares random forest, polynomial ridge, nearest-neighbor and
//! piecewise-linear interpolation on (a) operator-level prediction error
//! against the hardware oracle at off-grid input sizes, and (b) end-to-end
//! simulation fidelity. Expected shape: the random forest is at or near the
//! top on both, and the polynomial is clearly worse at the operator level
//! (it cannot track quantization staircases).

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::{EstimatorKind, RuntimeEstimator};
use vidur_hardware::{GpuSku, KernelOracle};
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::{onboard, ClusterConfig};
use vidur_workload::{ArrivalProcess, TraceWorkload};

/// Operator-level MAPE on off-grid probes.
fn op_mape(est: &RuntimeEstimator, oracle: &KernelOracle) -> f64 {
    let mut errs = Vec::new();
    let mut rng = SimRng::new(99);
    for _ in 0..400 {
        let m = 1 + rng.next_below(4095);
        let invs = [
            OpInvocation::new(
                Operator::MlpUpProj,
                OpInput::Matmul {
                    m,
                    k: 4096,
                    n: 11008,
                },
                1,
            ),
            OpInvocation::new(
                Operator::QkvProj,
                OpInput::Matmul {
                    m,
                    k: 4096,
                    n: 12288,
                },
                1,
            ),
            OpInvocation::new(
                Operator::AttnPrefill,
                OpInput::AttentionPrefill {
                    equiv_len: m,
                    q_heads: 32,
                    head_dim: 128,
                },
                1,
            ),
            OpInvocation::new(
                Operator::AttnDecode,
                OpInput::AttentionDecode {
                    kv_bytes: m * 524_288,
                    tokens: 16,
                },
                1,
            ),
        ];
        for inv in invs {
            let truth = oracle.op_time(&inv);
            errs.push((est.op_time(&inv) - truth).abs() / truth);
        }
    }
    100.0 * errs.iter().sum::<f64>() / errs.len() as f64
}

fn main() {
    let scale = Scale::from_env();
    let model = ModelSpec::llama2_7b();
    let par = ParallelismConfig::serial();
    let sku = GpuSku::a100_80g();
    let oracle = KernelOracle::new(sku.clone());
    let kinds = [
        EstimatorKind::default(),
        EstimatorKind::Polynomial {
            degree: 3,
            ridge: 1e-8,
        },
        EstimatorKind::NearestNeighbor,
        EstimatorKind::LinearInterpolation,
    ];
    println!("# Ablation — estimator family (LLaMA2-7B, A100)\n");
    let config = ClusterConfig::new(
        model.clone(),
        sku.clone(),
        par,
        1,
        SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
    );
    let mut rng = SimRng::new(55);
    let trace = TraceWorkload::chat_1m().generate(
        scale.fidelity_requests,
        &ArrivalProcess::Static,
        &mut rng,
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for kind in kinds {
        let est = onboard(&model, &par, &sku, kind);
        let mape = op_mape(&est, &oracle);
        let rep = vidur_simulator::run_fidelity_pair(&config, &trace, kind, 55);
        rows.push(vec![
            kind.to_string(),
            format!("{mape:.2}%"),
            format!("{:+.2}%", rep.err_norm_exec_p50()),
            format!("{:+.2}%", rep.err_norm_exec_p95()),
        ]);
        results.push((
            kind.to_string(),
            mape,
            rep.err_norm_exec_p50(),
            rep.err_norm_exec_p95(),
        ));
    }
    print_markdown_table(
        &["estimator", "op-level MAPE", "e2e err p50", "e2e err p95"],
        &rows,
    );
    println!(
        "\nExpected shape (paper §4.4): the random forest balances data\n\
         frugality and fidelity; polynomials cannot capture quantization\n\
         staircases and show the worst operator-level error."
    );
    write_json("ablation_estimator", &results);
}
