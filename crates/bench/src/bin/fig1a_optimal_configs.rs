//! Regenerates **Figure 1a**: the optimal deployment configuration (PP, TP,
//! scheduler, chunk size, batch size, SKU) and its QPS-per-dollar for each
//! of the 12 model × trace pairs, under the paper's SLOs (TTFT P90 < 2 s,
//! TBT P99 < 200 ms).
//!
//! Expected shape: optima differ across traces for the same model; Chat-1M
//! achieves the highest QPS/$ and BWB the lowest; larger models earn less
//! QPS/$; Qwen-72B (MHA) is ~2x costlier than LLaMA2-70B (GQA).

use vidur_bench::searches::search_outcomes;
use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_search::SloConstraints;

fn main() {
    let scale = Scale::from_env();
    let outcomes = search_outcomes(&scale);
    let slo = SloConstraints::default();
    println!("# Figure 1a — optimal configuration per model x trace\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for pair in &outcomes {
        match pair.outcome.best(&slo) {
            Some(best) => {
                let cfg = best.config.as_ref().expect("search evals carry configs");
                rows.push(vec![
                    pair.model.clone(),
                    pair.workload.clone(),
                    cfg.sku.name.clone(),
                    format!("TP{}", cfg.parallelism.tensor_parallel),
                    format!("PP{}", cfg.parallelism.pipeline_parallel),
                    cfg.scheduler.policy.to_string(),
                    cfg.scheduler.max_batch_size.to_string(),
                    format!("{:.4}", best.qps_per_dollar),
                ]);
                results.push((pair.model.clone(), pair.workload.clone(), best.clone()));
            }
            None => rows.push(vec![
                pair.model.clone(),
                pair.workload.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no SLO-compliant config".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print_markdown_table(
        &[
            "model",
            "trace",
            "SKU",
            "TP",
            "PP",
            "scheduler",
            "batch",
            "QPS/$",
        ],
        &rows,
    );
    write_json("fig1a_optimal_configs", &results);
}
