//! Regenerates **Figure 5**: the QPS-per-dollar Pareto frontiers against
//! TTFT-P90 and TBT-P99, with SLO-compliance marking, for
//! LLaMA2-70B × Chat-1M and Qwen-72B × Arxiv-4K, plus each pair's best
//! configuration.
//!
//! Expected shape: frontier points optimal on one latency metric may
//! violate the other's SLO; small SLO changes move the achievable QPS/$
//! substantially; Sarathi-Serve configs dominate the compliant region.

use vidur_bench::searches::search_outcomes;
use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_search::{pareto_frontier, SloConstraints};

fn main() {
    let scale = Scale::from_env();
    let outcomes = search_outcomes(&scale);
    let slo = SloConstraints::default();
    let pairs = [("llama2-70b", "chat-1m"), ("qwen-72b", "arxiv-4k")];
    let mut results = Vec::new();
    for (model, trace) in pairs {
        let pair = outcomes
            .iter()
            .find(|p| p.model == model && p.workload == trace)
            .expect("pair searched");
        let evals = &pair.outcome.evaluations;
        println!("# Figure 5 — Pareto frontier: {model} x {trace}\n");
        for (metric_name, metric) in [
            (
                "TTFT-P90",
                &(|e: &vidur_search::ConfigEvaluation| e.ttft_p90)
                    as &dyn Fn(&vidur_search::ConfigEvaluation) -> f64,
            ),
            ("TBT-P99", &|e: &vidur_search::ConfigEvaluation| e.tbt_p99),
        ] {
            let frontier = pareto_frontier(evals, metric);
            println!("## frontier vs {metric_name}\n");
            let mut rows = Vec::new();
            for &i in &frontier {
                let e = &evals[i];
                rows.push(vec![
                    e.label.clone(),
                    format!("{:.4}", e.qps_per_dollar),
                    format!("{:.3}", e.ttft_p90),
                    format!("{:.4}", e.tbt_p99),
                    if slo.satisfied_by(e) { "yes" } else { "NO" }.to_string(),
                ]);
            }
            print_markdown_table(
                &["config", "QPS/$", "TTFT p90 (s)", "TBT p99 (s)", "SLO ok"],
                &rows,
            );
            println!();
            results.push((model, trace, metric_name, frontier.len()));
        }
        match pair.outcome.best(&slo) {
            Some(best) => println!(
                "Best SLO-compliant config: {}  (QPS/$ = {:.4})\n",
                best.label, best.qps_per_dollar
            ),
            None => println!("No SLO-compliant configuration.\n"),
        }
    }
    write_json("fig5_pareto", &results);
}
