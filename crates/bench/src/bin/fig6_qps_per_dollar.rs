//! Regenerates **Figure 6**: QPS per dollar of the best SLO-compliant
//! configuration for every model × trace (log-scale bar chart in the
//! paper; a table here).
//!
//! Expected shape: QPS/$ decreases with model size; per model, Chat-1M is
//! cheapest, BWB most expensive (decode tokens dominate); Qwen-72B roughly
//! 2x the cost of LLaMA2-70B due to its MHA KV-cache load.

use vidur_bench::searches::search_outcomes;
use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_search::SloConstraints;

fn main() {
    let scale = Scale::from_env();
    let outcomes = search_outcomes(&scale);
    let slo = SloConstraints::default();
    println!("# Figure 6 — QPS/$ of best config (TTFT P90 < 2s, TBT P99 < 200ms)\n");
    // Rows: model; columns: trace.
    let traces = ["chat-1m", "arxiv-4k", "bwb-4k"];
    let models = ["llama2-7b", "internlm-20b", "llama2-70b", "qwen-72b"];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for model in models {
        let mut row = vec![model.to_string()];
        for trace in traces {
            let cell = outcomes
                .iter()
                .find(|p| p.model == model && p.workload == trace)
                .and_then(|p| p.outcome.best(&slo))
                .map(|b| format!("{:.4}", b.qps_per_dollar))
                .unwrap_or_else(|| "-".to_string());
            results.push((
                model.to_string(),
                trace.to_string(),
                row.len(),
                cell.clone(),
            ));
            row.push(cell);
        }
        rows.push(row);
    }
    print_markdown_table(&["model \\ trace", "chat-1m", "arxiv-4k", "bwb-4k"], &rows);
    println!(
        "\nExpected shape: column-wise chat < arxiv < bwb in cost (reverse in\n\
         QPS/$); row-wise smaller models earn more QPS/$."
    );
    write_json("fig6_qps_per_dollar", &results);
}
