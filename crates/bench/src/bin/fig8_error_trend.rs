//! Regenerates **Figure 8** (appendix): P95 normalized-E2E-latency
//! prediction error as a function of arrival rate, swept from 0.75× to
//! 0.95× of capacity for each model × trace. Paper shape: error magnitude
//! grows with load and is largest for LLaMA2-7B.

use vidur_bench::dynamic::{fidelity_at_load, paper_setups};
use vidur_bench::{fmt_pct, print_markdown_table, write_json, Scale};
use vidur_workload::TraceWorkload;

fn main() {
    let scale = Scale::from_env();
    let fracs = [0.75, 0.80, 0.85, 0.90, 0.95];
    println!("# Figure 8 — P95 error vs arrival rate (fractions of capacity)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (model, par) in paper_setups() {
        for workload in TraceWorkload::paper_workloads() {
            let mut row = vec![
                format!("{} (TP{})", model.name, par.tensor_parallel),
                workload.name.clone(),
            ];
            let mut errs = Vec::new();
            for &frac in &fracs {
                match fidelity_at_load(&model, par, &workload, frac, &scale, 8_000) {
                    Some(rep) => {
                        let e = rep.err_norm_e2e_p95();
                        row.push(fmt_pct(e));
                        errs.push(e);
                    }
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
            results.push((model.name.clone(), workload.name.clone(), errs));
        }
    }
    print_markdown_table(
        &[
            "model", "trace", "0.75x", "0.80x", "0.85x", "0.90x", "0.95x",
        ],
        &rows,
    );
    write_json("fig8_error_trend", &results);
}
