//! Ablation: global routing policies under bursty traffic (paper §4.5:
//! stateful deferred routing "can be helpful under bursty workloads where
//! early binding routing decisions can hurt performance").
//!
//! Sweeps the arrival coefficient of variation (Gamma interarrivals;
//! cv = 1 is Poisson, higher is burstier) over a 4-replica LLaMA2-7B
//! cluster and compares every tier policy — round-robin, least-outstanding,
//! deferred, priority-aware, fair-share, affinity — on tail latency.
//! Expected shape: all policies tie on smooth traffic; under bursts, early
//! binding (round-robin) develops long queue tails that load-aware and
//! deferred binding avoid. (Single-tenant sweep: fair-share degenerates to
//! deferred and affinity to sticky-one-replica-with-spill; the multi-tenant
//! fairness story lives in `tests/routing.rs` and the `routing_fairshare`
//! bench scenario.)

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, GlobalPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    let model = ModelSpec::llama2_7b();
    let par = ParallelismConfig::serial();
    let sku = GpuSku::a100_80g();
    let est = onboard(&model, &par, &sku, EstimatorKind::default());
    let qps = 8.0; // ~70% of 4-replica chat capacity
    let n = scale.fidelity_requests * 4;
    println!(
        "# Ablation — routing policy vs burstiness (LLaMA2-7B x4 replicas, {qps} QPS, {n} requests)\n"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for cv in [1.0f64, 2.0, 4.0] {
        let mut rng = SimRng::new(91);
        let trace =
            TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Gamma { qps, cv }, &mut rng);
        for policy in [
            GlobalPolicyKind::RoundRobin,
            GlobalPolicyKind::LeastOutstanding,
            GlobalPolicyKind::Deferred {
                max_outstanding: 48,
            },
            GlobalPolicyKind::PriorityAware {
                max_outstanding: 48,
            },
            GlobalPolicyKind::FairShare {
                max_outstanding: 48,
            },
            GlobalPolicyKind::Affinity { spill_margin: 8 },
        ] {
            let mut config = ClusterConfig::new(
                model.clone(),
                sku.clone(),
                par,
                4,
                SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
            );
            config.global_policy = policy;
            let report = ClusterSimulator::new(
                config,
                trace.clone(),
                RuntimeSource::Estimator((*est).clone()),
                91,
            )
            .run();
            rows.push(vec![
                format!("{cv:.0}"),
                policy.to_string(),
                format!("{:.2} s", report.e2e.p90),
                format!("{:.2} s", report.e2e.p99),
                format!("{:.2} s", report.scheduling_delay.p99),
                format!("{:.0} ms", report.ttft.p90 * 1e3),
            ]);
            results.push((cv, policy.to_string(), report));
        }
    }
    print_markdown_table(
        &[
            "arrival cv",
            "routing",
            "E2E p90",
            "E2E p99",
            "sched delay p99",
            "TTFT p90",
        ],
        &rows,
    );
    write_json("ablation_routing", &results);
}
