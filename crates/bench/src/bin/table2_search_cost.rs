//! Regenerates **Table 2**: cost of finding the optimal deployment
//! configuration — projected actual (hardware) cost vs simulated cost, with
//! the savings factor, per model × trace scenario.
//!
//! The "actual" column projects what the same search would have cost on
//! real GPUs (simulated makespan × GPUs × rental price); the "sim" column
//! prices the measured wall-clock at the paper's $9.93/hr 96-core machine.
//! Paper result: savings factors of 3,837x–33,354x.

use vidur_bench::searches::search_outcomes;
use vidur_bench::{print_markdown_table, write_json, Scale};

fn main() {
    let scale = Scale::from_env();
    let outcomes = search_outcomes(&scale);
    println!("# Table 2 — cost of configuration search (actual vs simulated)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut total_actual = 0.0;
    let mut total_sim = 0.0;
    for pair in &outcomes {
        let l = &pair.outcome.ledger;
        total_actual += l.projected_dollars();
        total_sim += l.simulation_dollars();
        rows.push(vec![
            format!("{}-{}", pair.model, pair.workload),
            format!("{}", l.runs()),
            format!("{:.1} GPU-hrs", l.projected_gpu_hours()),
            format!("{:.1} s", l.wall_clock_secs()),
            format!("${:.0}", l.projected_dollars()),
            format!("${:.4}", l.simulation_dollars()),
            format!("{:.0}x", l.savings_factor()),
        ]);
        results.push((pair.model.clone(), pair.workload.clone(), l.clone()));
    }
    print_markdown_table(
        &[
            "scenario",
            "sim runs",
            "projected actual",
            "sim wall-clock",
            "actual $",
            "sim $",
            "savings",
        ],
        &rows,
    );
    println!(
        "\ntotal: projected actual ${total_actual:.0} vs simulated ${total_sim:.2} \
         => {:.0}x overall savings (paper: ~9,000x overall)",
        total_actual / total_sim.max(1e-9)
    );
    write_json("table2_search_cost", &results);
}
