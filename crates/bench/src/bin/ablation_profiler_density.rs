//! Ablation: profiling density vs estimator accuracy (paper §4.2's
//! "minimal set of input sizes" claim).
//!
//! Thins the profiling plan by keeping every k-th point per operator and
//! sweeps the measurement repeat count, reporting the random forest's
//! operator-level MAPE against the oracle. Expected shape: error grows as
//! the plan is thinned (staircase features get missed) and shrinks with
//! repeats (noise averaging), with diminishing returns — supporting the
//! paper's sparse-profiling design.

use vidur_bench::{print_markdown_table, write_json};
use vidur_core::rng::SimRng;
use vidur_estimator::{EstimatorKind, RuntimeEstimator};
use vidur_hardware::{GpuSku, KernelOracle};
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_profiler::{ProfileCollector, ProfilingPlan};

fn thinned_mape(keep_every: usize, repeats: u32) -> (usize, f64) {
    let model = ModelSpec::llama2_7b();
    let par = ParallelismConfig::serial();
    let oracle = KernelOracle::new(GpuSku::a100_80g());
    let full = ProfilingPlan::for_model(&model, &par);
    // Thin per operator so every operator keeps its endpoints.
    let mut kept: Vec<OpInvocation> = Vec::new();
    for op in full.operators() {
        let pts: Vec<&OpInvocation> = full.points().iter().filter(|p| p.op == op).collect();
        for (i, p) in pts.iter().enumerate() {
            if i % keep_every == 0 || i == pts.len() - 1 {
                kept.push(**p);
            }
        }
    }
    let n_points = kept.len();
    // Collect measurements for the kept points only.
    let collector = ProfileCollector::with_repeats(oracle.clone(), repeats);
    let mut rng = SimRng::new(13);
    let mut table =
        vidur_profiler::ProfileTable::new(model.name.clone(), 1, oracle.sku().name.clone());
    for inv in &kept {
        let mut samples = Vec::new();
        for _ in 0..repeats {
            samples.push(collector.oracle().measure(inv, &mut rng));
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        table.push(
            inv.op,
            vidur_profiler::ProfilePoint {
                feature: inv.input.feature(),
                mean_time: mean,
                std_dev: 0.0,
                repeats,
                input: inv.input,
            },
        );
    }
    table.sort();
    let est = RuntimeEstimator::train(&table, EstimatorKind::default(), 7);
    // Probe error on off-grid matmul/attention sizes.
    let mut errs = Vec::new();
    let mut prng = SimRng::new(29);
    for _ in 0..300 {
        let m = 1 + prng.next_below(4095);
        for inv in [
            OpInvocation::new(
                Operator::MlpUpProj,
                OpInput::Matmul {
                    m,
                    k: 4096,
                    n: 11008,
                },
                1,
            ),
            OpInvocation::new(
                Operator::AttnPrefill,
                OpInput::AttentionPrefill {
                    equiv_len: m,
                    q_heads: 32,
                    head_dim: 128,
                },
                1,
            ),
        ] {
            let truth = oracle.op_time(&inv);
            errs.push((est.op_time(&inv) - truth).abs() / truth);
        }
    }
    (
        n_points,
        100.0 * errs.iter().sum::<f64>() / errs.len() as f64,
    )
}

fn main() {
    println!("# Ablation — profiling density and repeats vs estimator error\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for keep_every in [1usize, 2, 4, 8] {
        for repeats in [1u32, 5] {
            let (points, mape) = thinned_mape(keep_every, repeats);
            rows.push(vec![
                format!("1/{keep_every}"),
                repeats.to_string(),
                points.to_string(),
                format!("{mape:.2}%"),
            ]);
            results.push((keep_every, repeats, points, mape));
        }
    }
    print_markdown_table(
        &[
            "plan density",
            "repeats",
            "profiled points",
            "op-level MAPE",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: denser plans and more repeats both reduce error,\n\
         with diminishing returns — a few hundred points per operator are\n\
         enough (the paper's minimal-profiling claim)."
    );
    write_json("ablation_profiler_density", &results);
}
