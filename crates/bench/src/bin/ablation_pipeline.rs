//! Ablation: pipeline-parallel stage scheduling — synchronous send/recv on
//! the critical path vs the asynchronous-communication extension the paper
//! plans for the replica stage scheduler (§4.5).
//!
//! Expected shape: hiding inter-stage transfers shortens every stage,
//! raising throughput and trimming TBT; the gain grows with PP degree
//! (more stage boundaries) and shrinks for TP-heavy configs (fewer, larger
//! stages).

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::cluster::RuntimeSource;
use vidur_simulator::{onboard, ClusterConfig, ClusterSimulator};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    let model = ModelSpec::llama2_70b();
    let sku = GpuSku::a100_80g();
    let mut rng = SimRng::new(71);
    let trace = TraceWorkload::chat_1m().generate(
        scale.fidelity_requests,
        &ArrivalProcess::Static,
        &mut rng,
    );
    println!("# Ablation — sync vs async pipeline communication (LLaMA2-70B)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (tp, pp) in [(1u32, 4u32), (2, 2), (2, 4), (4, 2)] {
        let par = ParallelismConfig::new(tp, pp);
        let mut config = ClusterConfig::new(
            model.clone(),
            sku.clone(),
            par,
            1,
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
        );
        if config.memory_plan().is_err() {
            continue;
        }
        let est = onboard(&model, &par, &sku, EstimatorKind::default());
        let mut run = |async_comm: bool| {
            config.async_pipeline_comm = async_comm;
            ClusterSimulator::new(
                config.clone(),
                trace.clone(),
                RuntimeSource::Estimator((*est).clone()),
                71,
            )
            .run()
        };
        let sync = run(false);
        let asyn = run(true);
        let speedup = sync.makespan_secs / asyn.makespan_secs;
        rows.push(vec![
            par.to_string(),
            format!("{:.1} s", sync.makespan_secs),
            format!("{:.1} s", asyn.makespan_secs),
            format!("{speedup:.3}x"),
            format!("{:.1} / {:.1} ms", sync.tbt.p99 * 1e3, asyn.tbt.p99 * 1e3),
        ]);
        results.push((par.to_string(), sync, asyn));
    }
    print_markdown_table(
        &[
            "parallelism",
            "sync makespan",
            "async makespan",
            "speedup",
            "TBT p99 sync/async",
        ],
        &rows,
    );
    println!(
        "\nFinding: at LLM batch sizes the inter-stage activation payload\n\
         (tokens x hidden dim x 2B) moves in tens of microseconds over NVLink\n\
         while a stage computes for tens of milliseconds — so hiding send/recv\n\
         buys <1%. Pipeline *bubbles* from stage imbalance, not transfer time,\n\
         are the PP overhead that matters (cf. paper §2.2)."
    );
    write_json("ablation_pipeline", &results);
}
