//! Regenerates **Figure 7** (appendix): dynamic-workload fidelity at 75%
//! and 95% of system capacity (median and P95 normalized E2E latency).
//! Paper result: errors stay small at 75%, grow toward 95% (up to 12.65%
//! for the 7B model where CPU-overhead jitter cascades).

use vidur_bench::dynamic::{fidelity_at_load, paper_setups};
use vidur_bench::{fmt_pct, print_markdown_table, write_json, Scale};
use vidur_workload::TraceWorkload;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 7 — fidelity at 75% and 95% of capacity\n");
    let mut results = Vec::new();
    for frac in [0.75, 0.95] {
        println!("## load = {:.0}% of capacity\n", frac * 100.0);
        let mut rows = Vec::new();
        for (model, par) in paper_setups() {
            for workload in TraceWorkload::paper_workloads() {
                let Some(rep) = fidelity_at_load(&model, par, &workload, frac, &scale, 7_000)
                else {
                    continue;
                };
                rows.push(vec![
                    format!("{} (TP{})", model.name, par.tensor_parallel),
                    workload.name.clone(),
                    fmt_pct(rep.err_norm_e2e_p50()),
                    fmt_pct(rep.err_norm_e2e_p95()),
                ]);
                results.push((frac, rep));
            }
        }
        print_markdown_table(&["model", "trace", "err p50", "err p95"], &rows);
        println!();
    }
    write_json("fig7_fidelity_vs_load", &results);
}
