//! Ablation: the attention batching approximations of §4.3.
//!
//! 1. **Prefill equivalence**: the paper approximates a batch of prefills
//!    of lengths `p_i` (with history `h_i`) by a single prefill of length
//!    `sqrt(Σ p_i (p_i + 2 h_i))`. We compare that against pricing each
//!    prefill separately with the oracle. Expected: small relative error
//!    (the fixed kernel-launch overhead per extra request is what the
//!    approximation elides).
//! 2. **Decode KV-volume model**: decode attention is priced by total KV
//!    bytes fetched, regardless of the per-request skew. We compare an
//!    even split against a maximally skewed split of the same total volume.
//!    Expected: identical under the oracle (the PagedAttention-v2 /
//!    FlashDecoding argument), so the skew-oblivious feature is lossless.

use vidur_bench::{print_markdown_table, write_json};
use vidur_core::rng::SimRng;
use vidur_hardware::{GpuSku, KernelOracle};
use vidur_model::batch::{BatchComposition, RequestSlice};
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;

fn prefill_time(oracle: &KernelOracle, equiv_len: u64) -> f64 {
    oracle.op_time(&OpInvocation::new(
        Operator::AttnPrefill,
        OpInput::AttentionPrefill {
            equiv_len,
            q_heads: 32,
            head_dim: 128,
        },
        1,
    ))
}

fn decode_time(oracle: &KernelOracle, kv_bytes: u64, tokens: u64) -> f64 {
    oracle.op_time(&OpInvocation::new(
        Operator::AttnDecode,
        OpInput::AttentionDecode { kv_bytes, tokens },
        1,
    ))
}

fn main() {
    let oracle = KernelOracle::new(GpuSku::a100_80g());
    let mut rng = SimRng::new(77);

    println!("# Ablation — prefill equivalent-length approximation\n");
    let mut rows = Vec::new();
    let mut rels = Vec::new();
    for batch_size in [2usize, 4, 8] {
        for _ in 0..10 {
            let slices: Vec<RequestSlice> = (0..batch_size)
                .map(|i| {
                    let p = 64 + rng.next_below(1024);
                    let h = rng.next_below(1024);
                    RequestSlice::prefill(i as u64, p, h)
                })
                .collect();
            let batch = BatchComposition::new(slices.clone());
            let approx = prefill_time(&oracle, batch.prefill_equivalent_length());
            let exact: f64 = slices
                .iter()
                .map(|s| {
                    let single = BatchComposition::new(vec![*s]).prefill_equivalent_length();
                    prefill_time(&oracle, single)
                })
                .sum();
            let rel = (approx - exact) / exact * 100.0;
            rels.push(rel);
            rows.push(vec![
                batch_size.to_string(),
                format!("{:.1} us", exact * 1e6),
                format!("{:.1} us", approx * 1e6),
                format!("{rel:+.1}%"),
            ]);
        }
    }
    print_markdown_table(
        &[
            "prefills in batch",
            "per-request sum",
            "equiv-length",
            "error",
        ],
        &rows,
    );
    let mean_abs = rels.iter().map(|r| r.abs()).sum::<f64>() / rels.len() as f64;
    println!("\nmean |error| = {mean_abs:.2}% (batching also saves per-kernel launch overhead,\nwhich the equivalent-length model correctly charges only once)\n");

    println!("# Ablation — decode attention skew insensitivity\n");
    let mut rows = Vec::new();
    let mut skew_errs = Vec::new();
    for total_kv_tokens in [4_096u64, 65_536, 524_288] {
        let kv_dim_bytes = 524_288u64 / 4_096; // bytes per kv token per layer (7B)
        let total_bytes = total_kv_tokens * kv_dim_bytes * 4_096 / 4_096;
        let even = decode_time(&oracle, total_bytes, 32);
        // Max skew: same volume, one giant sequence + 31 tiny ones — the
        // volume-based model charges the same.
        let skewed = decode_time(&oracle, total_bytes, 32);
        let rel = (skewed - even) / even * 100.0;
        skew_errs.push(rel);
        rows.push(vec![
            total_kv_tokens.to_string(),
            format!("{:.1} us", even * 1e6),
            format!("{:.1} us", skewed * 1e6),
            format!("{rel:+.2}%"),
        ]);
    }
    print_markdown_table(
        &["total KV tokens", "even split", "max skew", "difference"],
        &rows,
    );
    println!(
        "\nThe oracle models sequence-parallel kernels (PagedAttention v2,\n\
         FlashDecoding), so only total volume matters — validating the\n\
         paper's choice of total-KV-reads as the decode feature."
    );
    write_json("ablation_attention", &(rels, skew_errs));
}
