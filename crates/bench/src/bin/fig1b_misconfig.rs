//! Regenerates **Figure 1b**: the misconfiguration cost matrix for
//! LLaMA2-70B — serving workload X with the optimal configuration of
//! workload Y costs up to ~2x the optimum.

use vidur_bench::searches::search_outcomes;
use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_search::{misconfiguration_matrix, CapacityParams, SloConstraints};
use vidur_simulator::ClusterConfig;
use vidur_workload::{ArrivalProcess, Trace, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    let outcomes = search_outcomes(&scale);
    let slo = SloConstraints::default();
    // Per-trace optimal configs for LLaMA2-70B, from the Figure 1a search.
    let mut optima: Vec<ClusterConfig> = Vec::new();
    let mut traces: Vec<Trace> = Vec::new();
    let mut rng = SimRng::new(1_000);
    for workload in TraceWorkload::paper_workloads() {
        let pair = outcomes
            .iter()
            .find(|p| p.model == "llama2-70b" && p.workload == workload.name)
            .expect("search covers llama2-70b");
        let best = pair
            .outcome
            .best(&slo)
            .or_else(|| pair.outcome.best_unconstrained())
            .expect("llama2-70b has feasible configs");
        optima.push(best.config.clone().expect("configs attached"));
        traces.push(workload.generate(scale.probe_requests, &ArrivalProcess::Static, &mut rng));
    }
    let params = CapacityParams {
        bisect_iters: scale.bisect_iters,
        ..CapacityParams::default()
    };
    let m = misconfiguration_matrix(&optima, &traces, &params, EstimatorKind::default());
    println!("# Figure 1b — misconfiguration cost ratios, LLaMA2-70B\n");
    println!("(rows: config tuned for; columns: workload served)\n");
    let mut rows = Vec::new();
    for (i, name) in m.workloads.iter().enumerate() {
        let mut row = vec![name.clone()];
        for j in 0..m.workloads.len() {
            row.push(format!("{:.2}", m.ratios[i][j]));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("tuned-for \\ served")
        .chain(m.workloads.iter().map(|s| s.as_str()))
        .collect();
    print_markdown_table(&headers, &rows);
    let max_ratio = m
        .ratios
        .iter()
        .flatten()
        .cloned()
        .filter(|r| r.is_finite())
        .fold(0.0f64, f64::max);
    println!("\nmax transfer cost ratio = {max_ratio:.2}x  (paper: up to 2.0x)");
    write_json("fig1b_misconfig", &m);
}
