//! Regenerates **Figure 3**: fidelity of request *execution-time*
//! predictions on static (offline) workloads — median and P95 normalized
//! execution latency, real vs predicted, for the four models × three
//! traces, with the signed error annotations the paper prints above each
//! bar pair. Paper result: all errors within ±3.33%, slightly worse for the
//! 7B model (CPU overhead).

use vidur_bench::{fmt_pct, print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_estimator::EstimatorKind;
use vidur_hardware::GpuSku;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
use vidur_simulator::{run_fidelity_pair, ClusterConfig};
use vidur_workload::{ArrivalProcess, TraceWorkload};

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Figure 3 — static-workload fidelity ({} requests/run, vLLM scheduler)\n",
        scale.fidelity_requests
    );
    let setups = [
        (ModelSpec::llama2_7b(), ParallelismConfig::new(1, 1)),
        (ModelSpec::internlm_20b(), ParallelismConfig::new(2, 1)),
        (ModelSpec::llama2_70b(), ParallelismConfig::new(4, 1)),
        (ModelSpec::qwen_72b(), ParallelismConfig::new(4, 1)),
    ];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (model, par) in setups {
        for workload in TraceWorkload::paper_workloads() {
            let config = ClusterConfig::new(
                model.clone(),
                GpuSku::a100_80g(),
                par,
                1,
                SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
            );
            let mut rng = SimRng::new(3_000);
            let trace =
                workload.generate(scale.fidelity_requests, &ArrivalProcess::Static, &mut rng);
            let rep = run_fidelity_pair(&config, &trace, EstimatorKind::default(), 3_000);
            rows.push(vec![
                format!("{} (TP{})", model.name, par.tensor_parallel),
                workload.name.clone(),
                format!("{:.4}", rep.real.normalized_exec.p50),
                format!("{:.4}", rep.predicted.normalized_exec.p50),
                fmt_pct(rep.err_norm_exec_p50()),
                format!("{:.4}", rep.real.normalized_exec.p95),
                format!("{:.4}", rep.predicted.normalized_exec.p95),
                fmt_pct(rep.err_norm_exec_p95()),
            ]);
            results.push(rep);
        }
    }
    print_markdown_table(
        &[
            "model",
            "trace",
            "real p50 (s/tok)",
            "pred p50",
            "err p50",
            "real p95 (s/tok)",
            "pred p95",
            "err p95",
        ],
        &rows,
    );
    let worst = results
        .iter()
        .map(|r| r.err_norm_exec_p95().abs().max(r.err_norm_exec_p50().abs()))
        .fold(0.0f64, f64::max);
    println!("\nworst |error| = {worst:.2}%  (paper: <= 3.33%)");
    write_json("fig3_static_fidelity", &results);
}
