//! Regenerates **Table 1**: dataset statistics of the three Vidur-Bench
//! workloads (prefill/decode token moments and P:D ratios), side by side
//! with the paper's reported values for the 4K-capped variants.

use vidur_bench::{print_markdown_table, write_json, Scale};
use vidur_core::rng::SimRng;
use vidur_workload::{ArrivalProcess, TraceWorkload, WorkloadStats};

/// Paper values for the 4K-capped rows of Table 1:
/// (prefill mean/median/p90, decode mean/median/p90, P:D median).
const PAPER: [(&str, [f64; 7]); 3] = [
    ("chat-1m", [686.0, 417.0, 1678.0, 197.0, 139.0, 484.0, 2.3]),
    (
        "arxiv-4k",
        [2588.0, 2730.0, 3702.0, 291.0, 167.0, 372.0, 15.7],
    ),
    (
        "bwb-4k",
        [1067.0, 1037.0, 1453.0, 1612.0, 1601.0, 2149.0, 0.65],
    ),
];

fn main() {
    let scale = Scale::from_env();
    let n = if scale.full_grid { 100_000 } else { 20_000 };
    println!("# Table 1 — workload statistics ({n} sampled requests per trace)\n");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (i, workload) in TraceWorkload::paper_workloads().iter().enumerate() {
        let mut rng = SimRng::new(100 + i as u64);
        let trace = workload.generate(n, &ArrivalProcess::Static, &mut rng);
        let s = WorkloadStats::compute(&trace);
        let p = PAPER[i].1;
        rows.push(vec![
            workload.name.clone(),
            format!("{:.0} ({:.0})", s.prefill_mean, p[0]),
            format!("{:.0} ({:.0})", s.prefill_median, p[1]),
            format!("{:.0} ({:.0})", s.prefill_p90, p[2]),
            format!("{:.0} ({:.0})", s.decode_mean, p[3]),
            format!("{:.0} ({:.0})", s.decode_median, p[4]),
            format!("{:.0} ({:.0})", s.decode_p90, p[5]),
            format!("{:.2} ({:.2})", s.pd_ratio_median, p[6]),
        ]);
        results.push((workload.name.clone(), s));
    }
    print_markdown_table(
        &[
            "trace",
            "prefill mean (paper)",
            "prefill med (paper)",
            "prefill p90 (paper)",
            "decode mean (paper)",
            "decode med (paper)",
            "decode p90 (paper)",
            "P:D med (paper)",
        ],
        &rows,
    );
    write_json("table1_workloads", &results);
}
