//! Prefill/decode disaggregated serving — the Splitwise / DistServe
//! architecture the paper discusses in §2.2 ("splitting the computation of
//! prefill and decodes on separate devices") and an extension beyond the
//! open-source Vidur.
//!
//! A **prefill pool** runs prompt processing only (each request is done
//! there once its first token is produced); the KV-cache then moves to a
//! **decode pool** over the cluster interconnect, where the request streams
//! its remaining tokens. The scheme removes prefill/decode interference —
//! decode batches are never paused or diluted by incoming prompts — at the
//! price of the transfer latency and a static pool split.
//!
//! Batch formation and stage timing come from the shared
//! [`engine`](crate::engine); this module contributes only the disaggregated
//! policy: pool topology, per-pool global routing through the shared
//! [`RoutingTier`] (defaults reproduce the original round-robin prefill
//! placement and least-loaded decode admission byte-for-byte), and the KV
//! transfer hop. Both pools reuse the ordinary
//! [`vidur_scheduler::ReplicaScheduler`]; the prefill pool registers
//! requests with `decode_tokens = 1` (the prefill iteration produces the
//! first token, as in Splitwise), and the decode pool admits them via
//! [`vidur_scheduler::ReplicaScheduler::add_remote_prefilled`].

use crate::cluster::routing_stats;
use crate::config::ClusterConfig;
use crate::engine::{self, BatchEngine, EngineReplica, RuntimeSource};
use crate::metrics::SimulationReport;
use serde::{Deserialize, Serialize};
use vidur_core::event::{EventQueue, Simulation};
use vidur_core::time::{SimDuration, SimTime};
use vidur_scheduler::{GlobalPolicyKind, Request, RouteRequest, RoutingTier};
use vidur_workload::Trace;

/// Disaggregated deployment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggConfig {
    /// Shared model / SKU / parallelism / scheduler settings
    /// (`base.num_replicas` is ignored — pool sizes below apply).
    ///
    /// Since both simulators run on the shared engine, `base.late_abort`
    /// and `base.async_pipeline_comm` now apply to disaggregated runs too
    /// (the pre-engine `DisaggSimulator` silently ignored them). Both
    /// default off; clear them when reusing a capacity-search config —
    /// those carry a `late_abort` guardrail — if full-drain semantics are
    /// required.
    pub base: ClusterConfig,
    /// Replicas dedicated to prefill.
    pub prefill_replicas: usize,
    /// Replicas dedicated to decode.
    pub decode_replicas: usize,
    /// KV-cache transfer bandwidth between pools, bytes/s (Splitwise uses
    /// the back-end interconnect; 25–50 GB/s is typical for IB/NVLink
    /// bridges).
    pub kv_transfer_bandwidth: f64,
    /// Fixed per-transfer latency in seconds.
    pub kv_transfer_latency: f64,
    /// Routing policy of the prefill pool's tier (default
    /// [`GlobalPolicyKind::RoundRobin`], the original hard-coded placement).
    ///
    /// The report's per-tenant `routed` counts follow this tier (one per
    /// arrival); `deferred` sums holds across both pool tiers.
    pub prefill_policy: GlobalPolicyKind,
    /// Routing policy of the decode pool's tier (default
    /// [`GlobalPolicyKind::LeastOutstanding`], the original hard-coded
    /// admission). When this runs fair-share, the report's per-tenant
    /// attainment column reflects it (taking precedence over a fair-share
    /// prefill tier).
    pub decode_policy: GlobalPolicyKind,
}

impl DisaggConfig {
    /// Creates a disaggregated config with a 50 GB/s, 1 ms interconnect.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(base: ClusterConfig, prefill_replicas: usize, decode_replicas: usize) -> Self {
        assert!(
            prefill_replicas > 0 && decode_replicas > 0,
            "both pools need at least one replica"
        );
        DisaggConfig {
            base,
            prefill_replicas,
            decode_replicas,
            kv_transfer_bandwidth: 50e9,
            kv_transfer_latency: 1e-3,
            prefill_policy: GlobalPolicyKind::RoundRobin,
            decode_policy: GlobalPolicyKind::LeastOutstanding,
        }
    }

    /// Total GPUs across both pools.
    pub fn total_gpus(&self) -> u32 {
        self.base.parallelism.gpus_per_replica()
            * (self.prefill_replicas + self.decode_replicas) as u32
    }

    /// Transfer time for one request's prompt KV.
    pub fn transfer_time(&self, model_kv_bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            model_kv_bytes as f64 / self.kv_transfer_bandwidth + self.kv_transfer_latency,
        )
    }
}

/// Simulator event payload (public via the `Simulation` trait only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisaggEvent {
    /// Trace request `idx` arrives at the prefill pool.
    #[doc(hidden)]
    Arrival(u32),
    /// A pool replica may schedule (`pool`, replica).
    Wakeup(Pool, u32),
    /// A batch finished (`pool`, replica, batch id).
    BatchComplete(Pool, u32, u64),
    /// Request `idx`'s KV finished transferring to the decode pool.
    KvArrived(u32),
}

/// Which pool an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// The prompt-processing pool.
    Prefill,
    /// The token-generation pool.
    Decode,
}

/// Selects the replica vector for `pool`. A free function over the two
/// fields (rather than a `&mut self` method) so the engine borrow stays
/// split from the pool borrow at call sites.
fn pool_mut<'a>(
    prefill: &'a mut Vec<EngineReplica>,
    decode: &'a mut Vec<EngineReplica>,
    pool: Pool,
) -> &'a mut Vec<EngineReplica> {
    match pool {
        Pool::Prefill => prefill,
        Pool::Decode => decode,
    }
}

/// Event-driven simulator for a disaggregated deployment.
pub struct DisaggSimulator {
    config: DisaggConfig,
    trace: Trace,
    engine: BatchEngine,
    prefill: Vec<EngineReplica>,
    decode: Vec<EngineReplica>,
    /// Global scheduling tier of the prefill pool (routes arrivals).
    prefill_tier: RoutingTier,
    /// Global scheduling tier of the decode pool (routes KV handoffs).
    decode_tier: RoutingTier,
}

impl std::fmt::Debug for DisaggSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggSimulator")
            .field("config", &self.config.base.label())
            .field("prefill_replicas", &self.prefill.len())
            .field("decode_replicas", &self.decode.len())
            .finish()
    }
}

impl DisaggSimulator {
    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the base configuration cannot host the model.
    pub fn new(config: DisaggConfig, trace: Trace, source: RuntimeSource, seed: u64) -> Self {
        let plan = config
            .base
            .memory_plan()
            .expect("configuration cannot host the model");
        let mut prefill = EngineReplica::pool(&config.base, &plan, config.prefill_replicas);
        let mut decode = EngineReplica::pool(&config.base, &plan, config.decode_replicas);
        if let Some(quota) = config.base.tenant_quota_blocks(plan.num_kv_blocks) {
            for replica in prefill.iter_mut().chain(decode.iter_mut()) {
                replica.scheduler.set_tenant_quotas(&quota);
            }
        }
        let prefill_tier = RoutingTier::new(
            config.prefill_policy,
            config.prefill_replicas,
            seed ^ 0x9E37,
            &config.base.tenant_weights,
        );
        let decode_tier = RoutingTier::new(
            config.decode_policy,
            config.decode_replicas,
            seed ^ 0xD155,
            &config.base.tenant_weights,
        );
        let mut engine = BatchEngine::new(
            &config.base,
            source,
            seed,
            config.prefill_replicas + config.decode_replicas,
        );
        if !trace.tenants.is_empty() {
            engine
                .metrics
                .set_tenants(&trace.tenants, config.base.tenant_slo);
        }
        DisaggSimulator {
            config,
            trace,
            engine,
            prefill,
            decode,
            prefill_tier,
            decode_tier,
        }
    }

    /// Runs to completion and returns the report together with run
    /// statistics, mirroring [`ClusterSimulator::run_with_stats`]. The
    /// disaggregated simulator always runs sequentially (fault plans and
    /// sharding are aggregated-cluster features), so the stats report one
    /// shard and nothing streamed.
    pub fn run_with_stats(self) -> (SimulationReport, crate::cluster::RunStats) {
        let report = self.run();
        (
            report,
            crate::cluster::RunStats {
                shards: 1,
                ..crate::cluster::RunStats::default()
            },
        )
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> SimulationReport {
        let arrivals = engine::trace_arrivals(&self.trace, DisaggEvent::Arrival);
        engine::drive(&mut self, arrivals);
        // Routing columns merge both tiers: `routed` counts arrivals (the
        // prefill tier — counting the decode tier's KV handoffs too would
        // double-count requests), `deferred` sums holds in either tier,
        // fair-share attainment comes from whichever tier runs fair-share
        // (decode preferred — it owns the long decode phase), and quota
        // denials sum over both pools' schedulers.
        let mut routing = routing_stats(
            &self.prefill_tier,
            self.prefill.iter().chain(self.decode.iter()),
        );
        for (t, s) in self.decode_tier.tenant_stats().iter().enumerate() {
            if t >= routing.len() {
                routing.resize(t + 1, crate::metrics::TenantRoutingStats::default());
            }
            routing[t].deferred += s.deferred;
            if let Some(a) = self.decode_tier.fair_share_attainment(t as u32) {
                routing[t].fair_share_attainment = Some(a);
            }
        }
        self.engine.metrics.set_tenant_routing(routing);
        self.engine.finish(
            self.trace.len(),
            &self.config.base.sku,
            self.config.total_gpus(),
            self.prefill.iter().chain(self.decode.iter()),
        )
    }

    fn metrics_replica_index(&self, pool: Pool, replica: u32) -> usize {
        match pool {
            Pool::Prefill => replica as usize,
            Pool::Decode => self.prefill.len() + replica as usize,
        }
    }

    /// Registers trace request `idx` with the prefill pool's `target`
    /// replica (one output token: the prefill iteration produces it).
    fn dispatch_prefill(
        &mut self,
        idx: u32,
        target: usize,
        now: SimTime,
        queue: &mut EventQueue<DisaggEvent>,
    ) {
        let tr = self.trace.requests[idx as usize];
        self.prefill[target].scheduler.add_request(
            Request::new(tr.id, now, tr.prefill_tokens, 1)
                .with_tenant(tr.tenant)
                .with_priority(tr.priority),
        );
        self.try_schedule(Pool::Prefill, target as u32, now, queue);
    }

    /// Joins trace request `idx` (KV transferred) to the decode pool's
    /// `target` replica.
    fn dispatch_decode(
        &mut self,
        idx: u32,
        target: usize,
        now: SimTime,
        queue: &mut EventQueue<DisaggEvent>,
    ) {
        let tr = self.trace.requests[idx as usize];
        self.decode[target].scheduler.add_remote_prefilled(
            Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens)
                .with_tenant(tr.tenant)
                .with_priority(tr.priority),
            1,
        );
        self.try_schedule(Pool::Decode, target as u32, now, queue);
    }

    /// Binds deferred requests while `pool`'s tier will place them.
    fn drain_pool(&mut self, pool: Pool, now: SimTime, queue: &mut EventQueue<DisaggEvent>) {
        loop {
            let next = match pool {
                Pool::Prefill => self.prefill_tier.next_ready(),
                Pool::Decode => self.decode_tier.next_ready(),
            };
            let Some((req, target)) = next else {
                break;
            };
            match pool {
                Pool::Prefill => self.dispatch_prefill(req.key as u32, target, now, queue),
                Pool::Decode => self.dispatch_decode(req.key as u32, target, now, queue),
            }
        }
    }

    fn try_schedule(
        &mut self,
        pool: Pool,
        replica: u32,
        now: SimTime,
        queue: &mut EventQueue<DisaggEvent>,
    ) {
        let metrics_idx = self.metrics_replica_index(pool, replica);
        let pool_replicas = pool_mut(&mut self.prefill, &mut self.decode, pool);
        self.engine.try_schedule(
            &mut pool_replicas[replica as usize],
            metrics_idx,
            now,
            queue,
            // Disaggregated MBU accounting is not modeled yet; batches carry
            // no HBM-traffic estimate (matches the pre-engine behavior).
            |_batch| 0.0,
            || DisaggEvent::Wakeup(pool, replica),
            |id| DisaggEvent::BatchComplete(pool, replica, id),
        );
    }
}

impl Simulation for DisaggSimulator {
    type Event = DisaggEvent;

    fn handle(&mut self, now: SimTime, event: DisaggEvent, queue: &mut EventQueue<DisaggEvent>) {
        if self.engine.deadline_exceeded(now) {
            return;
        }
        match event {
            DisaggEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.engine
                    .metrics
                    .on_arrival(tr.id, now, tr.decode_tokens, tr.tenant);
                // The prefill tier places the request (round-robin by
                // default); the request "finishes" there after one output
                // token.
                let req = RouteRequest {
                    key: idx as u64,
                    tenant: tr.tenant,
                    priority: tr.priority,
                    tokens: tr.prefill_tokens + 1,
                };
                if let Some(target) = self.prefill_tier.route(req) {
                    self.dispatch_prefill(idx, target, now, queue);
                }
            }
            DisaggEvent::KvArrived(idx) => {
                let tr = self.trace.requests[idx as usize];
                // The decode tier admits the transferred KV (least-loaded
                // by default).
                let req = RouteRequest {
                    key: idx as u64,
                    tenant: tr.tenant,
                    priority: tr.priority,
                    tokens: tr.prefill_tokens + tr.decode_tokens,
                };
                if let Some(target) = self.decode_tier.route(req) {
                    self.dispatch_decode(idx, target, now, queue);
                }
            }
            DisaggEvent::Wakeup(pool, replica) => {
                pool_mut(&mut self.prefill, &mut self.decode, pool)[replica as usize]
                    .clear_wakeup();
                self.try_schedule(pool, replica, now, queue);
            }
            DisaggEvent::BatchComplete(pool, replica, id) => {
                let metrics_idx = self.metrics_replica_index(pool, replica);
                let r = replica as usize;
                let trace = &self.trace;
                let config = &self.config;
                let kv_per_token = config.base.model.kv_bytes_per_token();
                let prefill_tier = &mut self.prefill_tier;
                let decode_tier = &mut self.decode_tier;
                let pool_replicas = pool_mut(&mut self.prefill, &mut self.decode, pool);
                self.engine.retire_batch(
                    &mut pool_replicas[r],
                    metrics_idx,
                    id,
                    now,
                    queue,
                    // Prefill-pool completions map to the request's real
                    // lifecycle: "finished on the prefill replica" means
                    // "prefill done, first token out, KV must move" unless
                    // the request only ever wanted one token. Decode-pool
                    // events pass through unchanged. Either way a finished
                    // event retires the request from its pool's tier view
                    // (the prefill scheduler is done with it even when the
                    // decode pool takes over).
                    |ev, queue| {
                        let idx = ev.id as usize;
                        let tr = trace.requests[idx];
                        if !ev.finished {
                            return;
                        }
                        match pool {
                            Pool::Prefill => {
                                prefill_tier.on_finished(r, tr.tenant, tr.prefill_tokens + 1);
                                if tr.decode_tokens > 1 {
                                    // Not actually finished: the decode pool
                                    // takes over once the KV transfer lands.
                                    ev.finished = false;
                                    let bytes = tr.prefill_tokens * kv_per_token;
                                    let arrive = now + config.transfer_time(bytes);
                                    queue.push(arrive, DisaggEvent::KvArrived(ev.id as u32));
                                }
                            }
                            Pool::Decode => {
                                decode_tier.on_finished(
                                    r,
                                    tr.tenant,
                                    tr.prefill_tokens + tr.decode_tokens,
                                );
                            }
                        }
                    },
                );
                let free = pool_mut(&mut self.prefill, &mut self.decode, pool)[r]
                    .scheduler
                    .blocks()
                    .free_blocks();
                match pool {
                    Pool::Prefill => self.prefill_tier.set_free_kv_blocks(r, free),
                    Pool::Decode => self.decode_tier.set_free_kv_blocks(r, free),
                }
                self.drain_pool(pool, now, queue);
                self.try_schedule(pool, replica, now, queue);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.engine.halted(self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSimulator;
    use vidur_core::rng::SimRng;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn base() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
        )
    }

    fn trace(n: usize, qps: f64, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng)
    }

    fn oracle() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn disagg_completes_all_requests() {
        let cfg = DisaggConfig::new(base(), 1, 1);
        let report = DisaggSimulator::new(cfg, trace(50, 2.0, 1), oracle(), 1).run();
        assert_eq!(report.completed, 50);
        assert!(report.ttft.p50 > 0.0);
        assert!(report.tbt.p50 > 0.0);
    }

    #[test]
    fn disagg_deterministic() {
        let run = || {
            DisaggSimulator::new(
                DisaggConfig::new(base(), 1, 1),
                trace(30, 2.0, 2),
                oracle(),
                2,
            )
            .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disagg_improves_tbt_tail_over_aggregated() {
        // Same GPU count: 2 aggregated replicas vs 1 prefill + 1 decode.
        // Disaggregation shields decodes from prompt interference, so the
        // TBT tail tightens (Splitwise's core claim).
        let t = trace(120, 3.0, 3);
        let mut agg_cfg = base();
        agg_cfg.num_replicas = 2;
        let agg = ClusterSimulator::new(agg_cfg, t.clone(), oracle(), 3).run();
        let disagg = DisaggSimulator::new(DisaggConfig::new(base(), 1, 1), t, oracle(), 3).run();
        assert_eq!(disagg.completed, 120);
        assert!(
            disagg.tbt.p99 < agg.tbt.p99,
            "disagg TBT p99 {} vs aggregated {}",
            disagg.tbt.p99,
            agg.tbt.p99
        );
    }

    #[test]
    fn transfer_time_scales_with_prompt() {
        let cfg = DisaggConfig::new(base(), 1, 1);
        let small = cfg.transfer_time(1 << 20);
        let large = cfg.transfer_time(1 << 30);
        assert!(large > small * 10);
    }

    #[test]
    fn single_token_requests_never_reach_decode_pool() {
        let mut t = trace(10, 5.0, 4);
        for r in &mut t.requests {
            r.decode_tokens = 1;
        }
        let cfg = DisaggConfig::new(base(), 1, 1);
        let report = DisaggSimulator::new(cfg, t, oracle(), 4).run();
        assert_eq!(report.completed, 10);
    }

    #[test]
    #[should_panic(expected = "both pools")]
    fn empty_pool_rejected() {
        DisaggConfig::new(base(), 0, 1);
    }

    #[test]
    fn base_async_pipeline_comm_applies_to_disagg() {
        // The shared engine honors `base.async_pipeline_comm` for
        // disaggregated runs (the pre-engine simulator ignored it); hiding
        // SendRecv behind compute must shorten a PP>1 run.
        let mut b = base();
        b.parallelism = ParallelismConfig::new(1, 4);
        // Static arrivals keep the run compute-bound so the SendRecv saving
        // is visible in the makespan (as in the cluster-side twin test).
        let mut rng = SimRng::new(6);
        let t = TraceWorkload::chat_1m().generate(30, &ArrivalProcess::Static, &mut rng);
        let sync =
            DisaggSimulator::new(DisaggConfig::new(b.clone(), 1, 1), t.clone(), oracle(), 6).run();
        b.async_pipeline_comm = true;
        let asynch = DisaggSimulator::new(DisaggConfig::new(b, 1, 1), t, oracle(), 6).run();
        assert_eq!(asynch.completed, 30);
        assert!(
            asynch.makespan_secs < sync.makespan_secs,
            "hiding send/recv must help: {} vs {}",
            asynch.makespan_secs,
            sync.makespan_secs
        );
    }

    #[test]
    fn base_late_abort_applies_to_disagg() {
        // The shared engine honors `base.late_abort` for disaggregated runs
        // (the pre-engine simulator ignored it); an overloaded run must now
        // trip the guardrail instead of draining.
        let mut b = base();
        b.late_abort = Some(crate::config::LateAbort {
            delay_limit_secs: 0.05,
            max_late: 3,
        });
        let cfg = DisaggConfig::new(b, 1, 1);
        let report = DisaggSimulator::new(cfg, trace(400, 50.0, 5), oracle(), 5).run();
        assert!(
            report.completed < 400,
            "late-abort guardrail must stop an overloaded disagg run"
        );
    }
}
