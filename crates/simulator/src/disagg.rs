//! Prefill/decode disaggregated serving — the Splitwise / DistServe
//! architecture the paper discusses in §2.2 ("splitting the computation of
//! prefill and decodes on separate devices") and an extension beyond the
//! open-source Vidur.
//!
//! A **prefill pool** runs prompt processing only (each request is done
//! there once its first token is produced); the KV-cache then moves to a
//! **decode pool** over the cluster interconnect, where the request streams
//! its remaining tokens. The scheme removes prefill/decode interference —
//! decode batches are never paused or diluted by incoming prompts — at the
//! price of the transfer latency and a static pool split.
//!
//! Both pools reuse the ordinary [`ReplicaScheduler`]; the prefill pool
//! registers requests with `decode_tokens = 1` (the prefill iteration
//! produces the first token, as in Splitwise), and the decode pool admits
//! them via [`ReplicaScheduler::add_remote_prefilled`].

use crate::config::ClusterConfig;
use crate::metrics::{MetricsCollector, PowerSpec, SimulationReport};
use crate::cluster::RuntimeSource;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vidur_core::event::{self, EventQueue, Simulation};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};
use vidur_model::batch::{BatchComposition, ExecutionPlan};
use vidur_model::runtime::RuntimePredictor;
use vidur_scheduler::replica::CompletionEvent;
use vidur_scheduler::{PipelineTracker, ReplicaScheduler, Request};
use vidur_workload::Trace;

/// Disaggregated deployment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggConfig {
    /// Shared model / SKU / parallelism / scheduler settings
    /// (`base.num_replicas` is ignored — pool sizes below apply).
    pub base: ClusterConfig,
    /// Replicas dedicated to prefill.
    pub prefill_replicas: usize,
    /// Replicas dedicated to decode.
    pub decode_replicas: usize,
    /// KV-cache transfer bandwidth between pools, bytes/s (Splitwise uses
    /// the back-end interconnect; 25–50 GB/s is typical for IB/NVLink
    /// bridges).
    pub kv_transfer_bandwidth: f64,
    /// Fixed per-transfer latency in seconds.
    pub kv_transfer_latency: f64,
}

impl DisaggConfig {
    /// Creates a disaggregated config with a 50 GB/s, 1 ms interconnect.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(base: ClusterConfig, prefill_replicas: usize, decode_replicas: usize) -> Self {
        assert!(
            prefill_replicas > 0 && decode_replicas > 0,
            "both pools need at least one replica"
        );
        DisaggConfig {
            base,
            prefill_replicas,
            decode_replicas,
            kv_transfer_bandwidth: 50e9,
            kv_transfer_latency: 1e-3,
        }
    }

    /// Total GPUs across both pools.
    pub fn total_gpus(&self) -> u32 {
        self.base.parallelism.gpus_per_replica()
            * (self.prefill_replicas + self.decode_replicas) as u32
    }

    /// Transfer time for one request's prompt KV.
    pub fn transfer_time(&self, model_kv_bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            model_kv_bytes as f64 / self.kv_transfer_bandwidth + self.kv_transfer_latency,
        )
    }
}

/// Simulator event payload (public via the `Simulation` trait only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisaggEvent {
    /// Trace request `idx` arrives at the prefill pool.
    #[doc(hidden)]
    Arrival(u32),
    /// A pool replica may schedule (`pool`, replica).
    Wakeup(Pool, u32),
    /// A batch finished (`pool`, replica, batch id).
    BatchComplete(Pool, u32, u64),
    /// Request `idx`'s KV finished transferring to the decode pool.
    KvArrived(u32),
}

/// Which pool an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// The prompt-processing pool.
    Prefill,
    /// The token-generation pool.
    Decode,
}

struct PoolReplica {
    scheduler: ReplicaScheduler,
    pipeline: PipelineTracker,
    wakeup_at: Option<SimTime>,
}

/// Event-driven simulator for a disaggregated deployment.
pub struct DisaggSimulator {
    config: DisaggConfig,
    source: RuntimeSource,
    trace: Trace,
    prefill: Vec<PoolReplica>,
    decode: Vec<PoolReplica>,
    metrics: MetricsCollector,
    inflight: HashMap<u64, (Pool, u32, BatchComposition)>,
    next_batch_id: u64,
    rng: SimRng,
    rr_prefill: usize,
    completed_target: usize,
    deadline: Option<SimTime>,
    deadline_hit: bool,
}

impl std::fmt::Debug for DisaggSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggSimulator")
            .field("config", &self.config.base.label())
            .field("prefill_replicas", &self.prefill.len())
            .field("decode_replicas", &self.decode.len())
            .finish()
    }
}

impl DisaggSimulator {
    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the base configuration cannot host the model.
    pub fn new(config: DisaggConfig, trace: Trace, source: RuntimeSource, seed: u64) -> Self {
        let plan = config
            .base
            .memory_plan()
            .expect("configuration cannot host the model");
        let stages = config.base.parallelism.pipeline_parallel as usize;
        let mk_pool = |n: usize| {
            (0..n)
                .map(|_| PoolReplica {
                    scheduler: ReplicaScheduler::new(
                        config.base.scheduler,
                        plan.num_kv_blocks,
                        config.base.block_size,
                    ),
                    pipeline: PipelineTracker::new(stages),
                    wakeup_at: None,
                })
                .collect::<Vec<_>>()
        };
        let prefill = mk_pool(config.prefill_replicas);
        let decode = mk_pool(config.decode_replicas);
        let metrics = MetricsCollector::new(config.prefill_replicas + config.decode_replicas);
        DisaggSimulator {
            completed_target: trace.len(),
            deadline: config.base.max_sim_time,
            config,
            source,
            trace,
            prefill,
            decode,
            metrics,
            inflight: HashMap::new(),
            next_batch_id: 0,
            rng: SimRng::new(seed),
            rr_prefill: 0,
            deadline_hit: false,
        }
    }

    /// Runs to completion and returns the report.
    pub fn run(mut self) -> SimulationReport {
        let mut queue = EventQueue::new();
        for (i, req) in self.trace.requests.iter().enumerate() {
            queue.push(req.arrival, DisaggEvent::Arrival(i as u32));
        }
        event::run(&mut self, &mut queue, 200_000_000);
        let preempt: u64 = self
            .prefill
            .iter()
            .chain(self.decode.iter())
            .map(|r| r.scheduler.preemptions())
            .sum();
        let gpus = self.config.total_gpus() as f64;
        let sku = &self.config.base.sku;
        self.metrics.into_report(
            self.trace.len(),
            sku.peak_fp16_flops * gpus,
            sku.mem_bandwidth * gpus,
            preempt,
            PowerSpec {
                tdp_watts: sku.tdp_watts,
                idle_watts: sku.idle_watts,
                total_gpus: self.config.total_gpus(),
            },
        )
    }

    fn pool_mut(&mut self, pool: Pool) -> &mut Vec<PoolReplica> {
        match pool {
            Pool::Prefill => &mut self.prefill,
            Pool::Decode => &mut self.decode,
        }
    }

    fn metrics_replica_index(&self, pool: Pool, replica: u32) -> usize {
        match pool {
            Pool::Prefill => replica as usize,
            Pool::Decode => self.prefill.len() + replica as usize,
        }
    }

    fn cpu_overhead(&mut self) -> f64 {
        let base = self.config.base.cpu_overhead;
        if matches!(self.source, RuntimeSource::Oracle(_)) {
            let mut t = base * self.rng.log_normal(0.0, 0.25);
            if self.rng.bernoulli(0.02) {
                t += self.rng.exponential(1.0 / 2.0e-3);
            }
            t
        } else {
            base
        }
    }

    fn try_schedule(&mut self, pool: Pool, replica: u32, now: SimTime, queue: &mut EventQueue<DisaggEvent>) {
        loop {
            let r = replica as usize;
            let free_at = self.pool_mut(pool)[r].pipeline.stage0_free_at();
            if free_at > now {
                let state = &mut self.pool_mut(pool)[r];
                let need = state.wakeup_at.is_none_or(|at| at > free_at);
                if need {
                    state.wakeup_at = Some(free_at);
                    queue.push(free_at, DisaggEvent::Wakeup(pool, replica));
                }
                return;
            }
            let Some(batch) = self.pool_mut(pool)[r].scheduler.next_batch() else {
                return;
            };
            let plan =
                ExecutionPlan::build(&self.config.base.model, &self.config.base.parallelism, &batch);
            let predictor: &dyn RuntimePredictor = match &self.source {
                RuntimeSource::Oracle(o) => o,
                RuntimeSource::Estimator(e) => e,
            };
            let mut stage_secs: Vec<f64> = Vec::with_capacity(plan.num_stages());
            let mut op_acc: Vec<(vidur_model::Operator, f64)> = Vec::with_capacity(20);
            for stage in 0..plan.num_stages() {
                let mut total = 0.0;
                for inv in plan.stage(stage) {
                    let t = predictor.invocation_time(inv);
                    op_acc.push((inv.op, t));
                    total += t;
                }
                stage_secs.push(total);
            }
            for (op, t) in op_acc {
                self.metrics.on_op_time(op, t);
            }
            stage_secs[0] += self.cpu_overhead();
            let durations: Vec<SimDuration> = stage_secs
                .iter()
                .map(|&s| SimDuration::from_secs_f64(s.max(0.0)))
                .collect();
            let tp = self.config.base.parallelism.tensor_parallel as f64;
            let gpu_secs = stage_secs.iter().sum::<f64>() * tp;
            let completion = self.pool_mut(pool)[r].pipeline.schedule(now, &durations);
            self.metrics.on_batch_scheduled(now, &batch, plan.model_flops(), 0.0);
            self.metrics.on_gpu_busy(gpu_secs);
            let kv_util = self.pool_mut(pool)[r].scheduler.blocks().utilization();
            let idx = self.metrics_replica_index(pool, replica);
            self.metrics.on_kv_sample(idx, now, kv_util);
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            self.inflight.insert(id, (pool, replica, batch));
            queue.push(completion, DisaggEvent::BatchComplete(pool, replica, id));
        }
    }

    /// Maps prefill-pool completion events to the request's real lifecycle:
    /// "finished on the prefill replica" means "prefill done, first token
    /// out, KV must move" unless the request only ever wanted one token.
    fn handle_prefill_events(
        &mut self,
        now: SimTime,
        events: &[CompletionEvent],
        queue: &mut EventQueue<DisaggEvent>,
    ) {
        let kv_per_token = self.config.base.model.kv_bytes_per_token();
        let mut translated = Vec::with_capacity(events.len());
        for ev in events {
            let idx = ev.id as usize;
            let real_decode = self.trace.requests[idx].decode_tokens;
            let mut t = *ev;
            if ev.finished && real_decode > 1 {
                // Not actually finished: the decode pool takes over.
                t.finished = false;
                let bytes = self.trace.requests[idx].prefill_tokens * kv_per_token;
                let arrive = now + self.config.transfer_time(bytes);
                queue.push(arrive, DisaggEvent::KvArrived(ev.id as u32));
            }
            translated.push(t);
        }
        self.metrics.on_batch_complete(now, &translated);
    }
}

impl Simulation for DisaggSimulator {
    type Event = DisaggEvent;

    fn handle(&mut self, now: SimTime, event: DisaggEvent, queue: &mut EventQueue<DisaggEvent>) {
        if let Some(deadline) = self.deadline {
            if now > deadline {
                self.deadline_hit = true;
                return;
            }
        }
        match event {
            DisaggEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.metrics.on_arrival(tr.id, now, tr.decode_tokens);
                // Round-robin over prefill replicas; the request "finishes"
                // there after one output token.
                let target = self.rr_prefill % self.prefill.len();
                self.rr_prefill += 1;
                self.prefill[target].scheduler.add_request(Request::new(
                    tr.id,
                    now,
                    tr.prefill_tokens,
                    1,
                ));
                self.try_schedule(Pool::Prefill, target as u32, now, queue);
            }
            DisaggEvent::KvArrived(idx) => {
                let tr = self.trace.requests[idx as usize];
                // Join the least-loaded decode replica.
                let target = (0..self.decode.len())
                    .min_by_key(|&i| self.decode[i].scheduler.outstanding())
                    .expect("decode pool non-empty");
                self.decode[target].scheduler.add_remote_prefilled(
                    Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens),
                    1,
                );
                self.try_schedule(Pool::Decode, target as u32, now, queue);
            }
            DisaggEvent::Wakeup(pool, replica) => {
                self.pool_mut(pool)[replica as usize].wakeup_at = None;
                self.try_schedule(pool, replica, now, queue);
            }
            DisaggEvent::BatchComplete(pool, replica, id) => {
                let (_, _, batch) = self.inflight.remove(&id).expect("unknown batch");
                let events = self.pool_mut(pool)[replica as usize]
                    .scheduler
                    .complete_batch(&batch);
                match pool {
                    Pool::Prefill => self.handle_prefill_events(now, &events, queue),
                    Pool::Decode => self.metrics.on_batch_complete(now, &events),
                }
                let kv_util =
                    self.pool_mut(pool)[replica as usize].scheduler.blocks().utilization();
                let idx = self.metrics_replica_index(pool, replica);
                self.metrics.on_kv_sample(idx, now, kv_util);
                self.try_schedule(pool, replica, now, queue);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.deadline_hit || self.metrics.completed() == self.completed_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSimulator;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn base() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64),
        )
    }

    fn trace(n: usize, qps: f64, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Poisson { qps }, &mut rng)
    }

    fn oracle() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn disagg_completes_all_requests() {
        let cfg = DisaggConfig::new(base(), 1, 1);
        let report = DisaggSimulator::new(cfg, trace(50, 2.0, 1), oracle(), 1).run();
        assert_eq!(report.completed, 50);
        assert!(report.ttft.p50 > 0.0);
        assert!(report.tbt.p50 > 0.0);
    }

    #[test]
    fn disagg_deterministic() {
        let run = || {
            DisaggSimulator::new(DisaggConfig::new(base(), 1, 1), trace(30, 2.0, 2), oracle(), 2)
                .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disagg_improves_tbt_tail_over_aggregated() {
        // Same GPU count: 2 aggregated replicas vs 1 prefill + 1 decode.
        // Disaggregation shields decodes from prompt interference, so the
        // TBT tail tightens (Splitwise's core claim).
        let t = trace(120, 3.0, 3);
        let mut agg_cfg = base();
        agg_cfg.num_replicas = 2;
        let agg = ClusterSimulator::new(agg_cfg, t.clone(), oracle(), 3).run();
        let disagg =
            DisaggSimulator::new(DisaggConfig::new(base(), 1, 1), t, oracle(), 3).run();
        assert_eq!(disagg.completed, 120);
        assert!(
            disagg.tbt.p99 < agg.tbt.p99,
            "disagg TBT p99 {} vs aggregated {}",
            disagg.tbt.p99,
            agg.tbt.p99
        );
    }

    #[test]
    fn transfer_time_scales_with_prompt() {
        let cfg = DisaggConfig::new(base(), 1, 1);
        let small = cfg.transfer_time(1 << 20);
        let large = cfg.transfer_time(1 << 30);
        assert!(large > small * 10);
    }

    #[test]
    fn single_token_requests_never_reach_decode_pool() {
        let mut t = trace(10, 5.0, 4);
        for r in &mut t.requests {
            r.decode_tokens = 1;
        }
        let cfg = DisaggConfig::new(base(), 1, 1);
        let report = DisaggSimulator::new(cfg, t, oracle(), 4).run();
        assert_eq!(report.completed, 10);
    }

    #[test]
    #[should_panic(expected = "both pools")]
    fn empty_pool_rejected() {
        DisaggConfig::new(base(), 0, 1);
    }
}
