//! Model onboarding: profile → train, with a process-wide estimator cache.
//!
//! This is the left half of the paper's Figure 2. Onboarding a (model, TP
//! degree, SKU) triple runs the profiling plan against the hardware oracle
//! and trains the runtime estimator. Because Vidur-Search evaluates hundreds
//! of deployment configurations that share the same triple, onboarded
//! estimators are cached process-wide (the paper similarly reuses compute
//! profiles across the search).

use crate::timing::{RuntimeSource, StageTimer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vidur_core::rng::SimRng;
use vidur_estimator::{EstimatorKind, RuntimeEstimator};
use vidur_hardware::{GpuSku, KernelOracle};
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_profiler::{ProfileCollector, ProfilingPlan};

/// Deterministic base seed for profiling measurement noise.
const PROFILE_SEED: u64 = 0x5EED_0001;
/// Deterministic base seed for estimator training.
const TRAIN_SEED: u64 = 0x5EED_0002;

type CacheKey = (String, u32, String, String);

static CACHE: Mutex<Option<HashMap<CacheKey, Arc<RuntimeEstimator>>>> = Mutex::new(None);

/// Stage timers are shared one level wider than estimators: the batch-shape
/// cache depends on (model, TP, PP, SKU, estimator kind, async-comm), but
/// *not* on the scheduler policy, batch size, or replica count — so every
/// scheduler variant of a parallelism point in a search grid replays the
/// same cached shapes.
type TimerKey = (String, u32, u32, String, String, bool);

static TIMERS: Mutex<Option<HashMap<TimerKey, StageTimer>>> = Mutex::new(None);

/// Onboards a model: profiles the operators for (model, TP, SKU) against the
/// kernel oracle and trains a runtime estimator of the given kind.
///
/// Results are cached process-wide; repeated calls with the same arguments
/// return the same `Arc`.
///
/// # Panics
///
/// Panics if the parallelism configuration is invalid for the model.
pub fn onboard(
    model: &ModelSpec,
    par: &ParallelismConfig,
    sku: &GpuSku,
    kind: EstimatorKind,
) -> Arc<RuntimeEstimator> {
    let key: CacheKey = (
        model.name.clone(),
        par.tensor_parallel,
        sku.name.clone(),
        kind.to_string(),
    );
    {
        let guard = CACHE.lock();
        if let Some(cache) = guard.as_ref() {
            if let Some(hit) = cache.get(&key) {
                return Arc::clone(hit);
            }
        }
    }
    // Profile + train outside the lock (expensive; duplicate work on a race
    // is harmless because results are deterministic).
    let est = Arc::new(onboard_uncached(model, par, sku, kind));
    let mut guard = CACHE.lock();
    let cache = guard.get_or_insert_with(HashMap::new);
    Arc::clone(cache.entry(key).or_insert(est))
}

/// Uncached onboarding (used by ablation benches that sweep profiling
/// parameters).
pub fn onboard_uncached(
    model: &ModelSpec,
    par: &ParallelismConfig,
    sku: &GpuSku,
    kind: EstimatorKind,
) -> RuntimeEstimator {
    // Only the TP degree matters for operator shapes; normalize PP away so
    // TP4-PP1 and TP4-PP2 share a profile.
    let tp_only = ParallelismConfig::new(par.tensor_parallel, 1);
    let plan = ProfilingPlan::for_model(model, &tp_only);
    let oracle = KernelOracle::new(sku.clone());
    let collector = ProfileCollector::new(oracle);
    let mut rng = SimRng::new(PROFILE_SEED ^ par.tensor_parallel as u64);
    let table = collector.collect(&plan, &mut rng);
    RuntimeEstimator::train(&table, kind, TRAIN_SEED)
}

/// Drops all cached estimators and stage timers (test hygiene / memory
/// reclamation).
pub fn clear_cache() {
    *CACHE.lock() = None;
    *TIMERS.lock() = None;
}

/// Onboards the estimator for `config` and wraps it in a [`StageTimer`] —
/// the full prediction pipeline (profile → train → shape-cached stage
/// times) in one step.
///
/// Both halves are cached process-wide: the estimator by (model, TP, SKU,
/// kind) as [`onboard`] does, and the timer — batch-shape cache included —
/// by (model, TP, PP, SKU, kind, async-comm). Configurations differing only
/// in scheduler policy, batch size, or replica count therefore *share* one
/// shape cache, which is where Vidur-Search's grids recoup most of their
/// stage-time work (cached values are pure functions of the shape, so
/// sharing never changes a report). Timers with `config.plan_cache` off are
/// stateless and returned fresh.
pub fn onboard_timer(config: &crate::config::ClusterConfig, kind: EstimatorKind) -> StageTimer {
    if !config.plan_cache {
        let est = onboard(&config.model, &config.parallelism, &config.sku, kind);
        return StageTimer::for_config(config, RuntimeSource::Estimator((*est).clone()));
    }
    let key: TimerKey = (
        config.model.name.clone(),
        config.parallelism.tensor_parallel,
        config.parallelism.pipeline_parallel,
        config.sku.name.clone(),
        kind.to_string(),
        config.async_pipeline_comm,
    );
    {
        let guard = TIMERS.lock();
        if let Some(timers) = guard.as_ref() {
            if let Some(hit) = timers.get(&key) {
                // Fresh counters per caller: the shape map is shared, but
                // hit/miss stats stay exact per configuration evaluation
                // even under concurrent rayon workers.
                return hit.with_fresh_stats();
            }
        }
    }
    let est = onboard(&config.model, &config.parallelism, &config.sku, kind);
    let timer = StageTimer::for_config(config, RuntimeSource::Estimator((*est).clone()));
    let mut guard = TIMERS.lock();
    let timers = guard.get_or_insert_with(HashMap::new);
    timers.entry(key).or_insert(timer).with_fresh_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onboard_caches() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let sku = GpuSku::a100_80g();
        let a = onboard(&model, &par, &sku, EstimatorKind::default());
        let b = onboard(&model, &par, &sku, EstimatorKind::default());
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
    }

    #[test]
    fn pp_degree_shares_profile_shape() {
        let model = ModelSpec::llama2_7b();
        let sku = GpuSku::a100_80g();
        let a = onboard_uncached(
            &model,
            &ParallelismConfig::new(2, 1),
            &sku,
            EstimatorKind::default(),
        );
        let b = onboard_uncached(
            &model,
            &ParallelismConfig::new(2, 2),
            &sku,
            EstimatorKind::default(),
        );
        assert_eq!(a, b, "PP must not change the profile");
    }

    #[test]
    fn different_kinds_are_distinct_entries() {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let sku = GpuSku::a100_80g();
        let rf = onboard(&model, &par, &sku, EstimatorKind::default());
        let nn = onboard(&model, &par, &sku, EstimatorKind::NearestNeighbor);
        assert!(!Arc::ptr_eq(&rf, &nn));
    }
}
