//! The parallel sharded event loop — bit-exact with the sequential engine.
//!
//! # Shard model
//!
//! Replicas in an aggregated cluster interact only through the routing tier
//! and the shared metrics collector; the per-replica simulation (batch
//! formation, pipeline occupancy, wakeups, completions) is self-contained.
//! When the routing decisions can be computed up front, the event loop
//! therefore factors into fully independent pieces: replicas are dealt
//! round-robin onto `k` shards, every shard runs its entire sub-simulation
//! on its own thread with its own [`ShardQueue`] and
//! [`EngineCore`](crate::engine::EngineCore), and the only serial work left
//! is *committing* the measured effects into the metrics collector and the
//! tier — which the main thread does by streaming the shards' effect logs
//! and always committing the globally-earliest entry next.
//!
//! # Determinism argument
//!
//! The sequential engine's event order is exactly `(time, seq)` with `seq`
//! the global insertion counter, and its report is a fold of metric effects
//! in that order. The sharded run reproduces that fold bit-for-bit:
//!
//! * Arrivals are pre-routed by replaying `RoutingTier::route` in arrival
//!   order before the run — legal precisely because the fast-path policies
//!   (round-robin, random) are deterministic functions of their own state
//!   and never read the live load view, so interleaved completions cannot
//!   change their decisions. Each arrival's global `seq` is its trace index.
//! * Within a shard, events are ordered by `(time, arrival-seq | local
//!   push counter)`, which equals the sequential order restricted to the
//!   shard (see [`vidur_core::shard`]). At commit time a
//!   [`ShardStamper`] re-derives true global seqs: a committed handler's
//!   children claim the next counter values in push order.
//! * The merge then commits the lowest `(time, seq)` stream head, replaying
//!   each entry's logged effects through the *same* collector methods the
//!   sequential engine calls, in the same order — f64 accumulation order,
//!   quantile-digest streams, and per-tenant bookkeeping included.
//!
//! The stop conditions fold in too: shards truncate at the deadline (the
//! sequential run processes every event at `time <= deadline` and drops
//! exactly one later event without effects), and events after global
//! completion are provably effect-free wakeups (no batch can be in flight
//! once every request finished), so draining them is a no-op.
//!
//! # Mergeable mode: fold in the shards, stream only the tier
//!
//! The full-replay commit above re-executes *every* metric effect serially,
//! so the merger thread is the scaling ceiling. Under
//! [`QuantileMode::Mergeable`] the collector's state is a pure fold over
//! per-replica single-writer slots, which makes the replay unnecessary:
//! each shard owns a full [`MetricsCollector`] and commits request, batch,
//! and KV effects *locally* as its replicas produce them; the main thread
//! folds the per-shard collectors together at drain
//! ([`MetricsCollector::merge`]). Because every slot is written by exactly
//! one replica — whose event stream is identical for any shard count — the
//! merged report is byte-identical across shard counts (though not
//! bit-comparable with the other two modes).
//!
//! Only the *tier-relevant* effects still stream to the merger, as light
//! [`TierEffect`] records: request-finished notifications (per-tenant
//! counters and the live view) and free-KV updates (per-replica last-write).
//! Both are commutative across replicas on the fast path — `on_finished` is
//! integer bookkeeping and `set_free_kv_blocks` is single-writer per
//! replica, with routing already fixed at pre-route time — so the merger
//! applies them in `(time, shard)` order without reconstructing global
//! sequence numbers. This shrinks the serial commit from every metric
//! effect to a few effects per batch completion.
//!
//! # Speculate and verify: stateful policies on the fast path
//!
//! Stateful policies (least-outstanding, priority-aware, fair-share,
//! affinity, KV-aware) read the *live* load view at every arrival, so their
//! decisions cannot be pre-routed: an interleaved completion on another
//! shard can change the argmin. The windowed runner puts them on the
//! parallel path anyway by treating the pre-route as a *guess* and checking
//! it against ground truth:
//!
//! 1. The arrival stream is chopped into windows. Each window's arrivals
//!    are routed against a throwaway clone of the tier as of the last
//!    exactly-committed point — speculation with a slightly stale view.
//! 2. Every shard checkpoints its engine state (core, replicas, queue —
//!    cheap `Clone`s of slab-backed structures), admits its share of the
//!    window, and simulates independently up to the next window boundary,
//!    logging effects exactly like the streaming path.
//! 3. The merger walks the window logs in exact global `(time, seq)` order
//!    (the same [`ShardStamper`] reconstruction) and *replays each routing
//!    decision on the real tier at its exact sequential position*. Match:
//!    the placement was right. Mismatch: the window rolls back — shards
//!    restore their checkpoints, the tier/stampers/seq counter restore
//!    theirs — and the window re-runs with the corrected placement forced
//!    ([`RoutingTier::route_forced`]). The first mismatch position strictly
//!    advances per retry, so a window re-runs at most once per arrival.
//! 4. Only after a window verifies does the merger replay its metric
//!    effects, in the recorded commit order — so the collector sees the
//!    byte-identical call sequence of a sequential run and never needs a
//!    snapshot. (This holds for every quantile mode; stateful runs use the
//!    full-replay commit even in mergeable mode, where the tier stream is
//!    the narrow seam being verified.)
//!
//! The window is sized adaptively: it halves after a mispredicted window
//! (down to one arrival, which is trivially exact — speculation over a
//! single arrival against the committed tier *is* the sequential decision)
//! and doubles after a clean one. A misprediction storm therefore degrades
//! toward sequential-per-window instead of thrashing on rollbacks.
//! [`ClusterConfig::spec_window`] pins the size for tests that want to
//! force misprediction pressure.
//!
//! Deferred binds are the one thing speculation cannot honor: a deferral
//! parks the request centrally and binds it on a *later* event, possibly on
//! another shard. If any route call defers — during speculation or during
//! verify — the sharded attempt aborts and the caller rebuilds and re-runs
//! sequentially, reporting why in
//! [`RunStats::fallback_reason`](crate::cluster::RunStats).
//!
//! # Fast path and fallback
//!
//! `shards > 1` opts in; the sharded engine runs when the configuration is
//! on its fast path — see [`block_reason`]: jittered runtimes need
//! [`ClusterConfig::rng_version`] 2 (v1 draws CPU-overhead noise from one
//! engine-wide RNG in launch order, which is inherently serial; v2 forks a
//! stream per replica), late-abort must be off (its stop condition depends
//! on the merged metrics mid-run), the fleet must be fixed (elastic events
//! are globally ordered), the prefix cache must be off (hit publication is
//! cross-replica), and the policy must not be the deferred one. Round-robin
//! and random take the streaming path (one pre-route, no verification);
//! every other policy takes the windowed speculate-and-verify path.
//! Everything else silently uses the sequential engine, which stays the
//! differential oracle: `tests/engine_regression.rs` pins that every
//! scenario reports identically with shards on and off, and that
//! mergeable-mode reports are invariant across shard counts.

use crate::cluster::{batch_bytes, ClusterSimulator, RunStats, SimEvent};
use crate::config::ClusterConfig;
use crate::engine::{EngineCore, EngineReplica, EngineSink, MAX_EVENTS};
use crate::metrics::MetricsCollector;
use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use vidur_core::metrics::QuantileMode;
use vidur_core::shard::{ShardKey, ShardQueue, ShardStamper};
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_model::shape::PlanTiming;
use vidur_scheduler::replica::CompletionEvent;
use vidur_scheduler::{GlobalPolicyKind, Request, RouteRequest, RoutingTier};
use vidur_workload::Trace;

/// Entries per [`LogChunk`] before it ships to the merger.
const CHUNK_ENTRIES: usize = 4096;
/// In-flight chunks per shard channel: bounds memory (shards block when the
/// merger falls behind) while keeping the pipeline full.
const CHANNEL_DEPTH: usize = 4;
/// Starting speculation window (arrivals) when [`ClusterConfig::spec_window`]
/// leaves sizing adaptive.
const DEFAULT_WINDOW: usize = 64;
/// Adaptive windows never grow beyond this: past a few thousand arrivals the
/// per-window overheads are fully amortized, while a rollback still only
/// discards bounded work.
const MAX_WINDOW: usize = 4096;
/// Abort reason when a stateful policy defers: deferred binds happen on
/// later events and may cross shards, which no shard-local replay can honor.
const DEFER_ABORT: &str = "stateful policy deferred a request mid-run";

/// One measured effect, mirroring a [`MetricsCollector`] (or tier) call the
/// sequential engine would have made. Replayed at commit time in exact
/// sequential order.
enum Effect {
    /// `metrics.on_arrival` for a trace request.
    Arrival {
        id: u64,
        decode_tokens: u64,
        tenant: u32,
    },
    /// `metrics.on_op_secs` from a batch's cached plan timing.
    OpSecs {
        replica: u32,
        timing: Arc<PlanTiming>,
    },
    /// `metrics.on_gpu_busy`.
    GpuBusy { replica: u32, gpu_secs: f64 },
    /// `metrics.on_batch_work` + `mark_first_scheduled` for the next
    /// `first_n` ids in the chunk's id stream.
    BatchWork {
        replica: u32,
        tokens: u64,
        requests: u64,
        flops: f64,
        bytes: f64,
        first_n: u32,
    },
    /// `metrics.on_kv_sample` for a replica.
    KvSample { replica: u32, utilization: f64 },
    /// `tier.on_finished` per finished event + `metrics.on_batch_complete`
    /// over the next `n_events` events in the chunk's event stream.
    Retire { replica: u32, n_events: u32 },
    /// `tier.set_free_kv_blocks` after a retire.
    FreeKv { replica: u32, free_blocks: u64 },
}

/// One handled event in a shard's stream: when it fired, its shard key (for
/// global-seq reconstruction), how many follow-up events its handler pushed,
/// and how many effects it logged.
#[derive(Clone, Copy)]
struct EntryRec {
    time: SimTime,
    key: ShardKey,
    n_children: u32,
    n_effects: u32,
}

/// A batch of logged entries with their flattened effect/event/id streams.
/// Chunks recycle through a return channel, so steady-state logging does not
/// allocate.
#[derive(Default)]
struct LogChunk {
    entries: Vec<EntryRec>,
    effects: Vec<Effect>,
    events: Vec<CompletionEvent>,
    ids: Vec<u64>,
    /// Marks the shard's final chunk.
    done: bool,
}

impl LogChunk {
    fn reset(&mut self) {
        self.entries.clear();
        self.effects.clear();
        self.events.clear();
        self.ids.clear();
        self.done = false;
    }
}

/// [`EngineSink`] that appends effects to the chunk under construction
/// instead of touching the collector.
struct LogSink {
    chunk: LogChunk,
}

impl EngineSink for LogSink {
    fn on_batch_timed(&mut self, replica: usize, timing: &Arc<PlanTiming>) {
        self.chunk.effects.push(Effect::OpSecs {
            replica: replica as u32,
            timing: Arc::clone(timing),
        });
    }
    fn on_gpu_busy(&mut self, replica: usize, gpu_secs: f64) {
        self.chunk.effects.push(Effect::GpuBusy {
            replica: replica as u32,
            gpu_secs,
        });
    }
    fn on_batch_scheduled(
        &mut self,
        replica: usize,
        _now: SimTime,
        batch: &BatchComposition,
        flops: f64,
        bytes: f64,
    ) {
        let mut first_n = 0u32;
        for slice in batch.slices() {
            // Same fast-path filter as `MetricsCollector::on_batch_scheduled`;
            // the record-based single authority still decides at replay time.
            if slice.is_prefill && slice.cached_tokens == 0 {
                self.chunk.ids.push(slice.request_id);
                first_n += 1;
            }
        }
        self.chunk.effects.push(Effect::BatchWork {
            replica: replica as u32,
            tokens: batch.total_query_tokens(),
            requests: batch.num_requests() as u64,
            flops,
            bytes,
            first_n,
        });
    }
    fn on_kv_sample(&mut self, replica: usize, _now: SimTime, utilization: f64) {
        self.chunk.effects.push(Effect::KvSample {
            replica: replica as u32,
            utilization,
        });
    }
    fn on_batch_complete(&mut self, replica: usize, _now: SimTime, events: &[CompletionEvent]) {
        self.chunk.events.extend_from_slice(events);
        self.chunk.effects.push(Effect::Retire {
            replica: replica as u32,
            n_events: events.len() as u32,
        });
    }
}

/// Why `config` cannot run sharded, or `None` when it is on the fast path.
/// (Assumes the caller already clamped and checked `shards > 1`.) The
/// reason surfaces verbatim in
/// [`RunStats::fallback_reason`](crate::cluster::RunStats).
pub(crate) fn block_reason(config: &ClusterConfig, jitters: bool) -> Option<&'static str> {
    if jitters && config.rng_version < 2 {
        // v1 draws CPU-overhead noise from one engine-wide RNG in launch
        // order; v2 forks a stream per replica and is shard-invariant.
        return Some("jittered runtimes need per-replica rng streams (rng_version 2)");
    }
    if config.late_abort.is_some() {
        return Some("late-abort guardrail is armed");
    }
    if config.elastic() {
        return Some("elastic fleet (faults or autoscaler) is armed");
    }
    if config.prefix_cache.is_some() {
        return Some("prefix cache is armed");
    }
    if matches!(config.global_policy, GlobalPolicyKind::Deferred { .. }) {
        return Some("deferred policy holds requests centrally");
    }
    None
}

/// Reusable pre-route scratch hoisted onto the simulator: the `(arrival
/// time, trace idx)`-sorted order and the per-arrival placements. The
/// windowed runner re-speculates into `targets` every window and retry, so
/// keeping the buffers across calls avoids a pair of per-run allocations
/// (and re-sorts on the retry path).
#[derive(Debug, Default)]
pub(crate) struct ShardedScratch {
    order: Vec<u32>,
    targets: Vec<u32>,
}

/// Routes `arrivals` (already in `(arrival time, trace idx)` = sequential
/// pop order) through `tier`, writing each placement into `targets`.
/// Arrivals present in `forced` skip the policy and commit to the recorded
/// replica — the retry path for a window whose earlier speculation
/// misplaced them. Errs when the policy defers (see [`DEFER_ABORT`]).
///
/// This is the single pre-route used by both sharded paths: the streaming
/// path calls it once on the *real* tier over the whole trace (stateless
/// policies never read the view, so the guess is the truth), the windowed
/// path calls it per window on a throwaway clone.
fn speculate(
    tier: &mut RoutingTier,
    trace: &Trace,
    arrivals: &[u32],
    forced: &HashMap<u32, u32>,
    targets: &mut [u32],
) -> Result<(), &'static str> {
    for &idx in arrivals {
        let tr = trace.requests[idx as usize];
        let req = RouteRequest {
            key: idx as u64,
            tenant: tr.tenant,
            priority: tr.priority,
            tokens: tr.prefill_tokens + tr.decode_tokens,
        };
        let target = match forced.get(&idx) {
            Some(&t) => {
                tier.route_forced(req, t as usize);
                t as usize
            }
            None => tier.route(req).ok_or(DEFER_ABORT)?,
        };
        targets[idx as usize] = target as u32;
    }
    Ok(())
}

/// Runs `sim`'s event loop sharded `num_shards` ways. On `Ok` the metrics
/// collector, tier, and replicas are in the exact state a sequential
/// `engine::drive` run would have left them in (exact/sketch modes, and
/// stateful-policy runs in every mode) or the canonical merged-fold state
/// (stateless mergeable mode), with the run's [`RunStats`]. On `Err` a
/// stateful policy deferred a request mid-run: the simulator is torn (the
/// caller rebuilds from its construction seed and re-runs sequentially) and
/// the reason belongs in [`RunStats::fallback_reason`].
pub(crate) fn run_sharded(
    sim: &mut ClusterSimulator,
    num_shards: usize,
) -> Result<RunStats, &'static str> {
    let ClusterSimulator {
        ref config,
        ref trace,
        ref mut engine,
        ref mut replicas,
        ref mut tier,
        // Elastic runs never reach the sharded path (`block_reason` rejects
        // them), so the elastic state stays untouched here.
        elastic: _,
        seed,
        ref mut sharded_scratch,
    } = *sim;

    // Sequential pop order for the pre-pushed arrival set: (arrival time,
    // trace index) — the stable sort keeps equal-time arrivals in trace
    // (= seq) order, matching the global queue.
    let scratch = sharded_scratch;
    scratch.order.clear();
    scratch.order.extend(0..trace.requests.len() as u32);
    scratch
        .order
        .sort_by_key(|&i| trace.requests[i as usize].arrival);
    scratch.targets.clear();
    scratch.targets.resize(trace.requests.len(), 0);

    let deadline = config.max_sim_time;
    let timer = engine.timer().clone();

    if !matches!(
        config.global_policy,
        GlobalPolicyKind::RoundRobin | GlobalPolicyKind::Random
    ) {
        // Stateful policy: windowed speculate-and-verify.
        let mut shards: Vec<SpecShard> = (0..num_shards)
            .map(|shard| SpecShard {
                shard,
                num_shards,
                core: EngineCore::with_timer(config, timer.clone(), seed),
                replicas: Vec::new(),
                queue: ShardQueue::new(),
                processed: 0,
                sink: LogSink {
                    chunk: LogChunk::default(),
                },
                snapshot: None,
                active: false,
            })
            .collect();
        for (r, replica) in std::mem::take(replicas).into_iter().enumerate() {
            shards[r % num_shards].replicas.push(replica);
        }
        let stats = run_windowed(
            config,
            trace,
            &mut engine.metrics,
            tier,
            &mut shards,
            scratch,
            num_shards,
            deadline,
        )?;
        *replicas = reassemble(
            shards.into_iter().map(|s| s.replicas).collect(),
            num_shards,
            config.num_replicas,
        );
        return Ok(stats);
    }

    // Stateless policy: pre-route everything on the real tier up front —
    // round-robin/random placements depend only on router state, so
    // replaying the calls draws the identical decision (and RNG) sequence
    // the interleaved run would — then stream effects with no verification.
    speculate(
        tier,
        trace,
        &scratch.order,
        &HashMap::new(),
        &mut scratch.targets,
    )?;

    // Deal replicas round-robin onto shards (global replica r lives on
    // shard r % k at local index r / k) and split the arrival list.
    let mut shard_replicas: Vec<Vec<EngineReplica>> = (0..num_shards).map(|_| Vec::new()).collect();
    for (r, replica) in std::mem::take(replicas).into_iter().enumerate() {
        shard_replicas[r % num_shards].push(replica);
    }
    let mut shard_arrivals: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for &idx in &scratch.order {
        shard_arrivals[scratch.targets[idx as usize] as usize % num_shards].push(idx);
    }

    let metrics = &mut engine.metrics;
    let targets_ref: &[u32] = &scratch.targets;

    let streamed = if metrics.mode() == QuantileMode::Mergeable {
        // Fold-in-the-shards path: each shard owns a full-size collector
        // and commits everything but the tier effects locally.
        let (result_tx, result_rx) =
            std::sync::mpsc::channel::<(usize, Vec<EngineReplica>, MetricsCollector)>();
        let mut streams = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for (shard, (replica_set, arrivals)) in
            shard_replicas.into_iter().zip(shard_arrivals).enumerate()
        {
            let (log_tx, log_rx) = sync_channel::<TierChunk>(CHANNEL_DEPTH);
            streams.push(TierStream::new(log_rx));
            let core = EngineCore::with_timer(config, timer.clone(), seed);
            // Every shard collector must be armed exactly like the engine's
            // (tenants, SLO, time-series windows): the merged fold is only
            // shard-count-invariant when all partials share one shape.
            let mut collector =
                MetricsCollector::with_mode(config.num_replicas, QuantileMode::Mergeable);
            if !trace.tenants.is_empty() {
                collector.set_tenants(&trace.tenants, config.tenant_slo);
            }
            if let Some(ts) = config.timeseries {
                collector.set_timeseries(ts);
            }
            workers.push(MergeWorker {
                shard,
                num_shards,
                config,
                trace,
                targets: targets_ref,
                core,
                replicas: replica_set,
                arrivals,
                deadline,
                collector,
                chunk: Vec::new(),
                log_tx,
                result_tx: result_tx.clone(),
            });
        }
        drop(result_tx);

        let streamed = rayon::scope(|scope| {
            for worker in workers {
                scope.spawn(move || worker.run());
            }
            // The tier merger runs on this thread, concurrently with the
            // shards.
            merge_tier(streams, tier, trace)
        });

        // Fold the per-shard collectors into the engine's (empty) collector
        // in shard order, and put the replicas back in global order.
        let mut collected: Vec<Option<(Vec<EngineReplica>, MetricsCollector)>> =
            (0..num_shards).map(|_| None).collect();
        for (shard, set, collector) in result_rx.iter() {
            collected[shard] = Some((set, collector));
        }
        let mut per_shard = Vec::with_capacity(num_shards);
        for entry in collected {
            let (set, collector) = entry.expect("every shard returns its state");
            metrics.merge(collector);
            per_shard.push(set);
        }
        *replicas = reassemble(per_shard, num_shards, config.num_replicas);
        streamed
    } else {
        // Full-replay path (exact/sketch modes): every metric effect streams
        // to the merger and is replayed in exact sequential order.
        let (result_tx, result_rx) = std::sync::mpsc::channel::<(usize, Vec<EngineReplica>)>();
        let mut streams = Vec::with_capacity(num_shards);
        let mut workers = Vec::with_capacity(num_shards);
        for (shard, (replica_set, arrivals)) in
            shard_replicas.into_iter().zip(shard_arrivals).enumerate()
        {
            let (log_tx, log_rx) = sync_channel::<LogChunk>(CHANNEL_DEPTH);
            let (recycle_tx, recycle_rx) = sync_channel::<LogChunk>(CHANNEL_DEPTH);
            streams.push(ShardStream::new(log_rx, recycle_tx));
            let core = EngineCore::with_timer(config, timer.clone(), seed);
            workers.push(ShardWorker {
                shard,
                num_shards,
                config,
                trace,
                targets: targets_ref,
                core,
                replicas: replica_set,
                arrivals,
                deadline,
                log_tx,
                recycle_rx,
                result_tx: result_tx.clone(),
            });
        }
        drop(result_tx);

        let streamed = rayon::scope(|scope| {
            for worker in workers {
                scope.spawn(move || worker.run());
            }
            // The merger runs on this thread, concurrently with the shards.
            merge(streams, metrics, tier, trace)
        });

        // Put the replicas back in global order for preemption/quota
        // reporting.
        let mut collected: Vec<Option<Vec<EngineReplica>>> =
            (0..num_shards).map(|_| None).collect();
        for (shard, set) in result_rx.iter() {
            collected[shard] = Some(set);
        }
        let per_shard = collected
            .into_iter()
            .map(|set| set.expect("every shard returns its replicas"))
            .collect();
        *replicas = reassemble(per_shard, num_shards, config.num_replicas);
        streamed
    };
    Ok(RunStats {
        shards: num_shards,
        streamed_effects: streamed,
        ..RunStats::default()
    })
}

/// Puts shard-dealt replicas back in global order (global replica `r` was
/// dealt to shard `r % k` at local index `r / k`).
fn reassemble(
    per_shard: Vec<Vec<EngineReplica>>,
    num_shards: usize,
    num_replicas: usize,
) -> Vec<EngineReplica> {
    let mut slots: Vec<Option<EngineReplica>> = (0..num_replicas).map(|_| None).collect();
    for (shard, set) in per_shard.into_iter().enumerate() {
        for (local, replica) in set.into_iter().enumerate() {
            slots[shard + local * num_shards] = Some(replica);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every replica returned"))
        .collect()
}

/// One shard's independent simulation: a subset of replicas, a shard-local
/// queue, an [`EngineCore`], and the effect log.
struct ShardWorker<'a> {
    shard: usize,
    num_shards: usize,
    config: &'a ClusterConfig,
    trace: &'a Trace,
    targets: &'a [u32],
    core: EngineCore,
    replicas: Vec<EngineReplica>,
    arrivals: Vec<u32>,
    deadline: Option<SimTime>,
    log_tx: SyncSender<LogChunk>,
    recycle_rx: Receiver<LogChunk>,
    result_tx: std::sync::mpsc::Sender<(usize, Vec<EngineReplica>)>,
}

impl ShardWorker<'_> {
    fn run(mut self) {
        let mut queue: ShardQueue<SimEvent> = ShardQueue::new();
        for &idx in &self.arrivals {
            queue.push_arrival(
                self.trace.requests[idx as usize].arrival,
                idx as u64,
                SimEvent::Arrival(idx),
            );
        }
        let mut sink = LogSink {
            chunk: LogChunk::default(),
        };
        let mut processed = 0u64;
        while let Some((time, key, event)) = queue.pop() {
            // Pops are time-nondecreasing, so the first event past the
            // deadline means everything left is past it too. The sequential
            // engine pops exactly one such event and drops it effect-free.
            if self.deadline.is_some_and(|d| time > d) || processed >= MAX_EVENTS {
                break;
            }
            let effects_before = sink.chunk.effects.len();
            let pushes_before = queue.local_pushes();
            shard_handle(
                &mut self.core,
                &mut self.replicas,
                self.num_shards,
                self.config,
                self.trace,
                self.targets,
                time,
                event,
                &mut queue,
                &mut sink,
            );
            sink.chunk.entries.push(EntryRec {
                time,
                key,
                n_children: (queue.local_pushes() - pushes_before) as u32,
                n_effects: (sink.chunk.effects.len() - effects_before) as u32,
            });
            processed += 1;
            if sink.chunk.entries.len() >= CHUNK_ENTRIES {
                let mut fresh = self.recycle_rx.try_recv().unwrap_or_default();
                fresh.reset();
                let full = std::mem::replace(&mut sink.chunk, fresh);
                if self.log_tx.send(full).is_err() {
                    break; // merger gone; nothing left to report into
                }
            }
        }
        let mut last = std::mem::take(&mut sink.chunk);
        last.done = true;
        let _ = self.log_tx.send(last);
        let _ = self.result_tx.send((self.shard, self.replicas));
    }
}

/// Handles one shard-local event, logging its effects into `sink`. Shared
/// by the streaming [`ShardWorker`] and the windowed [`SpecShard`]; the
/// mergeable-mode [`MergeWorker`] keeps its own copy (it sinks metric
/// effects straight into a collector).
#[allow(clippy::too_many_arguments)]
fn shard_handle(
    core: &mut EngineCore,
    replicas: &mut [EngineReplica],
    num_shards: usize,
    config: &ClusterConfig,
    trace: &Trace,
    targets: &[u32],
    now: SimTime,
    event: SimEvent,
    queue: &mut ShardQueue<SimEvent>,
    sink: &mut LogSink,
) {
    match event {
        SimEvent::Arrival(idx) => {
            let tr = trace.requests[idx as usize];
            sink.chunk.effects.push(Effect::Arrival {
                id: tr.id,
                decode_tokens: tr.decode_tokens,
                tenant: tr.tenant,
            });
            let target = targets[idx as usize];
            let local = target as usize / num_shards;
            replicas[local].scheduler.add_request(
                Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens)
                    .with_tenant(tr.tenant)
                    .with_priority(tr.priority),
            );
            shard_try_schedule(core, replicas, num_shards, config, target, now, queue, sink);
        }
        SimEvent::Wakeup(replica) => {
            let local = replica as usize / num_shards;
            replicas[local].clear_wakeup();
            shard_try_schedule(
                core, replicas, num_shards, config, replica, now, queue, sink,
            );
        }
        SimEvent::BatchComplete(replica, id) => {
            let local = replica as usize / num_shards;
            // The tier's `on_finished` is deferred to commit time (the
            // tier is shared); the translate hook is therefore empty.
            core.retire_batch(
                &mut replicas[local],
                replica as usize,
                id,
                now,
                queue,
                sink,
                |_ev, _queue| {},
            );
            sink.chunk.effects.push(Effect::FreeKv {
                replica,
                free_blocks: replicas[local].scheduler.blocks().free_blocks(),
            });
            shard_try_schedule(
                core, replicas, num_shards, config, replica, now, queue, sink,
            );
        }
        SimEvent::Fault(_) | SimEvent::AutoscaleTick | SimEvent::WarmupDone(_) => {
            unreachable!("elastic runs are rejected by the fast-path eligibility check")
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_try_schedule(
    core: &mut EngineCore,
    replicas: &mut [EngineReplica],
    num_shards: usize,
    config: &ClusterConfig,
    replica: u32,
    now: SimTime,
    queue: &mut ShardQueue<SimEvent>,
    sink: &mut LogSink,
) {
    let local = replica as usize / num_shards;
    core.try_schedule(
        &mut replicas[local],
        replica as usize,
        now,
        queue,
        sink,
        |batch| batch_bytes(config, batch),
        || SimEvent::Wakeup(replica),
        |id| SimEvent::BatchComplete(replica, id),
    );
}

/// A tier-relevant effect streamed in mergeable mode: the only state shards
/// cannot commit locally. `Finished` drives the tier's per-tenant counters
/// and live view; `FreeKv` is the per-replica free-block last-write.
struct TierEffect {
    time: SimTime,
    kind: TierKind,
}

/// What a [`TierEffect`] applies to the tier.
enum TierKind {
    /// `tier.on_finished` for trace request `id` on `replica`.
    Finished { replica: u32, id: u64 },
    /// `tier.set_free_kv_blocks` after a retire.
    FreeKv { replica: u32, free_blocks: u64 },
}

/// A batch of tier effects from one shard; `done` marks the final chunk.
struct TierChunk {
    effects: Vec<TierEffect>,
    done: bool,
}

/// One shard's simulation in mergeable mode: same event loop as
/// [`ShardWorker`], but effects sink straight into the shard's own
/// [`MetricsCollector`]; only [`TierEffect`]s ship to the merger.
struct MergeWorker<'a> {
    shard: usize,
    num_shards: usize,
    config: &'a ClusterConfig,
    trace: &'a Trace,
    targets: &'a [u32],
    core: EngineCore,
    replicas: Vec<EngineReplica>,
    arrivals: Vec<u32>,
    deadline: Option<SimTime>,
    collector: MetricsCollector,
    chunk: Vec<TierEffect>,
    log_tx: SyncSender<TierChunk>,
    result_tx: std::sync::mpsc::Sender<(usize, Vec<EngineReplica>, MetricsCollector)>,
}

impl MergeWorker<'_> {
    fn run(mut self) {
        let mut queue: ShardQueue<SimEvent> = ShardQueue::new();
        for &idx in &self.arrivals {
            queue.push_arrival(
                self.trace.requests[idx as usize].arrival,
                idx as u64,
                SimEvent::Arrival(idx),
            );
        }
        let mut processed = 0u64;
        while let Some((time, _key, event)) = queue.pop() {
            if self.deadline.is_some_and(|d| time > d) || processed >= MAX_EVENTS {
                break;
            }
            self.handle(time, event, &mut queue);
            processed += 1;
            if self.chunk.len() >= CHUNK_ENTRIES {
                let full = std::mem::take(&mut self.chunk);
                if self
                    .log_tx
                    .send(TierChunk {
                        effects: full,
                        done: false,
                    })
                    .is_err()
                {
                    break; // merger gone; nothing left to report into
                }
            }
        }
        let _ = self.log_tx.send(TierChunk {
            effects: std::mem::take(&mut self.chunk),
            done: true,
        });
        let _ = self
            .result_tx
            .send((self.shard, self.replicas, self.collector));
    }

    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut ShardQueue<SimEvent>) {
        match event {
            SimEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.collector
                    .on_arrival(tr.id, now, tr.decode_tokens, tr.tenant);
                let target = self.targets[idx as usize];
                let local = target as usize / self.num_shards;
                self.replicas[local].scheduler.add_request(
                    Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens)
                        .with_tenant(tr.tenant)
                        .with_priority(tr.priority),
                );
                self.try_schedule(target, now, queue);
            }
            SimEvent::Wakeup(replica) => {
                let local = replica as usize / self.num_shards;
                self.replicas[local].clear_wakeup();
                self.try_schedule(replica, now, queue);
            }
            SimEvent::BatchComplete(replica, id) => {
                let local = replica as usize / self.num_shards;
                let chunk = &mut self.chunk;
                self.core.retire_batch(
                    &mut self.replicas[local],
                    replica as usize,
                    id,
                    now,
                    queue,
                    &mut self.collector,
                    |ev, _queue| {
                        if ev.finished {
                            chunk.push(TierEffect {
                                time: now,
                                kind: TierKind::Finished { replica, id: ev.id },
                            });
                        }
                    },
                );
                self.chunk.push(TierEffect {
                    time: now,
                    kind: TierKind::FreeKv {
                        replica,
                        free_blocks: self.replicas[local].scheduler.blocks().free_blocks(),
                    },
                });
                self.try_schedule(replica, now, queue);
            }
            SimEvent::Fault(_) | SimEvent::AutoscaleTick | SimEvent::WarmupDone(_) => {
                unreachable!("elastic runs are rejected by the fast-path eligibility check")
            }
        }
    }

    fn try_schedule(&mut self, replica: u32, now: SimTime, queue: &mut ShardQueue<SimEvent>) {
        let local = replica as usize / self.num_shards;
        let config = self.config;
        self.core.try_schedule(
            &mut self.replicas[local],
            replica as usize,
            now,
            queue,
            &mut self.collector,
            |batch| batch_bytes(config, batch),
            || SimEvent::Wakeup(replica),
            |id| SimEvent::BatchComplete(replica, id),
        );
    }
}

/// Merger-side view of one shard's tier-effect stream.
struct TierStream {
    rx: Receiver<TierChunk>,
    chunk: Option<TierChunk>,
    idx: usize,
    finished: bool,
}

impl TierStream {
    fn new(rx: Receiver<TierChunk>) -> Self {
        TierStream {
            rx,
            chunk: None,
            idx: 0,
            finished: false,
        }
    }

    /// Time of the stream's next uncommitted effect, receiving chunks as
    /// needed. Blocks only while the shard is still producing.
    fn ensure_head(&mut self) -> Option<SimTime> {
        loop {
            if self.finished {
                return None;
            }
            if let Some(chunk) = &self.chunk {
                if self.idx < chunk.effects.len() {
                    return Some(chunk.effects[self.idx].time);
                }
                if chunk.done {
                    self.finished = true;
                    self.chunk = None;
                    return None;
                }
                self.chunk = None;
            }
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = Some(chunk);
                    self.idx = 0;
                }
                Err(_) => {
                    self.finished = true;
                    return None;
                }
            }
        }
    }
}

/// Applies all shard tier effects to the tier in `(time, shard)` order and
/// returns how many were streamed. Exact global sequence numbers are
/// unnecessary here: `on_finished` is commutative integer bookkeeping and
/// `set_free_kv_blocks` is single-writer per replica (each replica's stream
/// order is preserved within its shard), so this coarser deterministic
/// order reaches the same final tier state.
fn merge_tier(mut streams: Vec<TierStream>, tier: &mut RoutingTier, trace: &Trace) -> u64 {
    let mut committed = 0u64;
    loop {
        let mut best: Option<(usize, SimTime)> = None;
        for (s, stream) in streams.iter_mut().enumerate() {
            if let Some(t) = stream.ensure_head() {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((s, t));
                }
            }
        }
        let Some((s, _)) = best else {
            break;
        };
        let stream = &mut streams[s];
        let chunk = stream.chunk.as_ref().expect("head implies a chunk");
        match chunk.effects[stream.idx].kind {
            TierKind::Finished { replica, id } => {
                let tr = trace.requests[id as usize];
                tier.on_finished(
                    replica as usize,
                    tr.tenant,
                    tr.prefill_tokens + tr.decode_tokens,
                );
            }
            TierKind::FreeKv {
                replica,
                free_blocks,
            } => tier.set_free_kv_blocks(replica as usize, free_blocks),
        }
        stream.idx += 1;
        committed += 1;
    }
    committed
}

/// Merger-side view of one shard's chunk stream.
struct ShardStream {
    rx: Receiver<LogChunk>,
    recycle: SyncSender<LogChunk>,
    chunk: Option<LogChunk>,
    entry: usize,
    effect: usize,
    event: usize,
    id: usize,
    /// Resolved `(time, global_seq)` of the next uncommitted entry.
    head: Option<(SimTime, u64)>,
    finished: bool,
    stamper: ShardStamper,
}

impl ShardStream {
    fn new(rx: Receiver<LogChunk>, recycle: SyncSender<LogChunk>) -> Self {
        ShardStream {
            rx,
            recycle,
            chunk: None,
            entry: 0,
            effect: 0,
            event: 0,
            id: 0,
            head: None,
            finished: false,
            stamper: ShardStamper::new(),
        }
    }

    /// Resolves the stream's next head, receiving chunks as needed. Blocks
    /// only when the shard is still producing.
    fn ensure_head(&mut self) {
        if self.finished || self.head.is_some() {
            return;
        }
        loop {
            if let Some(chunk) = &self.chunk {
                if self.entry < chunk.entries.len() {
                    let e = chunk.entries[self.entry];
                    self.head = Some((e.time, self.stamper.resolve(e.key)));
                    return;
                }
                if chunk.done {
                    self.finished = true;
                    self.chunk = None;
                    return;
                }
                let mut spent = self.chunk.take().expect("checked above");
                spent.reset();
                let _ = self.recycle.try_send(spent);
            }
            match self.rx.recv() {
                Ok(chunk) => {
                    self.chunk = Some(chunk);
                    self.entry = 0;
                    self.effect = 0;
                    self.event = 0;
                    self.id = 0;
                }
                Err(_) => {
                    self.finished = true;
                    return;
                }
            }
        }
    }
}

/// Streams all shard logs into the collector and tier in exact global
/// `(time, seq)` order. Returns the number of effects replayed — the serial
/// commit volume the mergeable mode shrinks.
fn merge(
    mut streams: Vec<ShardStream>,
    metrics: &mut MetricsCollector,
    tier: &mut RoutingTier,
    trace: &Trace,
) -> u64 {
    let mut counter = trace.requests.len() as u64;
    let mut committed = 0u64;
    loop {
        // Linear min-scan: shard counts are small (<= replicas), so a heap
        // of heads would cost more than it saves.
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (s, stream) in streams.iter_mut().enumerate() {
            stream.ensure_head();
            if let Some(head) = stream.head {
                if best.is_none_or(|(_, b)| head < b) {
                    best = Some((s, head));
                }
            }
        }
        let Some((best, _)) = best else {
            break;
        };
        committed += commit(&mut streams[best], metrics, tier, trace, &mut counter);
    }
    // Leftover stamps are normal on truncated runs (deadline / event
    // budget): committed entries claim seqs for children past the cutoff
    // that their shard never pops. A run that drains fully consumes all of
    // them, but the merge cannot tell the cases apart, so no assertion.
    committed
}

/// Commits one entry: claims its children's global seqs and replays its
/// effects into the collector/tier, in logged (= sequential call) order.
/// Returns the number of effects replayed.
fn commit(
    stream: &mut ShardStream,
    metrics: &mut MetricsCollector,
    tier: &mut RoutingTier,
    trace: &Trace,
    counter: &mut u64,
) -> u64 {
    let (time, _seq) = stream.head.take().expect("commit needs a head");
    let chunk = stream.chunk.as_ref().expect("head implies a chunk");
    let entry = chunk.entries[stream.entry];
    stream.entry += 1;
    stream
        .stamper
        .claim_children(entry.n_children as u64, counter);
    for effect in &chunk.effects[stream.effect..stream.effect + entry.n_effects as usize] {
        match effect {
            Effect::Arrival {
                id,
                decode_tokens,
                tenant,
            } => metrics.on_arrival(*id, time, *decode_tokens, *tenant),
            Effect::OpSecs { replica, timing } => {
                metrics.on_op_secs(*replica as usize, timing.op_secs())
            }
            Effect::GpuBusy { replica, gpu_secs } => {
                metrics.on_gpu_busy(*replica as usize, *gpu_secs)
            }
            Effect::BatchWork {
                replica,
                tokens,
                requests,
                flops,
                bytes,
                first_n,
            } => {
                metrics.on_batch_work(*replica as usize, *tokens, *requests, *flops, *bytes);
                for &id in &chunk.ids[stream.id..stream.id + *first_n as usize] {
                    metrics.mark_first_scheduled(id, time);
                }
                stream.id += *first_n as usize;
            }
            Effect::KvSample {
                replica,
                utilization,
            } => metrics.on_kv_sample(*replica as usize, time, *utilization),
            Effect::Retire { replica, n_events } => {
                let events = &chunk.events[stream.event..stream.event + *n_events as usize];
                for ev in events {
                    if ev.finished {
                        let tr = trace.requests[ev.id as usize];
                        tier.on_finished(
                            *replica as usize,
                            tr.tenant,
                            tr.prefill_tokens + tr.decode_tokens,
                        );
                    }
                }
                metrics.on_batch_complete(*replica as usize, time, events);
                stream.event += *n_events as usize;
            }
            Effect::FreeKv {
                replica,
                free_blocks,
            } => tier.set_free_kv_blocks(*replica as usize, *free_blocks),
        }
    }
    stream.effect += entry.n_effects as usize;
    entry.n_effects as u64
}

/// One shard of the windowed speculate-and-verify runner. Unlike
/// [`ShardWorker`] it lives across windows: between windows the merger owns
/// it (verify, rollback, re-admit), during a window it runs on its own
/// thread and logs into its in-memory window chunk — no channels, the whole
/// window log is handed over at the scope join.
struct SpecShard {
    shard: usize,
    num_shards: usize,
    core: EngineCore,
    replicas: Vec<EngineReplica>,
    queue: ShardQueue<SimEvent>,
    /// Events handled so far (persists across windows; the [`MAX_EVENTS`]
    /// backstop is per shard, as on the streaming path).
    processed: u64,
    /// The current window's effect log (the chunk is reset per attempt).
    sink: LogSink,
    /// Pre-window checkpoint, taken at the start of every attempt this
    /// shard participates in; restored on rollback.
    snapshot: Option<SpecSnapshot>,
    /// Did this shard run the current attempt? Inactive shards (no window
    /// arrivals, no backlog before the boundary) skip the spawn, the
    /// snapshot, and the rollback.
    active: bool,
}

/// Everything a window can change on a shard. All slab-backed `Clone`s: the
/// queue snapshot pops the exact same sequence as the original.
struct SpecSnapshot {
    core: EngineCore,
    replicas: Vec<EngineReplica>,
    queue: ShardQueue<SimEvent>,
    processed: u64,
}

impl SpecShard {
    /// Checkpoints, admits this attempt's share of `window` (arrivals whose
    /// speculated target lives here), and simulates up to — exclusive — the
    /// next window's first arrival. The boundary cut is exact: a local
    /// event at the boundary time always orders *after* the boundary
    /// arrival ([`ShardKey::Local`] sorts after [`ShardKey::Arrival`], and
    /// dynamic global seqs all exceed arrival seqs), so "peek before
    /// boundary" equals "globally before the boundary".
    fn run_window(
        &mut self,
        config: &ClusterConfig,
        trace: &Trace,
        targets: &[u32],
        window: &[u32],
        boundary: Option<(SimTime, ShardKey)>,
        deadline: Option<SimTime>,
    ) {
        self.snapshot = Some(SpecSnapshot {
            core: self.core.clone(),
            replicas: self.replicas.clone(),
            queue: self.queue.clone(),
            processed: self.processed,
        });
        self.sink.chunk.reset();
        for &idx in window {
            if targets[idx as usize] as usize % self.num_shards == self.shard {
                self.queue.push_arrival(
                    trace.requests[idx as usize].arrival,
                    idx as u64,
                    SimEvent::Arrival(idx),
                );
            }
        }
        while let Some(head) = self.queue.peek() {
            if boundary.is_some_and(|b| head >= b) {
                break;
            }
            // Pops are time-nondecreasing, so a past-deadline head means
            // everything left is past it too; it stays queued, unpopped —
            // the same effect-free drop the sequential engine performs.
            if deadline.is_some_and(|d| head.0 > d) || self.processed >= MAX_EVENTS {
                break;
            }
            let (time, key, event) = self.queue.pop().expect("peeked head");
            let effects_before = self.sink.chunk.effects.len();
            let pushes_before = self.queue.local_pushes();
            shard_handle(
                &mut self.core,
                &mut self.replicas,
                self.num_shards,
                config,
                trace,
                targets,
                time,
                event,
                &mut self.queue,
                &mut self.sink,
            );
            self.sink.chunk.entries.push(EntryRec {
                time,
                key,
                n_children: (self.queue.local_pushes() - pushes_before) as u32,
                n_effects: (self.sink.chunk.effects.len() - effects_before) as u32,
            });
            self.processed += 1;
        }
    }

    /// Discards the current attempt: restores the pre-window checkpoint and
    /// clears the window log.
    fn rollback(&mut self) {
        let snap = self.snapshot.take().expect("rollback without a snapshot");
        self.core = snap.core;
        self.replicas = snap.replicas;
        self.queue = snap.queue;
        self.processed = snap.processed;
        self.sink.chunk.reset();
    }
}

/// Per-shard read cursor over a window log, for the verify and commit
/// passes.
#[derive(Default)]
struct LogCursor {
    entry: usize,
    effect: usize,
    event: usize,
    id: usize,
    /// Resolved `(time, global_seq)` of the next uncommitted entry.
    head: Option<(SimTime, u64)>,
}

/// Drives the windowed speculate-and-verify loop to completion. On `Ok` the
/// collector and tier hold the exact sequential-run state; on `Err` a
/// policy deferred and the caller falls back (the simulator is torn).
#[allow(clippy::too_many_arguments)]
fn run_windowed(
    config: &ClusterConfig,
    trace: &Trace,
    metrics: &mut MetricsCollector,
    tier: &mut RoutingTier,
    shards: &mut [SpecShard],
    scratch: &mut ShardedScratch,
    num_shards: usize,
    deadline: Option<SimTime>,
) -> Result<RunStats, &'static str> {
    let mut stats = RunStats {
        shards: num_shards,
        ..RunStats::default()
    };
    let mut stampers: Vec<ShardStamper> = (0..num_shards).map(|_| ShardStamper::new()).collect();
    let mut counter = trace.requests.len() as u64;
    // Corrected placements for the window being retried: trace idx → exact
    // target. Persists across retries of one window, clears on commit.
    let mut forced: HashMap<u32, u32> = HashMap::new();
    let mut commit_order: Vec<u32> = Vec::new();
    let pinned = config.spec_window;
    let mut window = pinned.unwrap_or(DEFAULT_WINDOW).max(1);

    let n = scratch.order.len();
    let mut cursor = 0usize;
    while cursor < n {
        let end = (cursor + window).min(n);
        // Split the sorted order so the window slice and the boundary
        // lookup don't alias `scratch.targets` borrows below.
        let (routed, rest) = scratch.order.split_at(end);
        let window_arrivals = &routed[cursor..];
        let boundary = rest.first().map(|&b| {
            (
                trace.requests[b as usize].arrival,
                ShardKey::Arrival(b as u64),
            )
        });

        let mut mispredicted = false;
        loop {
            // Speculate this window against a throwaway copy of the tier as
            // of the last exactly-committed point. Re-speculation after a
            // rollback reproduces the identical unforced prefix (same tier
            // state, same deterministic policy), so the forced fix stays
            // aligned with the mismatch it corrects.
            {
                let mut spec = tier.clone();
                speculate(
                    &mut spec,
                    trace,
                    window_arrivals,
                    &forced,
                    &mut scratch.targets,
                )?;
            }
            let targets: &[u32] = &scratch.targets;
            for shard in shards.iter_mut() {
                let has_arrival = window_arrivals
                    .iter()
                    .any(|&idx| targets[idx as usize] as usize % num_shards == shard.shard);
                let has_backlog = shard.queue.peek().is_some_and(|head| {
                    boundary.is_none_or(|b| head < b) && deadline.is_none_or(|d| head.0 <= d)
                });
                shard.active = has_arrival || has_backlog;
            }
            stats.spec_windows += 1;
            rayon::scope(|scope| {
                for shard in shards.iter_mut() {
                    if !shard.active {
                        continue;
                    }
                    scope.spawn(move || {
                        shard.run_window(
                            config,
                            trace,
                            targets,
                            window_arrivals,
                            boundary,
                            deadline,
                        )
                    });
                }
            });

            let tier_checkpoint = tier.clone();
            let stamper_checkpoint = stampers.clone();
            let counter_checkpoint = counter;
            commit_order.clear();
            match verify_window(
                shards,
                &mut stampers,
                &mut counter,
                tier,
                trace,
                targets,
                &mut commit_order,
            )? {
                None => {
                    // The window is exact; replay its metric effects in the
                    // verified global order.
                    stats.streamed_effects += commit_metrics(shards, metrics, &commit_order);
                    break;
                }
                Some((idx, actual)) => {
                    stats.mispredictions += 1;
                    mispredicted = true;
                    for shard in shards.iter_mut() {
                        if shard.active {
                            stats.rollback_events += shard.sink.chunk.entries.len() as u64;
                            shard.rollback();
                        }
                    }
                    *tier = tier_checkpoint;
                    stampers = stamper_checkpoint;
                    counter = counter_checkpoint;
                    forced.insert(idx, actual);
                }
            }
        }
        forced.clear();
        cursor = end;
        if pinned.is_none() {
            // Halve under misprediction pressure (a one-arrival window is
            // trivially exact), grow while speculation holds.
            window = if mispredicted {
                (window / 2).max(1)
            } else {
                (window * 2).min(MAX_WINDOW)
            };
        }
    }
    Ok(stats)
}

/// The verify pass: walks the active shards' window logs in exact global
/// `(time, seq)` order, replaying every routing decision on the live tier
/// at its exact sequential position and applying the tier effects
/// (`on_finished`, `set_free_kv_blocks`) along the way. Metric effects are
/// untouched — they commit only after the whole window verifies, so a
/// mid-window mismatch needs no collector snapshot.
///
/// Returns `Ok(None)` when every placement matched (with `commit_order`
/// holding the shard sequence for the commit pass), `Ok(Some((idx,
/// actual)))` at the first mismatch, or `Err` if the policy deferred.
fn verify_window(
    shards: &[SpecShard],
    stampers: &mut [ShardStamper],
    counter: &mut u64,
    tier: &mut RoutingTier,
    trace: &Trace,
    targets: &[u32],
    commit_order: &mut Vec<u32>,
) -> Result<Option<(u32, u32)>, &'static str> {
    let mut cursors: Vec<LogCursor> = shards.iter().map(|_| LogCursor::default()).collect();
    loop {
        // Linear min-scan over resolved heads, as in `merge`.
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (s, shard) in shards.iter().enumerate() {
            if !shard.active {
                continue;
            }
            let cur = &mut cursors[s];
            if cur.head.is_none() {
                let chunk = &shard.sink.chunk;
                if cur.entry < chunk.entries.len() {
                    let e = chunk.entries[cur.entry];
                    cur.head = Some((e.time, stampers[s].resolve(e.key)));
                }
            }
            if let Some(head) = cur.head {
                if best.is_none_or(|(_, b)| head < b) {
                    best = Some((s, head));
                }
            }
        }
        let Some((s, _)) = best else {
            return Ok(None);
        };
        let cur = &mut cursors[s];
        cur.head = None;
        let chunk = &shards[s].sink.chunk;
        let entry = chunk.entries[cur.entry];
        cur.entry += 1;
        stampers[s].claim_children(entry.n_children as u64, counter);
        // An arrival entry is where the sequential engine would have routed:
        // replay the decision on the exact live view and compare.
        if let ShardKey::Arrival(seq) = entry.key {
            let idx = seq as u32;
            let tr = trace.requests[idx as usize];
            let actual = tier
                .route(RouteRequest {
                    key: seq,
                    tenant: tr.tenant,
                    priority: tr.priority,
                    tokens: tr.prefill_tokens + tr.decode_tokens,
                })
                .ok_or(DEFER_ABORT)?;
            if actual as u32 != targets[idx as usize] {
                return Ok(Some((idx, actual as u32)));
            }
        }
        for effect in &chunk.effects[cur.effect..cur.effect + entry.n_effects as usize] {
            match effect {
                Effect::Retire { replica, n_events } => {
                    for ev in &chunk.events[cur.event..cur.event + *n_events as usize] {
                        if ev.finished {
                            let tr = trace.requests[ev.id as usize];
                            tier.on_finished(
                                *replica as usize,
                                tr.tenant,
                                tr.prefill_tokens + tr.decode_tokens,
                            );
                        }
                    }
                    cur.event += *n_events as usize;
                }
                Effect::FreeKv {
                    replica,
                    free_blocks,
                } => tier.set_free_kv_blocks(*replica as usize, *free_blocks),
                _ => {}
            }
        }
        cur.effect += entry.n_effects as usize;
        commit_order.push(s as u32);
    }
}

/// The commit pass: replays a verified window's *metric* effects into the
/// collector, following the shard sequence the verify pass recorded — the
/// collector receives the byte-identical call sequence of a sequential run.
/// Tier effects were already applied during verification and are skipped.
/// Returns the number of effects committed.
fn commit_metrics(
    shards: &[SpecShard],
    metrics: &mut MetricsCollector,
    commit_order: &[u32],
) -> u64 {
    let mut cursors: Vec<LogCursor> = shards.iter().map(|_| LogCursor::default()).collect();
    let mut committed = 0u64;
    for &s in commit_order {
        let chunk = &shards[s as usize].sink.chunk;
        let cur = &mut cursors[s as usize];
        let entry = chunk.entries[cur.entry];
        cur.entry += 1;
        let time = entry.time;
        for effect in &chunk.effects[cur.effect..cur.effect + entry.n_effects as usize] {
            match effect {
                Effect::Arrival {
                    id,
                    decode_tokens,
                    tenant,
                } => metrics.on_arrival(*id, time, *decode_tokens, *tenant),
                Effect::OpSecs { replica, timing } => {
                    metrics.on_op_secs(*replica as usize, timing.op_secs())
                }
                Effect::GpuBusy { replica, gpu_secs } => {
                    metrics.on_gpu_busy(*replica as usize, *gpu_secs)
                }
                Effect::BatchWork {
                    replica,
                    tokens,
                    requests,
                    flops,
                    bytes,
                    first_n,
                } => {
                    metrics.on_batch_work(*replica as usize, *tokens, *requests, *flops, *bytes);
                    for &id in &chunk.ids[cur.id..cur.id + *first_n as usize] {
                        metrics.mark_first_scheduled(id, time);
                    }
                    cur.id += *first_n as usize;
                }
                Effect::KvSample {
                    replica,
                    utilization,
                } => metrics.on_kv_sample(*replica as usize, time, *utilization),
                Effect::Retire { replica, n_events } => {
                    metrics.on_batch_complete(
                        *replica as usize,
                        time,
                        &chunk.events[cur.event..cur.event + *n_events as usize],
                    );
                    cur.event += *n_events as usize;
                }
                Effect::FreeKv { .. } => {}
            }
        }
        cur.effect += entry.n_effects as usize;
        committed += entry.n_effects as u64;
    }
    committed
}
