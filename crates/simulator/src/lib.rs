//! # vidur-simulator
//!
//! The end-to-end Vidur cluster simulator (paper §4, Figure 2 right half):
//! an event-driven simulation of request arrival, global routing, replica
//! batching, pipeline-stage execution and memory management, parameterized
//! by any [`vidur_model::RuntimePredictor`].
//!
//! Running the same (config, trace, seed) once with the **hardware oracle**
//! (ground truth — the paper's "Real" bars) and once with the **trained
//! runtime estimator** (the paper's "Predicted" bars) isolates runtime
//! prediction error including its cascading effects on batch composition —
//! the exact fidelity quantity of Figures 3, 4, 7 and 8. The [`fidelity`]
//! module packages that comparison.
//!
//! * [`config`] — cluster/deployment configuration;
//! * [`engine`] — the shared batch-execution engine both simulators (and
//!   future backends) plug their policies into;
//! * [`timing`] — the memoized stage-time pipeline ([`StageTimer`]): runtime
//!   source → execution plan → per-stage prediction, cached by batch shape;
//! * [`cluster`] — the event-driven aggregated-cluster simulator;
//! * [`sharded`] — the parallel sharded event loop behind
//!   [`ClusterConfig::shards`](config::ClusterConfig::shards), bit-exact
//!   with the sequential engine;
//! * [`disagg`] — the prefill/decode-disaggregated simulator;
//! * [`metrics`] — request- and cluster-level reports (TTFT, TBT,
//!   normalized latency, MFU, MBU, KV utilization);
//! * [`onboarding`] — the model-onboarding pipeline (profile → train) with a
//!   process-wide estimator cache;
//! * [`fidelity`] — paired oracle/estimator runs and error summaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod config;
pub mod disagg;
pub mod engine;
pub mod faults;
pub mod fidelity;
pub mod metrics;
pub mod onboarding;
pub mod sharded;
pub mod timing;

pub use cluster::{ClusterSimulator, RunStats};
pub use config::{ClusterConfig, PrefixCacheConfig};
pub use disagg::{DisaggConfig, DisaggSimulator};
pub use engine::{BatchEngine, EngineReplica, RuntimeSource};
pub use faults::{
    Autoscaler, AutoscalerSpec, FaultPlan, FleetObservation, ScaleDecision, SloQueueAutoscaler,
    WarmupModel,
};
pub use fidelity::{run_fidelity_pair, FidelityReport};
pub use metrics::{
    DigestSummary, FleetStats, MetricsCollector, PrefixStats, SimulationReport, TenantReport,
    TenantRoutingStats, TenantSlo, TimeseriesConfig, TimeseriesRow,
};
pub use onboarding::{onboard, onboard_timer};
pub use timing::{CacheStats, StageTimer};
pub use vidur_core::metrics::QuantileMode;
