//! Paired oracle/estimator runs — the fidelity methodology of §7.2.
//!
//! A fidelity experiment runs the identical (configuration, trace, seed)
//! twice: once with ground-truth kernel times (plus real-system CPU jitter)
//! and once with the trained estimator. The signed percentage error on each
//! latency summary reproduces the numbers printed above the bars in
//! Figures 3, 4 and 7.

use crate::cluster::{ClusterSimulator, RuntimeSource};
use crate::config::ClusterConfig;
use crate::metrics::SimulationReport;
use crate::onboarding::onboard;
use serde::{Deserialize, Serialize};
use vidur_estimator::EstimatorKind;
use vidur_hardware::KernelOracle;
use vidur_workload::Trace;

/// Result of one paired fidelity run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Configuration label.
    pub config_label: String,
    /// Workload name.
    pub workload: String,
    /// Ground-truth ("Real") report.
    pub real: SimulationReport,
    /// Estimator-driven ("Predicted") report.
    pub predicted: SimulationReport,
}

impl FidelityReport {
    /// Signed percentage error of a predicted value vs truth.
    fn pct(real: f64, predicted: f64) -> f64 {
        if real == 0.0 {
            0.0
        } else {
            (predicted - real) / real * 100.0
        }
    }

    /// Error on median normalized end-to-end latency (Fig. 4a metric).
    pub fn err_norm_e2e_p50(&self) -> f64 {
        Self::pct(
            self.real.normalized_e2e.p50,
            self.predicted.normalized_e2e.p50,
        )
    }

    /// Error on P95 normalized end-to-end latency (Fig. 4b metric).
    pub fn err_norm_e2e_p95(&self) -> f64 {
        Self::pct(
            self.real.normalized_e2e.p95,
            self.predicted.normalized_e2e.p95,
        )
    }

    /// Error on median normalized execution latency (Fig. 3a metric).
    pub fn err_norm_exec_p50(&self) -> f64 {
        Self::pct(
            self.real.normalized_exec.p50,
            self.predicted.normalized_exec.p50,
        )
    }

    /// Error on P95 normalized execution latency (Fig. 3b metric).
    pub fn err_norm_exec_p95(&self) -> f64 {
        Self::pct(
            self.real.normalized_exec.p95,
            self.predicted.normalized_exec.p95,
        )
    }

    /// Error on median TTFT.
    pub fn err_ttft_p50(&self) -> f64 {
        Self::pct(self.real.ttft.p50, self.predicted.ttft.p50)
    }

    /// Error on P99 TBT.
    pub fn err_tbt_p99(&self) -> f64 {
        Self::pct(self.real.tbt.p99, self.predicted.tbt.p99)
    }
}

/// Runs the paired fidelity experiment for one configuration and trace.
///
/// The estimator is onboarded (or fetched from the cache) for the config's
/// (model, TP, SKU) triple with the given estimator kind.
pub fn run_fidelity_pair(
    config: &ClusterConfig,
    trace: &Trace,
    kind: EstimatorKind,
    seed: u64,
) -> FidelityReport {
    let oracle = KernelOracle::new(config.sku.clone());
    let real = ClusterSimulator::new(
        config.clone(),
        trace.clone(),
        RuntimeSource::Oracle(oracle),
        seed,
    )
    .run();
    let est = onboard(&config.model, &config.parallelism, &config.sku, kind);
    let predicted = ClusterSimulator::new(
        config.clone(),
        trace.clone(),
        RuntimeSource::Estimator((*est).clone()),
        seed,
    )
    .run();
    FidelityReport {
        config_label: config.label(),
        workload: trace.workload_name.clone(),
        real,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    #[test]
    fn static_fidelity_under_ten_percent() {
        let config = ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 32),
        );
        let mut rng = SimRng::new(11);
        let trace = TraceWorkload::chat_1m().generate(40, &ArrivalProcess::Static, &mut rng);
        let rep = run_fidelity_pair(&config, &trace, EstimatorKind::default(), 11);
        assert_eq!(rep.real.completed, 40);
        assert_eq!(rep.predicted.completed, 40);
        let err = rep.err_norm_exec_p50().abs();
        assert!(err < 10.0, "median exec error {err}%");
        let err95 = rep.err_norm_exec_p95().abs();
        assert!(err95 < 12.0, "p95 exec error {err95}%");
    }

    #[test]
    fn pct_error_signs() {
        assert_eq!(FidelityReport::pct(2.0, 1.0), -50.0);
        assert_eq!(FidelityReport::pct(2.0, 3.0), 50.0);
        assert_eq!(FidelityReport::pct(0.0, 3.0), 0.0);
    }
}
