//! Fault injection and elastic-fleet policy: [`FaultPlan`], the recovery
//! warm-up model, and the [`Autoscaler`] trait.
//!
//! A [`FaultPlan`] arms the cluster engine with a deterministic
//! [`FaultSchedule`] (crashes, recoveries, straggler episodes, graceful
//! drains — see [`vidur_workload::faults`] for the on-disk format) plus a
//! [`WarmupModel`] that prices how long a recovering or scaled-up replica
//! takes before it is routable. The [`Autoscaler`] closes the loop from
//! observed SLO attainment and queue depth back to fleet size.
//!
//! Arming either feature changes nothing until it fires: an empty plan with
//! no autoscaler is **byte-identical** to a run without the elastic layer
//! (pinned in `tests/engine_regression.rs`), and the sharded fast path
//! automatically falls back to the sequential engine whenever a plan or
//! autoscaler is armed — membership churn is cross-shard by nature.

use serde::{Deserialize, Serialize};
use vidur_workload::faults::FaultSchedule;

/// How long a replica takes from "start warm-up" to "routable": model-load
/// (weights off local disk / page cache into HBM plus process start) and
/// weight transfer over the provisioning network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmupModel {
    /// Fixed process-start + model-load cost in seconds.
    pub model_load_secs: f64,
    /// Provisioning-network bandwidth for weight transfer, in gigabytes per
    /// second (e.g. 12.5 for a 100 Gbit NIC).
    pub transfer_gb_per_sec: f64,
}

impl Default for WarmupModel {
    /// 10 s of process start + model load, weights over a 100 Gbit NIC.
    fn default() -> Self {
        WarmupModel {
            model_load_secs: 10.0,
            transfer_gb_per_sec: 12.5,
        }
    }
}

impl WarmupModel {
    /// Warm-up delay in seconds for a replica whose weights total
    /// `weight_bytes` across all its devices.
    pub fn delay_secs(&self, weight_bytes: f64) -> f64 {
        assert!(
            self.model_load_secs >= 0.0 && self.transfer_gb_per_sec > 0.0,
            "warm-up model needs non-negative load time and positive bandwidth"
        );
        self.model_load_secs + weight_bytes / (self.transfer_gb_per_sec * 1e9)
    }
}

/// A fault-injection plan: a deterministic schedule plus the warm-up model
/// recoveries (and autoscaler scale-ups) pay before a replica is routable.
///
/// The default plan is empty and guarantees byte-identical reports to a
/// build without the fault layer; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Time-ordered fault records.
    pub schedule: FaultSchedule,
    /// Recovery / scale-up warm-up pricing.
    pub warmup: WarmupModel,
}

impl FaultPlan {
    /// An empty plan: nothing ever fires, reports stay byte-identical.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when no fault will ever fire.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

/// Autoscaler configuration: evaluation cadence, fleet bounds, and the
/// SLO/queue thresholds the default policy reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerSpec {
    /// Seconds between policy evaluations (one observation window).
    pub interval_secs: f64,
    /// Never drain below this many live replicas.
    pub min_replicas: usize,
    /// Never warm up beyond this many replicas; the engine pre-allocates
    /// this fleet, so it also bounds memory.
    pub max_replicas: usize,
    /// TTFT SLO in seconds judged per prefill completion within a window.
    pub ttft_slo_secs: f64,
    /// Scale up when windowed TTFT attainment drops below this fraction.
    pub target_attainment: f64,
    /// Scale up when queued work per live replica exceeds this.
    pub queue_high: f64,
    /// Scale down only if the post-drain queue per replica stays below this.
    pub queue_low: f64,
    /// Replicas added or drained per decision.
    pub scale_step: usize,
}

impl AutoscalerSpec {
    /// A spec with sensible defaults: 30 s windows, 2 s TTFT SLO at 99%
    /// attainment, scale-up past 8 queued per replica, scale-down below 2,
    /// one replica per step.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min_replicas <= max_replicas`.
    pub fn new(min_replicas: usize, max_replicas: usize) -> Self {
        assert!(
            (1..=max_replicas).contains(&min_replicas),
            "need 1 <= min_replicas <= max_replicas"
        );
        AutoscalerSpec {
            interval_secs: 30.0,
            min_replicas,
            max_replicas,
            ttft_slo_secs: 2.0,
            target_attainment: 0.99,
            queue_high: 8.0,
            queue_low: 2.0,
            scale_step: 1,
        }
    }
}

/// One observation window handed to [`Autoscaler::decide`]: current fleet
/// shape plus what the window saw. TTFT attainment is windowed per prefill
/// completion — the same signal the report's per-tenant SLO column uses,
/// sampled live instead of at the end of the run.
#[derive(Debug, Clone, Copy)]
pub struct FleetObservation {
    /// Window end (= decision time) in seconds.
    pub now_secs: f64,
    /// Routable replicas.
    pub live: usize,
    /// Replicas currently warming up.
    pub warming: usize,
    /// Replicas gracefully draining.
    pub draining: usize,
    /// Requests parked in the routing tier's deferred queue.
    pub deferred: usize,
    /// Requests on live replicas (waiting + running).
    pub outstanding: usize,
    /// Prefills completed in this window.
    pub window_prefills: u64,
    /// Of those, how many met the TTFT SLO.
    pub window_slo_ok: u64,
}

impl FleetObservation {
    /// Windowed TTFT attainment, or `None` for an idle window.
    pub fn attainment(&self) -> Option<f64> {
        (self.window_prefills > 0).then(|| self.window_slo_ok as f64 / self.window_prefills as f64)
    }
}

/// What the policy wants done to the fleet this window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Leave the fleet as is.
    Hold,
    /// Warm up this many additional replicas (clamped to the fleet bound).
    Up(usize),
    /// Gracefully drain this many live replicas (clamped to the floor).
    Drain(usize),
}

/// An autoscaling policy: invoked once per interval with the window's
/// [`FleetObservation`]; the engine applies the decision within the
/// `[min_replicas, max_replicas]` bounds of the armed [`AutoscalerSpec`].
pub trait Autoscaler: std::fmt::Debug + Send {
    /// Decides the fleet change for this window.
    fn decide(&mut self, obs: &FleetObservation) -> ScaleDecision;
}

/// The default policy: scale up whenever the window missed the attainment
/// target, the tier had to defer, or the queue per live replica ran high;
/// scale down when attainment holds, nothing is deferred or warming, and
/// the queue would stay low on the smaller fleet.
#[derive(Debug, Clone)]
pub struct SloQueueAutoscaler {
    spec: AutoscalerSpec,
}

impl SloQueueAutoscaler {
    /// Builds the policy around its thresholds.
    pub fn new(spec: AutoscalerSpec) -> Self {
        SloQueueAutoscaler { spec }
    }
}

impl Autoscaler for SloQueueAutoscaler {
    fn decide(&mut self, obs: &FleetObservation) -> ScaleDecision {
        let spec = &self.spec;
        let live = obs.live.max(1);
        let queue_per_live = (obs.deferred + obs.outstanding) as f64 / live as f64;
        let missed_slo = obs.attainment().is_some_and(|a| a < spec.target_attainment);
        if missed_slo || obs.deferred > 0 || queue_per_live > spec.queue_high {
            return ScaleDecision::Up(spec.scale_step);
        }
        let step = spec
            .scale_step
            .min(obs.live.saturating_sub(spec.min_replicas));
        if step > 0 && obs.warming == 0 && obs.draining == 0 {
            let shrunk = (obs.live - step).max(1);
            let queue_after = obs.outstanding as f64 / shrunk as f64;
            if queue_after < spec.queue_low {
                return ScaleDecision::Drain(step);
            }
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(live: usize, deferred: usize, outstanding: usize) -> FleetObservation {
        FleetObservation {
            now_secs: 60.0,
            live,
            warming: 0,
            draining: 0,
            deferred,
            outstanding,
            window_prefills: 100,
            window_slo_ok: 100,
        }
    }

    #[test]
    fn warmup_prices_load_plus_transfer() {
        let w = WarmupModel {
            model_load_secs: 10.0,
            transfer_gb_per_sec: 12.5,
        };
        // 125 GB of weights over 12.5 GB/s = 10 s transfer + 10 s load.
        assert!((w.delay_secs(125e9) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn scales_up_on_missed_slo_or_queue() {
        let spec = AutoscalerSpec::new(1, 8);
        let mut policy = SloQueueAutoscaler::new(spec);
        let mut missed = obs(4, 0, 0);
        missed.window_slo_ok = 50;
        assert_eq!(policy.decide(&missed), ScaleDecision::Up(1));
        let deferred = obs(4, 3, 0);
        assert_eq!(policy.decide(&deferred), ScaleDecision::Up(1));
        let deep = obs(4, 0, 64);
        assert_eq!(policy.decide(&deep), ScaleDecision::Up(1));
    }

    #[test]
    fn scales_down_only_when_safe() {
        let spec = AutoscalerSpec::new(2, 8);
        let mut policy = SloQueueAutoscaler::new(spec);
        // Healthy and near-idle: drain.
        assert_eq!(policy.decide(&obs(4, 0, 1)), ScaleDecision::Drain(1));
        // At the floor: hold.
        assert_eq!(policy.decide(&obs(2, 0, 1)), ScaleDecision::Hold);
        // Healthy but busy enough that the smaller fleet would queue: hold.
        assert_eq!(policy.decide(&obs(4, 0, 8)), ScaleDecision::Hold);
        // Warming replicas in flight: hold rather than flap.
        let mut warming = obs(4, 0, 1);
        warming.warming = 1;
        assert_eq!(policy.decide(&warming), ScaleDecision::Hold);
    }
}
