//! Request- and cluster-level metrics (paper §5.2).
//!
//! Request-level: scheduling delay, TTFT, TBT, end-to-end and execution
//! latency (both normalized by output length, the metric of §7.2).
//! Cluster-level: throughput, MFU, MBU, mean KV-cache utilization, batch
//! statistics, and preemption counts.

use serde::{Deserialize, Serialize};
use vidur_core::mergeable::{HyperLogLog, TDigest};
use vidur_core::metrics::{QuantileDigest, QuantileMode, StreamingSummary, TimeWeightedSeries};
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_model::operators::Operator;
use vidur_scheduler::replica::CompletionEvent;
use vidur_scheduler::{IdSlab, RequestId};

/// Five-number-plus-mean summary of a latency distribution (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DigestSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl DigestSummary {
    /// Summarizes a digest (zeros if empty), sealing it for quantile reads.
    pub fn from_digest(d: &mut QuantileDigest) -> Self {
        if d.is_empty() {
            return DigestSummary::default();
        }
        d.seal();
        DigestSummary {
            mean: d.mean().unwrap_or(0.0),
            p50: d.quantile(0.5).unwrap_or(0.0),
            p90: d.quantile(0.9).unwrap_or(0.0),
            p95: d.quantile(0.95).unwrap_or(0.0),
            p99: d.quantile(0.99).unwrap_or(0.0),
            max: d.max().unwrap_or(0.0),
        }
    }

    /// Summarizes a bounded-memory streaming sketch (zeros if empty).
    pub fn from_streaming(s: &StreamingSummary) -> Self {
        if s.is_empty() {
            return DigestSummary::default();
        }
        DigestSummary {
            mean: s.mean().unwrap_or(0.0),
            p50: s.quantile(0.5).unwrap_or(0.0),
            p90: s.quantile(0.9).unwrap_or(0.0),
            p95: s.quantile(0.95).unwrap_or(0.0),
            p99: s.quantile(0.99).unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }
}

/// The shared contract every latency-distribution sink satisfies: fold
/// samples in, read one summary out. Whether a sink needs an internal
/// sort-before-read step ([`QuantileDigest::seal`], [`TDigest::seal`]) is
/// its own business — `summarize` hides it, so sinks that don't have a
/// seal seam (the P² sketch) don't inherit one.
trait DistributionSink {
    /// Folds one sample into the sink.
    fn record_sample(&mut self, value: f64);
    /// Summarizes everything recorded so far (zeros if empty).
    fn summarize(&mut self) -> DigestSummary;
}

impl DistributionSink for QuantileDigest {
    fn record_sample(&mut self, value: f64) {
        self.record(value);
    }

    fn summarize(&mut self) -> DigestSummary {
        DigestSummary::from_digest(self)
    }
}

impl DistributionSink for StreamingSummary {
    fn record_sample(&mut self, value: f64) {
        self.record(value);
    }

    fn summarize(&mut self) -> DigestSummary {
        DigestSummary::from_streaming(self)
    }
}

/// The mergeable latency sink: a deterministic t-digest for quantiles plus
/// an exact running sum (kept outside the digest — the digest's state must
/// be a pure function of the sample multiset, and an internal f64 sum
/// would not be). One `MergeSink` is only ever written by a single replica
/// stream, so its sum and digest are bit-reproducible; cross-replica
/// aggregation goes through [`MergeSink::merge`] in replica-index order.
#[derive(Debug, Clone, Default)]
struct MergeSink {
    digest: TDigest,
    sum: f64,
}

impl MergeSink {
    fn new() -> Self {
        MergeSink::default()
    }

    /// Folds another sink into this one. Digest centroids concatenate
    /// (canonical compression happens once, inside `summarize`); the sum
    /// add is exact in the single-writer discipline because one side is
    /// always untouched (`x + 0.0 == x` for the non-negative latencies
    /// recorded here).
    fn merge(&mut self, other: &MergeSink) {
        self.digest.merge(&other.digest);
        self.sum += other.sum;
    }
}

impl DistributionSink for MergeSink {
    fn record_sample(&mut self, value: f64) {
        self.digest.record(value);
        self.sum += value;
    }

    fn summarize(&mut self) -> DigestSummary {
        if self.digest.is_empty() {
            return DigestSummary::default();
        }
        self.digest.seal();
        DigestSummary {
            mean: self.sum / self.digest.count() as f64,
            p50: self.digest.quantile(0.5).unwrap_or(0.0),
            p90: self.digest.quantile(0.9).unwrap_or(0.0),
            p95: self.digest.quantile(0.95).unwrap_or(0.0),
            p99: self.digest.quantile(0.99).unwrap_or(0.0),
            max: self.digest.max().unwrap_or(0.0),
        }
    }
}

/// A latency-distribution sink that is either exact or bounded-memory,
/// per [`QuantileMode`].
#[derive(Debug, Clone)]
enum StatSink {
    Exact(QuantileDigest),
    // Boxed: the sketch variant carries 16 P² markers inline (~576 bytes)
    // while the exact variant is a Vec header.
    Sketch(Box<StreamingSummary>),
    /// Inert placeholder: in mergeable mode every latency folds into a
    /// per-replica [`MergeSink`] slot (see [`MergeableState`]), never into
    /// a collector-global sink — recording here is a logic error.
    Mergeable,
}

impl StatSink {
    fn new(mode: QuantileMode) -> Self {
        match mode {
            QuantileMode::Exact => StatSink::Exact(QuantileDigest::new()),
            QuantileMode::Sketch => StatSink::Sketch(Box::new(StreamingSummary::new())),
            QuantileMode::Mergeable => StatSink::Mergeable,
        }
    }

    fn record(&mut self, value: f64) {
        match self {
            StatSink::Exact(d) => d.record_sample(value),
            StatSink::Sketch(s) => s.record_sample(value),
            StatSink::Mergeable => {
                unreachable!("mergeable-mode latencies fold into per-replica slots")
            }
        }
    }

    fn summary(&mut self) -> DigestSummary {
        match self {
            StatSink::Exact(d) => d.summarize(),
            StatSink::Sketch(s) => s.summarize(),
            StatSink::Mergeable => {
                unreachable!("mergeable-mode summaries fold from per-replica slots")
            }
        }
    }
}

/// Latency SLO evaluated per completed request for per-tenant attainment
/// reporting: a request meets the SLO when its TTFT and its per-output-token
/// end-to-end latency are both within bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Time-to-first-token bound, seconds.
    pub ttft_secs: f64,
    /// End-to-end latency bound per output token, seconds.
    pub e2e_per_token_secs: f64,
}

/// Per-tenant slice of the simulation report (latency/SLO breakdown).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name (from the trace's declared tenants, or `tenant-<id>` for
    /// requests carrying an undeclared index).
    pub tenant: String,
    /// Requests that arrived for this tenant.
    pub arrived: usize,
    /// Requests that completed before the simulation ended.
    pub completed: usize,
    /// Time to first token.
    pub ttft: DigestSummary,
    /// Raw end-to-end latency.
    pub e2e: DigestSummary,
    /// Fraction of completed requests meeting the configured [`TenantSlo`]
    /// (`None` when no SLO was configured; `0.0` when nothing completed).
    pub slo_attainment: Option<f64>,
    /// Requests the global tier bound to a replica (immediately or after
    /// deferral). Zero unless the driving simulator published routing stats.
    pub routed: u64,
    /// Requests the global tier held in its deferred queue at least once.
    pub deferred: u64,
    /// Replica admissions denied by this tenant's KV quota (waiting →
    /// quota-parked transitions, summed over replicas).
    pub quota_denied: u64,
    /// Fraction of the weighted fair share this tenant received
    /// (`1.0` = exact attainment). `None` unless fair-share routing ran.
    pub fair_share_attainment: Option<f64>,
    /// Re-dispatches of this tenant's requests after a crash eviction or
    /// drain migration (elastic-fleet runs only; zero otherwise).
    pub retries: u64,
    /// This tenant's requests sent back through the routing tier by a crash
    /// or drain (elastic-fleet runs only; zero otherwise).
    pub requeued: u64,
    /// This tenant's requests evicted by replica crashes (elastic-fleet
    /// runs only; zero otherwise).
    pub evicted_by_crash: u64,
    /// This tenant's requests admitted with a prefix-cache hit
    /// (prefix-cache runs only; zero otherwise).
    pub prefix_hits: u64,
    /// Prefill tokens this tenant skipped via cached prefixes
    /// (prefix-cache runs only; zero otherwise).
    pub prefix_tokens_saved: u64,
}

/// Elastic-fleet statistics a simulator publishes into the collector before
/// assembling the report (see [`MetricsCollector::set_fleet`]). All-zero /
/// empty when the elastic layer never armed, which is the guarantee behind
/// the report's "byte-identical without a fault plan" contract: the report
/// fields these feed default to exactly the values a build without the
/// fault layer produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Request dispatches beyond each request's first (re-dispatches after
    /// crash evictions and drain migrations).
    pub retries: u64,
    /// Requests sent back through the routing tier by a crash or drain.
    pub requeued: u64,
    /// Requests evicted by replica crashes (in-flight or queued).
    pub evicted_by_crash: u64,
    /// Total replica uptime (live + warming + draining) in hours — the
    /// cost denominator autoscaler evaluations compare against a static
    /// fleet.
    pub replica_hours: f64,
    /// Per-replica fraction of the run each replica slot was up.
    pub replica_availability: Vec<f64>,
    /// Per-tenant retry counts (index = tenant id).
    pub tenant_retries: Vec<u64>,
    /// Per-tenant requeue counts (index = tenant id).
    pub tenant_requeued: Vec<u64>,
    /// Per-tenant crash-eviction counts (index = tenant id).
    pub tenant_evicted: Vec<u64>,
}

/// Prefix-cache statistics a simulator publishes into the collector before
/// assembling the report (see [`MetricsCollector::set_prefix`]). All-zero
/// when the prefix-cache tier never armed, which keeps the report
/// byte-identical to a build without the tier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefixStats {
    /// Requests admitted with a prefix-cache hit (summed over replicas).
    pub hit_requests: u64,
    /// Prefill tokens skipped at admission thanks to cached prefixes.
    pub tokens_saved: u64,
    /// Per-tenant hit counts (index = tenant id).
    pub tenant_hits: Vec<u64>,
    /// Per-tenant tokens-saved counts (index = tenant id).
    pub tenant_saved: Vec<u64>,
}

/// Per-tenant routing statistics a simulator publishes into the collector
/// before assembling the report (see [`MetricsCollector::set_tenant_routing`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantRoutingStats {
    /// Requests bound to a replica.
    pub routed: u64,
    /// Requests held in the deferred queue at least once.
    pub deferred: u64,
    /// Admissions denied by the tenant's KV quota.
    pub quota_denied: u64,
    /// Weighted fair-share attainment, when fair-share routing ran.
    pub fair_share_attainment: Option<f64>,
}

/// Per-tenant accumulation state (latencies honor the collector's
/// [`QuantileMode`], so sketch-mode runs stay bounded-memory per tenant).
#[derive(Debug, Clone)]
struct TenantStat {
    name: String,
    arrived: usize,
    completed: usize,
    slo_met: usize,
    ttft: StatSink,
    e2e: StatSink,
}

impl TenantStat {
    fn new(name: String, mode: QuantileMode) -> Self {
        TenantStat {
            name,
            arrived: 0,
            completed: 0,
            slo_met: 0,
            ttft: StatSink::new(mode),
            e2e: StatSink::new(mode),
        }
    }
}

/// Per-request latency sinks maintained incrementally in sketch mode.
#[derive(Debug, Clone)]
struct RequestSinks {
    sched_delay: StreamingSummary,
    ttft: StreamingSummary,
    norm_e2e: StreamingSummary,
    norm_exec: StreamingSummary,
    e2e: StreamingSummary,
}

impl RequestSinks {
    fn new() -> Self {
        RequestSinks {
            sched_delay: StreamingSummary::new(),
            ttft: StreamingSummary::new(),
            norm_e2e: StreamingSummary::new(),
            norm_exec: StreamingSummary::new(),
            e2e: StreamingSummary::new(),
        }
    }
}

/// Windowed time-series output configuration (mergeable mode only): the
/// report gains one [`TimeseriesRow`] per `window_secs` of simulated time,
/// so long diurnal runs yield a trajectory, not just end-of-run aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesConfig {
    /// Window width in simulated seconds (e.g. `60.0` for per-minute rows).
    pub window_secs: f64,
}

impl TimeseriesConfig {
    /// Per-minute rows, the conventional granularity.
    pub fn per_minute() -> Self {
        TimeseriesConfig { window_secs: 60.0 }
    }
}

/// One window of the report's time series. Requests are binned by their
/// *completion* time; the TTFT quantile covers requests completing in the
/// window, and KV occupancy is the time-weighted mean over the window
/// averaged across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeseriesRow {
    /// Window start, simulated seconds.
    pub window_start_secs: f64,
    /// Requests completed in this window.
    pub completed: u64,
    /// `completed / window_secs`.
    pub throughput_qps: f64,
    /// p99 time-to-first-token of requests completing in this window
    /// (0 when none recorded a TTFT).
    pub ttft_p99: f64,
    /// Time-weighted mean KV-cache occupancy over the window, averaged
    /// across replicas with data in the window.
    pub kv_occupancy: f64,
}

/// Per-tenant mergeable latency slots (one set per replica).
#[derive(Debug, Clone, Default)]
struct TenantFold {
    ttft: MergeSink,
    e2e: MergeSink,
}

/// One time-series window's per-replica state.
#[derive(Debug, Clone, Default)]
struct WindowFold {
    completed: u64,
    ttft: TDigest,
}

/// One replica's slice of the mergeable fold. Every `f64` accumulator and
/// every digest is keyed by the replica that produced it — the
/// single-writer discipline that makes the whole collector a pure fold:
/// a replica's event stream is identical under any shard count, so each
/// slot's bits are identical, and the report folds slots in replica-index
/// order. Only commutative integer state (counts, maxima) lives outside
/// these slots.
#[derive(Debug, Clone)]
struct ReplicaFold {
    busy_gpu_secs: f64,
    flops: f64,
    bytes: f64,
    op_secs: [f64; Operator::ALL.len()],
    tbt: MergeSink,
    sched_delay: MergeSink,
    ttft: MergeSink,
    norm_e2e: MergeSink,
    norm_exec: MergeSink,
    e2e: MergeSink,
    /// Tenant-id-indexed latency slots; grows on demand.
    tenants: Vec<TenantFold>,
    /// Window-indexed time-series state; grows on demand.
    windows: Vec<WindowFold>,
}

impl ReplicaFold {
    fn new() -> Self {
        ReplicaFold {
            busy_gpu_secs: 0.0,
            flops: 0.0,
            bytes: 0.0,
            op_secs: [0.0; Operator::ALL.len()],
            tbt: MergeSink::new(),
            sched_delay: MergeSink::new(),
            ttft: MergeSink::new(),
            norm_e2e: MergeSink::new(),
            norm_exec: MergeSink::new(),
            e2e: MergeSink::new(),
            tenants: Vec::new(),
            windows: Vec::new(),
        }
    }

    fn tenant_entry(&mut self, idx: usize) -> &mut TenantFold {
        while self.tenants.len() <= idx {
            self.tenants.push(TenantFold::default());
        }
        &mut self.tenants[idx]
    }

    /// Folds another replica slot into this one. Exact for the f64 fields
    /// under the single-writer discipline (one side is always zero).
    fn merge(&mut self, other: &ReplicaFold) {
        self.busy_gpu_secs += other.busy_gpu_secs;
        self.flops += other.flops;
        self.bytes += other.bytes;
        for (acc, s) in self.op_secs.iter_mut().zip(&other.op_secs) {
            *acc += s;
        }
        self.tbt.merge(&other.tbt);
        self.sched_delay.merge(&other.sched_delay);
        self.ttft.merge(&other.ttft);
        self.norm_e2e.merge(&other.norm_e2e);
        self.norm_exec.merge(&other.norm_exec);
        self.e2e.merge(&other.e2e);
        for (idx, tf) in other.tenants.iter().enumerate() {
            let mine = self.tenant_entry(idx);
            mine.ttft.merge(&tf.ttft);
            mine.e2e.merge(&tf.e2e);
        }
        while self.windows.len() < other.windows.len() {
            self.windows.push(WindowFold::default());
        }
        for (mine, w) in self.windows.iter_mut().zip(&other.windows) {
            mine.completed += w.completed;
            mine.ttft.merge(&w.ttft);
        }
    }
}

/// The collector-wide mergeable state: per-replica single-writer slots plus
/// the (commutatively) mergeable distinct-tenant sketch. `Some` iff the
/// collector runs in [`QuantileMode::Mergeable`].
#[derive(Debug, Clone)]
struct MergeableState {
    replicas: Vec<ReplicaFold>,
    distinct_tenants: HyperLogLog,
    window_secs: Option<f64>,
}

impl MergeableState {
    fn new(num_replicas: usize) -> Self {
        MergeableState {
            replicas: vec![ReplicaFold::new(); num_replicas],
            distinct_tenants: HyperLogLog::new(),
            window_secs: None,
        }
    }

    /// Retires one finished request into `replica`'s slots (and its
    /// completion-time window when the time series is armed).
    fn on_completion(&mut self, replica: usize, now: SimTime, rec: &RequestRecord) {
        let lat = rec.latencies();
        let r = &mut self.replicas[replica];
        if let Some(w) = self.window_secs {
            let idx = (now.as_secs_f64() / w) as usize;
            while r.windows.len() <= idx {
                r.windows.push(WindowFold::default());
            }
            let win = &mut r.windows[idx];
            win.completed += 1;
            if let Some(t) = lat.as_ref().and_then(|l| l.ttft) {
                win.ttft.record(t);
            }
        }
        let Some(l) = lat else {
            return;
        };
        r.sched_delay.record_sample(l.sched_delay);
        if let Some(t) = l.ttft {
            r.ttft.record_sample(t);
        }
        r.e2e.record_sample(l.e2e);
        r.norm_e2e.record_sample(l.norm_e2e);
        r.norm_exec.record_sample(l.norm_exec);
    }
}

/// Everything a simulation run reports (the "Simulation Report" of Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Requests in the input trace.
    pub num_requests: usize,
    /// Requests that completed before the simulation ended.
    pub completed: usize,
    /// Simulated time at the last completion.
    pub makespan_secs: f64,
    /// Completed requests per second of simulated time.
    pub throughput_qps: f64,
    /// Queueing delay from arrival to first scheduling.
    pub scheduling_delay: DigestSummary,
    /// Time to first token (arrival → prefill completion).
    pub ttft: DigestSummary,
    /// Time between consecutive output tokens.
    pub tbt: DigestSummary,
    /// End-to-end latency / output tokens (s/token).
    pub normalized_e2e: DigestSummary,
    /// Execution latency (excluding scheduling delay) / output tokens.
    pub normalized_exec: DigestSummary,
    /// Raw end-to-end latency.
    pub e2e: DigestSummary,
    /// Model FLOPs utilization across all GPUs.
    pub mfu: f64,
    /// Memory-bandwidth utilization across all GPUs.
    pub mbu: f64,
    /// Time-weighted mean KV-cache occupancy across replicas.
    pub kv_utilization: f64,
    /// vLLM-style preemption/restart count.
    pub preemptions: u64,
    /// Iterations (batches) executed.
    pub total_batches: u64,
    /// Tokens processed across all iterations.
    pub total_tokens: u64,
    /// Mean tokens per batch.
    pub mean_batch_tokens: f64,
    /// Mean requests per batch.
    pub mean_batch_size: f64,
    /// Cluster energy consumed, kWh (busy GPUs at TDP, idle GPUs at idle
    /// power — the §5.2 energy extension).
    pub energy_kwh: f64,
    /// Mean cluster power draw, watts.
    pub mean_power_watts: f64,
    /// Energy per completed request, watt-hours.
    pub energy_wh_per_request: f64,
    /// Total predicted execution time attributed to each operator, seconds,
    /// sorted descending (the paper's operator-level metrics, §5.2).
    pub operator_time_breakdown: Vec<(String, f64)>,
    /// Per-tenant latency/SLO breakdowns, tenant-id order. Empty unless the
    /// driving simulator armed tenant tracking (multi-tenant traces).
    pub per_tenant: Vec<TenantReport>,
    /// Windowed time-series rows ([`TimeseriesConfig`]). Only populated in
    /// [`QuantileMode::Mergeable`] with a time series armed; empty
    /// otherwise.
    pub timeseries: Vec<TimeseriesRow>,
    /// HyperLogLog estimate of distinct tenant ids seen across arrivals.
    /// `Some` only in [`QuantileMode::Mergeable`].
    pub distinct_tenants_est: Option<f64>,
    /// Re-dispatches after crash evictions and drain migrations. Zero
    /// unless an elastic-fleet run published [`FleetStats`] — together with
    /// the other fleet fields below, an all-zero/empty value here means the
    /// report is byte-identical to one from a build without the fault
    /// layer.
    pub retries: u64,
    /// Requests sent back through the routing tier by a crash or drain.
    pub requeued: u64,
    /// Requests evicted by replica crashes (in-flight or queued).
    pub evicted_by_crash: u64,
    /// Total replica uptime in hours (elastic runs; `0.0` otherwise).
    pub replica_hours: f64,
    /// Per-replica uptime fraction (empty unless an elastic run).
    pub replica_availability: Vec<f64>,
    /// Requests admitted with a prefix-cache hit. Zero unless a
    /// prefix-cache run published [`PrefixStats`] — like the fleet fields,
    /// all-zero here means the report is byte-identical to one from a build
    /// without the prefix tier.
    pub prefix_hits: u64,
    /// Prefill tokens skipped at admission thanks to cached prefixes.
    pub prefix_tokens_saved: u64,
    /// Fraction of completed requests admitted with a prefix-cache hit
    /// (`0.0` when the tier is off or nothing completed).
    pub prefix_hit_rate: f64,
}

#[derive(Debug, Clone, Copy)]
struct RequestRecord {
    arrival: SimTime,
    decode_tokens: u64,
    tenant: u32,
    first_scheduled: Option<SimTime>,
    prefill_done: Option<SimTime>,
    last_token: Option<SimTime>,
    completed: Option<SimTime>,
}

/// One finished request's derived latencies. Computed in exactly one place
/// ([`RequestRecord::latencies`]) and consumed by every sink — the exact
/// end-of-run pass, the sketch-mode streaming sinks, and the per-tenant
/// breakdowns — so the defining formulas cannot drift apart.
#[derive(Debug, Clone, Copy)]
struct RequestLatencies {
    /// Arrival → first scheduling.
    sched_delay: f64,
    /// Arrival → prefill completion (`None` if the prefill never finished
    /// being observed, e.g. remotely-prefilled requests).
    ttft: Option<f64>,
    /// Arrival → completion.
    e2e: f64,
    /// `e2e` per output token.
    norm_e2e: f64,
    /// First-schedule → completion, per output token.
    norm_exec: f64,
}

impl RequestRecord {
    /// Derives the request's latency tuple; `None` until the request has
    /// both a first schedule and a completion (incomplete requests are
    /// excluded from every latency distribution).
    fn latencies(&self) -> Option<RequestLatencies> {
        let completed = self.completed?;
        let first_sched = self.first_scheduled?;
        let e2e = completed.duration_since(self.arrival).as_secs_f64();
        let exec = completed.duration_since(first_sched).as_secs_f64();
        Some(RequestLatencies {
            sched_delay: first_sched.duration_since(self.arrival).as_secs_f64(),
            ttft: self
                .prefill_done
                .map(|pd| pd.duration_since(self.arrival).as_secs_f64()),
            e2e,
            norm_e2e: e2e / self.decode_tokens as f64,
            norm_exec: exec / self.decode_tokens as f64,
        })
    }
}

/// Streaming metrics collector driven by the cluster simulator.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    /// Per-request records, id-indexed: simulators feed dense trace
    /// indices, so the slab beats a map on the per-slice hot paths. In
    /// sketch mode records retire into [`RequestSinks`] as requests
    /// complete instead of accumulating until the final report.
    records: IdSlab<RequestRecord>,
    tbt: StatSink,
    /// `Some` iff the collector runs in [`QuantileMode::Sketch`].
    request_sinks: Option<RequestSinks>,
    /// `Some` iff the collector runs in [`QuantileMode::Mergeable`]: the
    /// per-replica fold slots everything mergeable accumulates into.
    fold: Option<MergeableState>,
    mode: QuantileMode,
    /// Per-tenant accumulation, armed by [`MetricsCollector::set_tenants`];
    /// stays empty (and costs nothing) on single-tenant runs.
    tenants: Vec<TenantStat>,
    track_tenants: bool,
    tenant_slo: Option<TenantSlo>,
    /// Routing statistics published by the driving simulator's tier(s),
    /// tenant-id-indexed. Empty unless published.
    tenant_routing: Vec<TenantRoutingStats>,
    /// Elastic-fleet statistics published by the driving simulator. `None`
    /// unless an elastic run published them — the report then carries the
    /// all-zero defaults.
    fleet: Option<FleetStats>,
    /// Prefix-cache statistics published by the driving simulator. `None`
    /// unless a prefix-cache run published them.
    prefix: Option<PrefixStats>,
    completed: usize,
    last_completion: SimTime,
    total_batches: u64,
    total_tokens: u64,
    total_batch_requests: u64,
    flops: f64,
    bytes: f64,
    kv_series: Vec<TimeWeightedSeries>,
    busy_gpu_secs: f64,
    op_secs: [f64; Operator::ALL.len()],
    late_limit_secs: Option<f64>,
    late_count: usize,
}

impl MetricsCollector {
    /// Creates a collector for `num_replicas` replicas with exact quantiles.
    pub fn new(num_replicas: usize) -> Self {
        MetricsCollector::with_mode(num_replicas, QuantileMode::Exact)
    }

    /// Creates a collector for `num_replicas` replicas in the given
    /// [`QuantileMode`].
    pub fn with_mode(num_replicas: usize, mode: QuantileMode) -> Self {
        MetricsCollector {
            records: IdSlab::new(),
            tbt: StatSink::new(mode),
            request_sinks: match mode {
                QuantileMode::Exact | QuantileMode::Mergeable => None,
                QuantileMode::Sketch => Some(RequestSinks::new()),
            },
            fold: (mode == QuantileMode::Mergeable).then(|| MergeableState::new(num_replicas)),
            mode,
            tenants: Vec::new(),
            track_tenants: false,
            tenant_slo: None,
            tenant_routing: Vec::new(),
            fleet: None,
            prefix: None,
            completed: 0,
            last_completion: SimTime::ZERO,
            total_batches: 0,
            total_tokens: 0,
            total_batch_requests: 0,
            flops: 0.0,
            bytes: 0.0,
            kv_series: vec![TimeWeightedSeries::new(); num_replicas],
            busy_gpu_secs: 0.0,
            op_secs: [0.0; Operator::ALL.len()],
            late_limit_secs: None,
            late_count: 0,
        }
    }

    /// Arms late-request tracking: requests whose first scheduling happens
    /// more than `limit_secs` after arrival increment
    /// [`late_count`](Self::late_count). Used by the capacity search to
    /// abort hopeless (overloaded) probes early instead of simulating the
    /// whole blow-up.
    pub fn set_late_limit(&mut self, limit_secs: f64) {
        self.late_limit_secs = Some(limit_secs);
    }

    /// Requests first-scheduled later than the armed limit.
    pub fn late_count(&self) -> usize {
        self.late_count
    }

    /// Arms windowed time-series reporting ([`TimeseriesConfig`]). Only
    /// effective in [`QuantileMode::Mergeable`] — the other modes' reports
    /// are pinned bit-exactly and carry no rows; arming them is a no-op.
    pub fn set_timeseries(&mut self, config: TimeseriesConfig) {
        assert!(
            config.window_secs > 0.0,
            "time-series window must be positive"
        );
        if let Some(fold) = self.fold.as_mut() {
            fold.window_secs = Some(config.window_secs);
        }
    }

    /// The collector's quantile mode.
    pub fn mode(&self) -> QuantileMode {
        self.mode
    }

    /// Arms per-tenant breakdown reporting: `names` maps tenant ids to
    /// display names (requests referencing an index beyond the list get a
    /// synthesized `tenant-<id>` entry), `slo` enables attainment
    /// accounting. Simulators call this when the trace declares tenants;
    /// unarmed collectors skip all per-tenant work.
    pub fn set_tenants(&mut self, names: &[String], slo: Option<TenantSlo>) {
        self.track_tenants = true;
        self.tenant_slo = slo;
        self.tenants = names
            .iter()
            .map(|n| TenantStat::new(n.clone(), self.mode))
            .collect();
    }

    /// Publishes per-tenant routing statistics (index = tenant id) for the
    /// report's per-tenant breakdown. No-op on collectors without tenant
    /// tracking — routing columns only appear on multi-tenant runs.
    pub fn set_tenant_routing(&mut self, stats: Vec<TenantRoutingStats>) {
        if self.track_tenants {
            self.tenant_routing = stats;
        }
    }

    /// Publishes elastic-fleet statistics for the report. Only elastic runs
    /// call this; without it the report's fleet fields keep their all-zero
    /// defaults and the report stays byte-identical to a build without the
    /// fault layer.
    pub fn set_fleet(&mut self, stats: FleetStats) {
        self.fleet = Some(stats);
    }

    /// Publishes prefix-cache statistics for the report. Only prefix-cache
    /// runs call this; without it the report's prefix fields keep their
    /// all-zero defaults and the report stays byte-identical to a build
    /// without the prefix tier.
    pub fn set_prefix(&mut self, stats: PrefixStats) {
        self.prefix = Some(stats);
    }

    /// Grows the per-tenant table to cover `tenant` and returns its entry.
    fn tenant_entry(&mut self, tenant: u32) -> &mut TenantStat {
        let idx = tenant as usize;
        while self.tenants.len() <= idx {
            let name = format!("tenant-{}", self.tenants.len());
            self.tenants.push(TenantStat::new(name, self.mode));
        }
        &mut self.tenants[idx]
    }

    /// Accounts GPU-busy seconds for a scheduled batch (stage time x GPUs
    /// in the stage's TP group, summed over stages). `replica` keys the
    /// mergeable fold's single-writer slot; exact/sketch modes keep one
    /// global accumulator (bit-compatible with the pre-replica behavior).
    pub fn on_gpu_busy(&mut self, replica: usize, gpu_secs: f64) {
        match self.fold.as_mut() {
            Some(fold) => fold.replicas[replica].busy_gpu_secs += gpu_secs,
            None => self.busy_gpu_secs += gpu_secs,
        }
    }

    /// Attributes predicted execution time to an operator.
    pub fn on_op_time(&mut self, replica: usize, op: Operator, secs: f64) {
        match self.fold.as_mut() {
            Some(fold) => fold.replicas[replica].op_secs[op.index()] += secs,
            None => self.op_secs[op.index()] += secs,
        }
    }

    /// Attributes one batch's per-operator time totals (indexed by
    /// [`Operator::index`]) in a single pass — the cached-timing replay
    /// path.
    pub fn on_op_secs(&mut self, replica: usize, secs: &[f64; Operator::ALL.len()]) {
        let acc = match self.fold.as_mut() {
            Some(fold) => &mut fold.replicas[replica].op_secs,
            None => &mut self.op_secs,
        };
        for (acc, s) in acc.iter_mut().zip(secs) {
            *acc += s;
        }
    }

    /// Registers an arriving request under its tenant (0 for single-tenant
    /// runs).
    pub fn on_arrival(&mut self, id: RequestId, arrival: SimTime, decode_tokens: u64, tenant: u32) {
        self.records.insert(
            id,
            RequestRecord {
                arrival,
                decode_tokens,
                tenant,
                first_scheduled: None,
                prefill_done: None,
                last_token: None,
                completed: None,
            },
        );
        if let Some(fold) = self.fold.as_mut() {
            fold.distinct_tenants.insert(tenant as u64);
        }
        if self.track_tenants {
            self.tenant_entry(tenant).arrived += 1;
        }
    }

    /// Marks requests in a freshly scheduled batch and accounts batch work.
    pub fn on_batch_scheduled(
        &mut self,
        replica: usize,
        now: SimTime,
        batch: &BatchComposition,
        flops: f64,
        bytes: f64,
    ) {
        self.on_batch_work(
            replica,
            batch.total_query_tokens(),
            batch.num_requests() as u64,
            flops,
            bytes,
        );
        for slice in batch.slices() {
            // Fast-path filter only: decode slices belong to requests whose
            // first schedule already happened, so their record lookups are
            // skipped (the engine's batches are decode-dominated). Prefill
            // slices always consult the record — a prefix-cache hit's first
            // prefill arrives with `cached_tokens > 0` and must still mark
            // TTFT. Whether the request is *actually* newly scheduled is
            // decided by the record alone in `mark_first_scheduled` — a
            // chunked-prefill continuation or preemption-restarted prefill
            // re-enters here and must not count twice.
            if slice.is_prefill {
                self.mark_first_scheduled(slice.request_id, now);
            }
        }
    }

    /// Accounts one scheduled batch's aggregate work — the batch-shape-free
    /// half of [`on_batch_scheduled`](Self::on_batch_scheduled), split out
    /// so the sharded commit loop can replay it from an effect log without
    /// materializing the batch.
    pub(crate) fn on_batch_work(
        &mut self,
        replica: usize,
        tokens: u64,
        requests: u64,
        flops: f64,
        bytes: f64,
    ) {
        self.total_batches += 1;
        self.total_tokens += tokens;
        self.total_batch_requests += requests;
        match self.fold.as_mut() {
            Some(fold) => {
                let r = &mut fold.replicas[replica];
                r.flops += flops;
                r.bytes += bytes;
            }
            None => {
                self.flops += flops;
                self.bytes += bytes;
            }
        }
    }

    /// Single authority for first-schedule marking and late accounting: the
    /// record's `first_scheduled` field. Lateness is judged once, against
    /// the *original* first schedule, so the count cannot depend on slice
    /// order within a batch or on restarts after preemption.
    pub(crate) fn mark_first_scheduled(&mut self, id: RequestId, now: SimTime) {
        let Some(rec) = self.records.get_mut(&id) else {
            return;
        };
        if rec.first_scheduled.is_some() {
            return;
        }
        rec.first_scheduled = Some(now);
        if let Some(limit) = self.late_limit_secs {
            if now.saturating_duration_since(rec.arrival).as_secs_f64() > limit {
                self.late_count += 1;
            }
        }
    }

    /// Applies completion events from a finished batch. In sketch and
    /// mergeable modes, finished requests stream their request-level
    /// latencies into the bounded sinks immediately and their records are
    /// dropped.
    pub fn on_batch_complete(&mut self, replica: usize, now: SimTime, events: &[CompletionEvent]) {
        for ev in events {
            let Some(rec) = self.records.get_mut(&ev.id) else {
                continue;
            };
            if ev.prefill_completed {
                rec.prefill_done = Some(now);
            }
            if ev.produced_token {
                if let Some(prev) = rec.last_token {
                    let tbt = now.duration_since(prev).as_secs_f64();
                    match self.fold.as_mut() {
                        Some(fold) => fold.replicas[replica].tbt.record_sample(tbt),
                        None => self.tbt.record(tbt),
                    }
                }
                rec.last_token = Some(now);
            }
            if ev.finished {
                rec.completed = Some(now);
                self.completed += 1;
                self.last_completion = self.last_completion.max(now);
                let done = *rec;
                if self.track_tenants {
                    self.note_tenant_completion(replica, &done);
                }
                if let Some(fold) = self.fold.as_mut() {
                    fold.on_completion(replica, now, &done);
                    self.records.remove(&ev.id);
                } else if self.request_sinks.is_some() {
                    if let Some(sinks) = self.request_sinks.as_mut() {
                        record_request_latencies(sinks, &done);
                    }
                    self.records.remove(&ev.id);
                }
            }
        }
    }

    /// Streams one finished request's latencies into its tenant's sinks and
    /// judges the SLO (all quantile modes share this incremental path —
    /// per-tenant quantiles are completion-ordered in every mode; mergeable
    /// mode routes the latencies to the replica's single-writer slots).
    fn note_tenant_completion(&mut self, replica: usize, rec: &RequestRecord) {
        let Some(l) = rec.latencies() else {
            return;
        };
        let slo = self.tenant_slo;
        let is_fold = self.fold.is_some();
        let stat = self.tenant_entry(rec.tenant);
        stat.completed += 1;
        if let Some(slo) = slo {
            let ttft_ok = l.ttft.is_none_or(|t| t <= slo.ttft_secs);
            if ttft_ok && l.norm_e2e <= slo.e2e_per_token_secs {
                stat.slo_met += 1;
            }
        }
        if !is_fold {
            stat.e2e.record(l.e2e);
            if let Some(t) = l.ttft {
                stat.ttft.record(t);
            }
            return;
        }
        let fold = self.fold.as_mut().expect("fold mode checked above");
        let tf = fold.replicas[replica].tenant_entry(rec.tenant as usize);
        tf.e2e.record_sample(l.e2e);
        if let Some(t) = l.ttft {
            tf.ttft.record_sample(t);
        }
    }

    /// Records a replica's KV occupancy change.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn on_kv_sample(&mut self, replica: usize, now: SimTime, utilization: f64) {
        self.kv_series[replica].record(now, utilization);
    }

    /// Completed request count so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Folds another collector into this one (mergeable mode only): the
    /// sharded simulator gives each shard its own collector and merges the
    /// partials at drain. Under the single-writer discipline — a replica's
    /// effects go to exactly one collector — the merged state is
    /// bit-identical to a single collector observing every replica, and
    /// the merge is order-invariant.
    ///
    /// # Panics
    ///
    /// Panics unless both collectors run [`QuantileMode::Mergeable`] with
    /// the same replica count.
    pub fn merge(&mut self, mut other: MetricsCollector) {
        assert!(
            self.fold.is_some() && other.fold.is_some(),
            "MetricsCollector::merge requires QuantileMode::Mergeable on both sides"
        );
        for (id, rec) in other.records.drain_entries() {
            let prev = self.records.insert(id, rec);
            debug_assert!(prev.is_none(), "request {id} tracked by both collectors");
        }
        self.completed += other.completed;
        self.last_completion = self.last_completion.max(other.last_completion);
        self.total_batches += other.total_batches;
        self.total_tokens += other.total_tokens;
        self.total_batch_requests += other.total_batch_requests;
        self.late_count += other.late_count;
        self.track_tenants |= other.track_tenants;
        if self.tenant_slo.is_none() {
            self.tenant_slo = other.tenant_slo;
        }
        for (idx, t) in other.tenants.iter_mut().enumerate() {
            if self.tenants.len() <= idx {
                self.tenants
                    .push(TenantStat::new(std::mem::take(&mut t.name), self.mode));
            }
            let mine = &mut self.tenants[idx];
            mine.arrived += t.arrived;
            mine.completed += t.completed;
            mine.slo_met += t.slo_met;
        }
        assert_eq!(
            self.kv_series.len(),
            other.kv_series.len(),
            "collectors cover different replica counts"
        );
        for (mine, theirs) in self.kv_series.iter_mut().zip(other.kv_series.drain(..)) {
            if !theirs.is_empty() {
                assert!(
                    mine.is_empty(),
                    "replica KV series written by both collectors"
                );
                *mine = theirs;
            }
        }
        let fold = self.fold.as_mut().expect("checked above");
        let of = other.fold.take().expect("checked above");
        assert_eq!(
            fold.replicas.len(),
            of.replicas.len(),
            "collectors cover different replica counts"
        );
        for (mine, theirs) in fold.replicas.iter_mut().zip(&of.replicas) {
            mine.merge(theirs);
        }
        fold.distinct_tenants.merge(&of.distinct_tenants);
        if fold.window_secs.is_none() {
            fold.window_secs = of.window_secs;
        }
        if let Some(op) = other.prefix.take() {
            let mine = self.prefix.get_or_insert_with(PrefixStats::default);
            mine.hit_requests += op.hit_requests;
            mine.tokens_saved += op.tokens_saved;
            for (idx, &h) in op.tenant_hits.iter().enumerate() {
                if idx >= mine.tenant_hits.len() {
                    mine.tenant_hits.resize(idx + 1, 0);
                }
                mine.tenant_hits[idx] += h;
            }
            for (idx, &s) in op.tenant_saved.iter().enumerate() {
                if idx >= mine.tenant_saved.len() {
                    mine.tenant_saved.resize(idx + 1, 0);
                }
                mine.tenant_saved[idx] += s;
            }
        }
    }

    /// Builds the final report.
    ///
    /// `num_requests` is the trace size, `peak_flops_total` and
    /// `peak_bandwidth_total` are cluster-wide peaks (per-GPU × GPU count),
    /// `preemptions` comes from the replica schedulers.
    pub fn into_report(
        mut self,
        num_requests: usize,
        peak_flops_total: f64,
        peak_bandwidth_total: f64,
        preemptions: u64,
        power: PowerSpec,
    ) -> SimulationReport {
        // Mergeable mode: fold the per-replica slots (in replica-index
        // order) into one summary set before anything else reads the
        // collector-global accumulators.
        let mut fold_out = self
            .fold
            .take()
            .map(|fold| fold_report(fold, &self.kv_series, self.tenants.len()));
        if let Some(f) = &fold_out {
            self.busy_gpu_secs = f.busy_gpu_secs;
            self.flops = f.flops;
            self.bytes = f.bytes;
            self.op_secs = f.op_secs;
        }
        let tbt_summary = match &fold_out {
            Some(f) => f.tbt,
            None => self.tbt.summary(),
        };
        // Request-level summaries: folded in mergeable mode, streamed
        // incrementally in sketch mode, one exact pass over the retained
        // records otherwise.
        let (sched_delay, ttft, norm_e2e, norm_exec, e2e) = if let Some(f) = &fold_out {
            (f.sched_delay, f.ttft, f.norm_e2e, f.norm_exec, f.e2e)
        } else {
            match self.request_sinks.take() {
                Some(sinks) => (
                    DigestSummary::from_streaming(&sinks.sched_delay),
                    DigestSummary::from_streaming(&sinks.ttft),
                    DigestSummary::from_streaming(&sinks.norm_e2e),
                    DigestSummary::from_streaming(&sinks.norm_exec),
                    DigestSummary::from_streaming(&sinks.e2e),
                ),
                None => {
                    let mut sched_delay = QuantileDigest::new();
                    let mut ttft = QuantileDigest::new();
                    let mut norm_e2e = QuantileDigest::new();
                    let mut norm_exec = QuantileDigest::new();
                    let mut e2e = QuantileDigest::new();
                    for rec in self.records.values() {
                        let Some(l) = rec.latencies() else {
                            continue;
                        };
                        sched_delay.record(l.sched_delay);
                        if let Some(t) = l.ttft {
                            ttft.record(t);
                        }
                        e2e.record(l.e2e);
                        norm_e2e.record(l.norm_e2e);
                        norm_exec.record(l.norm_exec);
                    }
                    (
                        DigestSummary::from_digest(&mut sched_delay),
                        DigestSummary::from_digest(&mut ttft),
                        DigestSummary::from_digest(&mut norm_e2e),
                        DigestSummary::from_digest(&mut norm_exec),
                        DigestSummary::from_digest(&mut e2e),
                    )
                }
            }
        };
        let makespan = self.last_completion.as_secs_f64();
        let kv_utilization = {
            let vals: Vec<f64> = self
                .kv_series
                .iter()
                .filter_map(|s| s.time_weighted_mean(self.last_completion))
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let denom_time = makespan.max(f64::MIN_POSITIVE);
        // Energy: busy GPU-time at TDP, the rest of the cluster idling.
        let total_gpu_secs = makespan * power.total_gpus as f64;
        let busy = self.busy_gpu_secs.min(total_gpu_secs);
        let idle = total_gpu_secs - busy;
        let energy_joules = busy * power.tdp_watts + idle * power.idle_watts;
        let energy_kwh = energy_joules / 3.6e6;
        let mut operator_time_breakdown: Vec<(String, f64)> = Operator::ALL
            .iter()
            .zip(self.op_secs.iter())
            .filter(|(_, &secs)| secs > 0.0)
            .map(|(op, &secs)| (op.id().to_string(), secs))
            .collect();
        operator_time_breakdown.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN op times"));
        let tenant_slo = self.tenant_slo;
        let tenant_routing = &self.tenant_routing;
        let fleet = self.fleet.take().unwrap_or_default();
        let prefix = self.prefix.take().unwrap_or_default();
        let fold_tenants = fold_out.as_ref().map(|f| &f.tenant_summaries);
        let per_tenant = self
            .tenants
            .iter_mut()
            .enumerate()
            .map(|(idx, t)| {
                let routing = tenant_routing.get(idx).copied().unwrap_or_default();
                let (ttft_summary, e2e_summary) = match fold_tenants {
                    Some(ts) => ts.get(idx).copied().unwrap_or_default(),
                    None => (t.ttft.summary(), t.e2e.summary()),
                };
                TenantReport {
                    tenant: std::mem::take(&mut t.name),
                    arrived: t.arrived,
                    completed: t.completed,
                    ttft: ttft_summary,
                    e2e: e2e_summary,
                    slo_attainment: tenant_slo.map(|_| {
                        if t.completed > 0 {
                            t.slo_met as f64 / t.completed as f64
                        } else {
                            0.0
                        }
                    }),
                    routed: routing.routed,
                    deferred: routing.deferred,
                    quota_denied: routing.quota_denied,
                    fair_share_attainment: routing.fair_share_attainment,
                    retries: fleet.tenant_retries.get(idx).copied().unwrap_or(0),
                    requeued: fleet.tenant_requeued.get(idx).copied().unwrap_or(0),
                    evicted_by_crash: fleet.tenant_evicted.get(idx).copied().unwrap_or(0),
                    prefix_hits: prefix.tenant_hits.get(idx).copied().unwrap_or(0),
                    prefix_tokens_saved: prefix.tenant_saved.get(idx).copied().unwrap_or(0),
                }
            })
            .collect();
        SimulationReport {
            num_requests,
            completed: self.completed,
            makespan_secs: makespan,
            throughput_qps: self.completed as f64 / denom_time,
            scheduling_delay: sched_delay,
            ttft,
            tbt: tbt_summary,
            normalized_e2e: norm_e2e,
            normalized_exec: norm_exec,
            e2e,
            mfu: (self.flops / (denom_time * peak_flops_total)).min(1.0),
            mbu: (self.bytes / (denom_time * peak_bandwidth_total)).min(1.0),
            kv_utilization,
            preemptions,
            total_batches: self.total_batches,
            total_tokens: self.total_tokens,
            mean_batch_tokens: self.total_tokens as f64 / self.total_batches.max(1) as f64,
            mean_batch_size: self.total_batch_requests as f64 / self.total_batches.max(1) as f64,
            energy_kwh,
            mean_power_watts: energy_joules / denom_time,
            energy_wh_per_request: if self.completed > 0 {
                energy_joules / 3.6e3 / self.completed as f64
            } else {
                0.0
            },
            operator_time_breakdown,
            per_tenant,
            timeseries: fold_out
                .as_mut()
                .map(|f| std::mem::take(&mut f.timeseries))
                .unwrap_or_default(),
            distinct_tenants_est: fold_out.as_ref().map(|f| f.distinct_tenants),
            retries: fleet.retries,
            requeued: fleet.requeued,
            evicted_by_crash: fleet.evicted_by_crash,
            replica_hours: fleet.replica_hours,
            replica_availability: fleet.replica_availability,
            prefix_hits: prefix.hit_requests,
            prefix_tokens_saved: prefix.tokens_saved,
            prefix_hit_rate: if prefix.hit_requests > 0 && self.completed > 0 {
                prefix.hit_requests as f64 / self.completed as f64
            } else {
                0.0
            },
        }
    }
}

/// The folded (replica-index-order) summary set a mergeable collector
/// reduces to at report time.
struct FoldOutput {
    sched_delay: DigestSummary,
    ttft: DigestSummary,
    norm_e2e: DigestSummary,
    norm_exec: DigestSummary,
    e2e: DigestSummary,
    tbt: DigestSummary,
    busy_gpu_secs: f64,
    flops: f64,
    bytes: f64,
    op_secs: [f64; Operator::ALL.len()],
    /// `(ttft, e2e)` summaries, tenant-id-indexed.
    tenant_summaries: Vec<(DigestSummary, DigestSummary)>,
    timeseries: Vec<TimeseriesRow>,
    distinct_tenants: f64,
}

/// Reduces the per-replica fold slots to one summary set. Every reduction
/// runs in replica-index order, so the output is identical for any shard
/// count: each slot's bits only depend on its own replica's event stream.
fn fold_report(
    fold: MergeableState,
    kv_series: &[TimeWeightedSeries],
    num_tenants: usize,
) -> FoldOutput {
    let mut total = ReplicaFold::new();
    for r in &fold.replicas {
        total.merge(r);
    }
    let tenant_summaries = (0..num_tenants.max(total.tenants.len()))
        .map(|idx| match total.tenants.get_mut(idx) {
            Some(tf) => (tf.ttft.summarize(), tf.e2e.summarize()),
            None => Default::default(),
        })
        .collect();
    let mut timeseries = Vec::new();
    if let Some(w) = fold.window_secs {
        for (i, win) in total.windows.iter_mut().enumerate() {
            let start = i as f64 * w;
            let start_t = SimTime::from_secs_f64(start);
            let end_t = SimTime::from_secs_f64(start + w);
            let kv: Vec<f64> = kv_series
                .iter()
                .filter_map(|s| s.window_mean(start_t, end_t))
                .collect();
            win.ttft.seal();
            timeseries.push(TimeseriesRow {
                window_start_secs: start,
                completed: win.completed,
                throughput_qps: win.completed as f64 / w,
                ttft_p99: win.ttft.quantile(0.99).unwrap_or(0.0),
                kv_occupancy: if kv.is_empty() {
                    0.0
                } else {
                    kv.iter().sum::<f64>() / kv.len() as f64
                },
            });
        }
    }
    FoldOutput {
        sched_delay: total.sched_delay.summarize(),
        ttft: total.ttft.summarize(),
        norm_e2e: total.norm_e2e.summarize(),
        norm_exec: total.norm_exec.summarize(),
        e2e: total.e2e.summarize(),
        tbt: total.tbt.summarize(),
        busy_gpu_secs: total.busy_gpu_secs,
        flops: total.flops,
        bytes: total.bytes,
        op_secs: total.op_secs,
        tenant_summaries,
        timeseries,
        distinct_tenants: fold.distinct_tenants.estimate(),
    }
}

/// Streams one completed request's latency metrics into the bounded sinks
/// (sketch mode's incremental replacement for the exact end-of-run pass —
/// both consume the same [`RequestRecord::latencies`] derivation).
fn record_request_latencies(sinks: &mut RequestSinks, rec: &RequestRecord) {
    let Some(l) = rec.latencies() else {
        return;
    };
    sinks.sched_delay.record(l.sched_delay);
    if let Some(t) = l.ttft {
        sinks.ttft.record(t);
    }
    sinks.e2e.record(l.e2e);
    sinks.norm_e2e.record(l.norm_e2e);
    sinks.norm_exec.record(l.norm_exec);
}

/// Cluster power characteristics for energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Per-GPU power at full load, watts.
    pub tdp_watts: f64,
    /// Per-GPU idle power, watts.
    pub idle_watts: f64,
    /// GPUs in the cluster.
    pub total_gpus: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_model::batch::RequestSlice;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn test_power() -> PowerSpec {
        PowerSpec {
            tdp_watts: 400.0,
            idle_watts: 60.0,
            total_gpus: 1,
        }
    }

    #[test]
    fn digest_summary_orders() {
        let mut d: QuantileDigest = (1..=100).map(|i| i as f64).collect();
        let s = DigestSummary::from_digest(&mut d);
        assert!(s.p50 < s.p90 && s.p90 < s.p95 && s.p95 < s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_digest_summary_is_zero() {
        let s = DigestSummary::from_digest(&mut QuantileDigest::new());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn full_request_lifecycle_metrics() {
        let mut m = MetricsCollector::new(1);
        m.on_arrival(1, t(0.0), 3, 0);
        let prefill = BatchComposition::new(vec![RequestSlice::prefill(1, 100, 0)]);
        m.on_batch_scheduled(0, t(1.0), &prefill, 1e12, 1e9);
        m.on_batch_complete(
            0,
            t(2.0),
            &[CompletionEvent {
                id: 1,
                prefill_completed: true,
                produced_token: true,
                finished: false,
            }],
        );
        // Two decode iterations at 2.5 and 3.0.
        for (at, fin) in [(2.5, false), (3.0, true)] {
            let d = BatchComposition::new(vec![RequestSlice::decode(1, 101)]);
            m.on_batch_scheduled(0, t(at - 0.5), &d, 1e11, 1e9);
            m.on_batch_complete(
                0,
                t(at),
                &[CompletionEvent {
                    id: 1,
                    prefill_completed: false,
                    produced_token: true,
                    finished: fin,
                }],
            );
        }
        let r = m.into_report(1, 1e15, 1e13, 0, test_power());
        assert_eq!(r.completed, 1);
        assert!((r.scheduling_delay.p50 - 1.0).abs() < 1e-9);
        assert!((r.ttft.p50 - 2.0).abs() < 1e-9);
        // TBT: 0.5 (2.0→2.5) and 0.5 (2.5→3.0).
        assert!((r.tbt.p50 - 0.5).abs() < 1e-9);
        assert!((r.e2e.p50 - 3.0).abs() < 1e-9);
        assert!((r.normalized_e2e.p50 - 1.0).abs() < 1e-9);
        // Exec = 3.0 - 1.0 = 2.0 over 3 tokens.
        assert!((r.normalized_exec.p50 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.total_batches, 3);
        assert_eq!(r.total_tokens, 102);
        assert!(r.mfu > 0.0 && r.mfu < 1.0);
    }

    #[test]
    fn incomplete_requests_excluded() {
        let mut m = MetricsCollector::new(1);
        m.on_arrival(1, t(0.0), 5, 0);
        m.on_arrival(2, t(0.0), 5, 0);
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 10, 0)]);
        m.on_batch_scheduled(0, t(0.1), &b, 0.0, 0.0);
        m.on_batch_complete(
            0,
            t(0.2),
            &[CompletionEvent {
                id: 1,
                prefill_completed: true,
                produced_token: true,
                finished: false,
            }],
        );
        let r = m.into_report(2, 1e15, 1e13, 0, test_power());
        assert_eq!(r.completed, 0);
        assert_eq!(r.num_requests, 2);
        assert_eq!(r.e2e.mean, 0.0);
    }

    #[test]
    fn late_count_is_first_schedule_only_and_order_independent() {
        // Lateness is judged once, at the ORIGINAL first schedule; a
        // preemption-restarted prefill chunk (same slice shape: prefill with
        // cached_tokens == 0) must not re-judge it, however late it runs.
        let mut m = MetricsCollector::new(1);
        m.set_late_limit(1.0);
        m.on_arrival(1, t(0.0), 5, 0);
        m.on_arrival(2, t(0.0), 5, 0);
        // Request 1 first-scheduled on time, request 2 late — slice order
        // within the batch must not matter, so put the late one first.
        let b = BatchComposition::new(vec![
            RequestSlice::prefill(2, 10, 0),
            RequestSlice::prefill(1, 10, 0),
        ]);
        m.on_batch_scheduled(0, t(0.5), &b, 0.0, 0.0);
        assert_eq!(m.late_count(), 0);
        let late = BatchComposition::new(vec![RequestSlice::prefill(3, 10, 0)]);
        m.on_arrival(3, t(0.0), 5, 0);
        m.on_batch_scheduled(0, t(5.0), &late, 0.0, 0.0);
        assert_eq!(m.late_count(), 1, "request 3 was first-scheduled late");
        // Restart chunks of requests 1 and 3 re-enter arbitrarily late:
        // neither may bump the counter (1 was on time; 3 already counted).
        let restart = BatchComposition::new(vec![
            RequestSlice::prefill(1, 10, 0),
            RequestSlice::prefill(3, 10, 0),
        ]);
        m.on_batch_scheduled(0, t(100.0), &restart, 0.0, 0.0);
        assert_eq!(m.late_count(), 1, "restarts must not re-judge lateness");
        // Decode and continuation slices never mark at all.
        let cont = BatchComposition::new(vec![
            RequestSlice::prefill(2, 10, 10),
            RequestSlice::decode(1, 20),
        ]);
        m.on_batch_scheduled(0, t(200.0), &cont, 0.0, 0.0);
        assert_eq!(m.late_count(), 1);
    }

    #[test]
    fn sketch_mode_retires_records_incrementally() {
        use vidur_core::metrics::QuantileMode;
        let mut m = MetricsCollector::with_mode(1, QuantileMode::Sketch);
        m.on_arrival(1, t(0.0), 1, 0);
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 10, 0)]);
        m.on_batch_scheduled(0, t(1.0), &b, 0.0, 0.0);
        m.on_batch_complete(
            0,
            t(2.0),
            &[CompletionEvent {
                id: 1,
                prefill_completed: true,
                produced_token: true,
                finished: true,
            }],
        );
        let r = m.into_report(1, 1e15, 1e13, 0, test_power());
        assert_eq!(r.completed, 1);
        assert!((r.scheduling_delay.p50 - 1.0).abs() < 1e-9);
        assert!((r.ttft.p50 - 2.0).abs() < 1e-9);
        assert!((r.e2e.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kv_utilization_averages_replicas() {
        let mut m = MetricsCollector::new(2);
        m.on_kv_sample(0, t(0.0), 0.2);
        m.on_kv_sample(1, t(0.0), 0.6);
        m.on_arrival(1, t(0.0), 1, 0);
        let b = BatchComposition::new(vec![RequestSlice::prefill(1, 10, 0)]);
        m.on_batch_scheduled(0, t(0.0), &b, 0.0, 0.0);
        m.on_batch_complete(
            0,
            t(1.0),
            &[CompletionEvent {
                id: 1,
                prefill_completed: true,
                produced_token: true,
                finished: true,
            }],
        );
        let r = m.into_report(1, 1e15, 1e13, 3, test_power());
        assert!((r.kv_utilization - 0.4).abs() < 1e-9);
        assert_eq!(r.preemptions, 3);
    }

    /// Drives one finished request for `tenant` through a tenant-armed
    /// collector: scheduled at 1s, prefill done at `ttft`, finished at
    /// `e2e` (3 output tokens).
    fn drive_tenant_request(m: &mut MetricsCollector, id: u64, tenant: u32, ttft: f64, e2e: f64) {
        m.on_arrival(id, t(0.0), 3, tenant);
        let b = BatchComposition::new(vec![RequestSlice::prefill(id, 10, 0)]);
        m.on_batch_scheduled(0, t(1.0), &b, 0.0, 0.0);
        m.on_batch_complete(
            0,
            t(ttft),
            &[CompletionEvent {
                id,
                prefill_completed: true,
                produced_token: true,
                finished: false,
            }],
        );
        m.on_batch_complete(
            0,
            t(e2e),
            &[CompletionEvent {
                id,
                prefill_completed: false,
                produced_token: true,
                finished: true,
            }],
        );
    }

    #[test]
    fn per_tenant_breakdown_and_slo() {
        for mode in [
            QuantileMode::Exact,
            QuantileMode::Sketch,
            QuantileMode::Mergeable,
        ] {
            let mut m = MetricsCollector::with_mode(1, mode);
            m.set_tenants(
                &["gold".to_string(), "bulk".to_string()],
                Some(TenantSlo {
                    ttft_secs: 3.0,
                    e2e_per_token_secs: 2.0,
                }),
            );
            // gold: two requests, one blows the TTFT SLO.
            drive_tenant_request(&mut m, 1, 0, 2.0, 4.0);
            drive_tenant_request(&mut m, 2, 0, 5.0, 7.0);
            // bulk: one request within SLO; a second never completes.
            drive_tenant_request(&mut m, 3, 1, 2.5, 5.5);
            m.on_arrival(4, t(0.0), 3, 1);
            let r = m.into_report(4, 1e15, 1e13, 0, test_power());
            assert_eq!(r.per_tenant.len(), 2, "{mode:?}");
            let gold = &r.per_tenant[0];
            assert_eq!(gold.tenant, "gold");
            assert_eq!((gold.arrived, gold.completed), (2, 2));
            assert!((gold.ttft.max - 5.0).abs() < 1e-9);
            assert!((gold.e2e.mean - 5.5).abs() < 1e-9);
            assert_eq!(gold.slo_attainment, Some(0.5));
            let bulk = &r.per_tenant[1];
            assert_eq!((bulk.arrived, bulk.completed), (2, 1));
            assert_eq!(bulk.slo_attainment, Some(1.0));
        }
    }

    #[test]
    fn undeclared_tenant_ids_grow_the_table() {
        let mut m = MetricsCollector::new(1);
        m.set_tenants(&["only".to_string()], None);
        drive_tenant_request(&mut m, 1, 2, 2.0, 4.0);
        let r = m.into_report(1, 1e15, 1e13, 0, test_power());
        assert_eq!(r.per_tenant.len(), 3);
        assert_eq!(r.per_tenant[1].tenant, "tenant-1");
        assert_eq!(r.per_tenant[2].tenant, "tenant-2");
        assert_eq!(r.per_tenant[2].completed, 1);
        assert_eq!(r.per_tenant[2].slo_attainment, None);
    }

    #[test]
    fn unarmed_collector_reports_no_tenants() {
        let mut m = MetricsCollector::new(1);
        drive_tenant_request(&mut m, 1, 0, 2.0, 4.0);
        let r = m.into_report(1, 1e15, 1e13, 0, test_power());
        assert!(r.per_tenant.is_empty());
    }

    /// Drives one finished request through the given replica of a
    /// mergeable-mode collector: arrives at `base`, scheduled +1s, prefill
    /// done +2s, finished +3s (3 output tokens, two decode iterations).
    fn drive_replica_request(m: &mut MetricsCollector, id: u64, replica: usize, base: f64) {
        m.on_arrival(id, t(base), 3, 0);
        let b = BatchComposition::new(vec![RequestSlice::prefill(id, 10, 0)]);
        m.on_batch_scheduled(replica, t(base + 1.0), &b, 1e12, 1e9);
        m.on_gpu_busy(replica, 0.5);
        m.on_batch_complete(
            replica,
            t(base + 2.0),
            &[CompletionEvent {
                id,
                prefill_completed: true,
                produced_token: true,
                finished: false,
            }],
        );
        m.on_batch_complete(
            replica,
            t(base + 3.0),
            &[CompletionEvent {
                id,
                prefill_completed: false,
                produced_token: true,
                finished: true,
            }],
        );
        m.on_kv_sample(replica, t(base + 3.0), 0.5);
    }

    /// The headline mergeable contract at the collector level: driving N
    /// replicas through one collector is byte-identical to driving each
    /// replica through its own collector and merging — in any merge order.
    #[test]
    fn merged_collectors_match_single_collector_bit_for_bit() {
        let replicas = 3usize;
        let drive_all = |m: &mut MetricsCollector, only: Option<usize>| {
            for id in 0..30u64 {
                let r = (id % replicas as u64) as usize;
                if only.is_none_or(|o| o == r) {
                    drive_replica_request(m, id, r, id as f64 * 0.25);
                }
            }
        };
        let mut single = MetricsCollector::with_mode(replicas, QuantileMode::Mergeable);
        single.set_timeseries(TimeseriesConfig { window_secs: 2.0 });
        drive_all(&mut single, None);
        let expect = single.into_report(30, 1e15, 1e13, 0, test_power());
        assert!(!expect.timeseries.is_empty());
        assert!(expect.distinct_tenants_est.is_some());

        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut parts: Vec<MetricsCollector> = (0..replicas)
                .map(|r| {
                    let mut m = MetricsCollector::with_mode(replicas, QuantileMode::Mergeable);
                    m.set_timeseries(TimeseriesConfig { window_secs: 2.0 });
                    drive_all(&mut m, Some(r));
                    m
                })
                .collect();
            let mut merged = MetricsCollector::with_mode(replicas, QuantileMode::Mergeable);
            merged.set_timeseries(TimeseriesConfig { window_secs: 2.0 });
            for r in order {
                merged.merge(std::mem::replace(
                    &mut parts[r],
                    MetricsCollector::with_mode(replicas, QuantileMode::Mergeable),
                ));
            }
            let got = merged.into_report(30, 1e15, 1e13, 0, test_power());
            assert_eq!(got, expect, "merge order {order:?}");
        }
    }

    #[test]
    fn mergeable_mode_retires_records_and_reports_timeseries() {
        let mut m = MetricsCollector::with_mode(2, QuantileMode::Mergeable);
        m.set_timeseries(TimeseriesConfig { window_secs: 1.0 });
        drive_replica_request(&mut m, 0, 0, 0.0);
        drive_replica_request(&mut m, 1, 1, 0.5);
        let r = m.into_report(2, 1e15, 1e13, 0, test_power());
        assert_eq!(r.completed, 2);
        // Completions at 3.0 and 3.5 → windows [3,4) holds both.
        assert_eq!(r.timeseries.len(), 4);
        assert_eq!(r.timeseries[3].completed, 2);
        assert!((r.timeseries[3].throughput_qps - 2.0).abs() < 1e-9);
        assert!(r.timeseries[3].ttft_p99 > 0.0);
        assert_eq!(r.timeseries[0].completed, 0);
        // Latency means use the exact sums: both requests share the shape.
        assert!((r.ttft.mean - 2.0).abs() < 1e-9);
        assert!((r.e2e.mean - 3.0).abs() < 1e-9);
        assert!((r.scheduling_delay.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires QuantileMode::Mergeable")]
    fn merging_exact_collectors_panics() {
        let mut a = MetricsCollector::new(1);
        let b = MetricsCollector::new(1);
        a.merge(b);
    }
}
