//! The memoized stage-time pipeline: runtime source → execution plan →
//! per-stage prediction, with a batch-shape cache in the middle.
//!
//! Batch compositions recur massively in serving simulations — decode-heavy
//! iterations differ only in request ids, and a capacity bisection replays
//! the same trace at many load levels — so [`StageTimer`] memoizes the
//! expensive middle of the prediction path (plan construction plus
//! per-operator predictor invocation) under a canonical
//! [`BatchShapeKey`]. The stochastic CPU-overhead jitter of the oracle
//! source is applied by the engine *after* cache lookup, and per-operator
//! metrics attribution is replayed from the cached [`PlanTiming`] stream,
//! so a simulation's [`SimulationReport`](crate::metrics::SimulationReport)
//! is byte-identical with the cache on or off.
//!
//! Cloning a `StageTimer` shares its cache: the capacity search clones one
//! timer into every bisection probe of a configuration so later probes
//! reuse the shapes earlier probes (and the offline bounding run) already
//! priced.

use crate::config::ClusterConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vidur_estimator::RuntimeEstimator;
use vidur_hardware::KernelOracle;
use vidur_model::batch::BatchComposition;
use vidur_model::runtime::RuntimePredictor;
use vidur_model::shape::{BatchShapeKey, PlanTiming};
use vidur_model::{ModelSpec, ParallelismConfig};

/// Cap on memoized shapes. Long simulations of high-entropy workloads could
/// otherwise grow the table without bound; once full, new shapes are priced
/// directly (still correct, just uncached).
pub const MAX_CACHED_SHAPES: usize = 1 << 20;

/// Where batch runtimes come from.
///
/// `Oracle` is this repo's stand-in for the real testbed: ground-truth
/// analytical kernel times **plus stochastic CPU-overhead jitter** (real
/// serving systems exhibit framework hiccups; the paper attributes the 7B
/// model's elevated error to exactly this). `Estimator` is Vidur proper:
/// trained runtime models and a constant nominal CPU overhead.
#[derive(Debug, Clone)]
pub enum RuntimeSource {
    /// Ground truth with jittered CPU overhead (the paper's "Real").
    Oracle(KernelOracle),
    /// Trained estimator with nominal CPU overhead (the paper's
    /// "Predicted").
    Estimator(RuntimeEstimator),
}

impl RuntimeSource {
    pub(crate) fn op_source(&self) -> &dyn RuntimePredictor {
        match self {
            RuntimeSource::Oracle(o) => o,
            RuntimeSource::Estimator(e) => e,
        }
    }

    pub(crate) fn jitters(&self) -> bool {
        matches!(self, RuntimeSource::Oracle(_))
    }
}

/// Hit/miss counters of a shape cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to price the shape.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type ShapeMap = HashMap<BatchShapeKey, Arc<PlanTiming>>;

/// Prices batches for one (model, parallelism, runtime source) context,
/// memoizing per-stage times by batch shape.
///
/// Timings are always computed from the batch's [`BatchShapeKey`] — the
/// execution plan is a function of the shape alone, so the cached value is
/// independent of request ids and slice ordering, and cache-on and
/// cache-off runs are bit-identical.
#[derive(Clone)]
pub struct StageTimer {
    model: ModelSpec,
    parallelism: ParallelismConfig,
    async_pipeline_comm: bool,
    source: RuntimeSource,
    /// `None` disables memoization (every batch priced directly).
    cache: Option<Arc<Mutex<ShapeMap>>>,
    /// Hit/miss counters, shared by plain clones but *detachable* from the
    /// shape map via [`StageTimer::with_fresh_stats`], so a caller holding
    /// a globally shared map still gets exact counters for its own runs.
    stats: Arc<Mutex<CacheStats>>,
}

impl fmt::Debug for StageTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("StageTimer")
            .field("model", &self.model.name)
            .field("cached", &self.cache.is_some())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl StageTimer {
    /// Builds a timer; `cached` toggles shape memoization.
    pub fn new(
        model: ModelSpec,
        parallelism: ParallelismConfig,
        async_pipeline_comm: bool,
        source: RuntimeSource,
        cached: bool,
    ) -> Self {
        StageTimer {
            model,
            parallelism,
            async_pipeline_comm,
            source,
            cache: cached.then(|| Arc::new(Mutex::new(ShapeMap::default()))),
            stats: Arc::new(Mutex::new(CacheStats::default())),
        }
    }

    /// A handle onto the same shape map with *fresh* hit/miss counters.
    ///
    /// Plain `clone()`s share both; `onboard_timer` hands each caller a
    /// fresh-stats handle so per-configuration ledger counts stay exact
    /// even when rayon workers share one process-wide map concurrently.
    pub fn with_fresh_stats(&self) -> StageTimer {
        StageTimer {
            stats: Arc::new(Mutex::new(CacheStats::default())),
            ..self.clone()
        }
    }

    /// Builds the timer for a cluster configuration (the usual entry point;
    /// respects [`ClusterConfig::plan_cache`]).
    pub fn for_config(config: &ClusterConfig, source: RuntimeSource) -> Self {
        StageTimer::new(
            config.model.clone(),
            config.parallelism,
            config.async_pipeline_comm,
            source,
            config.plan_cache,
        )
    }

    /// Prices one batch: cache hit replays the stored timing, miss builds
    /// the plan from the shape and sweeps the predictor over it.
    ///
    /// CPU-overhead jitter is *not* included — the engine adds it after the
    /// lookup so the oracle's stochastic overhead stays bit-exact regardless
    /// of cache state.
    pub fn time_batch(&self, batch: &BatchComposition) -> Arc<PlanTiming> {
        let key = BatchShapeKey::from_batch(batch);
        let Some(cache) = &self.cache else {
            return Arc::new(self.price(&key));
        };
        if let Some(hit) = cache.lock().get(&key).map(Arc::clone) {
            self.stats.lock().hits += 1;
            return hit;
        }
        self.stats.lock().misses += 1;
        // Price outside the lock: concurrent misses on the same shape do
        // duplicate (deterministic) work instead of serializing every probe.
        let timing = Arc::new(self.price(&key));
        let mut guard = cache.lock();
        if guard.len() < MAX_CACHED_SHAPES {
            Arc::clone(guard.entry(key).or_insert_with(|| Arc::clone(&timing)))
        } else {
            timing
        }
    }

    /// Uncached pricing straight from the shape (plan build + predictor
    /// sweep). Both cache states run exactly this computation, so a hit
    /// replays bit-identical values.
    fn price(&self, key: &BatchShapeKey) -> PlanTiming {
        PlanTiming::for_shape(
            &self.model,
            &self.parallelism,
            key,
            self.source.op_source(),
            self.async_pipeline_comm,
        )
    }

    /// Whether the underlying source adds stochastic CPU-overhead jitter.
    pub fn jitters(&self) -> bool {
        self.source.jitters()
    }

    /// The runtime source backing this timer.
    pub fn source(&self) -> &RuntimeSource {
        &self.source
    }

    /// This handle-family's hit/miss counters (zeros when memoization is
    /// disabled; see [`StageTimer::with_fresh_stats`] for the sharing
    /// granularity).
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Distinct shapes currently memoized.
    pub fn cached_shapes(&self) -> usize {
        self.cache.as_ref().map(|c| c.lock().len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onboarding::onboard;
    use proptest::prelude::*;
    use vidur_estimator::EstimatorKind;
    use vidur_hardware::GpuSku;
    use vidur_model::RequestSlice;

    fn oracle() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    fn estimator(model: &ModelSpec, par: &ParallelismConfig) -> RuntimeSource {
        let est = onboard(model, par, &GpuSku::a100_80g(), EstimatorKind::default());
        RuntimeSource::Estimator((*est).clone())
    }

    fn timer_pair(par: ParallelismConfig, source: RuntimeSource) -> (StageTimer, StageTimer) {
        let model = ModelSpec::llama2_7b();
        let cached = StageTimer::new(model.clone(), par, false, source.clone(), true);
        let uncached = StageTimer::new(model, par, false, source, false);
        (cached, uncached)
    }

    #[test]
    fn cache_hits_replay_identical_timing() {
        let (cached, _) = timer_pair(ParallelismConfig::serial(), oracle());
        let a = BatchComposition::new(vec![
            RequestSlice::prefill(1, 512, 0),
            RequestSlice::decode(2, 300),
        ]);
        // Same shape, different ids and slice order.
        let b = BatchComposition::new(vec![
            RequestSlice::decode(7, 300),
            RequestSlice::prefill(8, 512, 0),
        ]);
        let ta = cached.time_batch(&a);
        let tb = cached.time_batch(&b);
        assert!(Arc::ptr_eq(&ta, &tb), "same shape must share one timing");
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cached.cached_shapes(), 1);
    }

    #[test]
    fn uncached_timer_reports_no_stats() {
        let (_, uncached) = timer_pair(ParallelismConfig::serial(), oracle());
        let b = BatchComposition::new(vec![RequestSlice::decode(1, 64)]);
        uncached.time_batch(&b);
        assert_eq!(uncached.stats(), CacheStats::default());
        assert_eq!(uncached.cached_shapes(), 0);
    }

    #[test]
    fn clones_share_the_cache() {
        let (cached, _) = timer_pair(ParallelismConfig::serial(), oracle());
        let clone = cached.clone();
        let b = BatchComposition::new(vec![RequestSlice::decode(1, 64)]);
        cached.time_batch(&b);
        clone.time_batch(&b);
        assert_eq!(clone.stats(), CacheStats { hits: 1, misses: 1 });
    }

    proptest! {
        /// Cached and uncached stage times agree to 1e-12 across randomized
        /// batch compositions, TP/PP configurations, and both runtime
        /// sources — including the hit path (each batch priced twice).
        #[test]
        fn cached_matches_uncached(
            prefills in proptest::collection::vec((1u64..768, 0u64..768), 0..5),
            decodes in proptest::collection::vec(0u64..4096, 0..24),
            par_idx in 0usize..4,
            use_estimator in proptest::bool::ANY,
        ) {
            prop_assume!(!prefills.is_empty() || !decodes.is_empty());
            let par = [
                ParallelismConfig::new(1, 1),
                ParallelismConfig::new(2, 1),
                ParallelismConfig::new(1, 2),
                ParallelismConfig::new(2, 4),
            ][par_idx];
            let model = ModelSpec::llama2_7b();
            let source = if use_estimator {
                estimator(&model, &par)
            } else {
                oracle()
            };
            let (cached, uncached) = timer_pair(par, source);
            let mut slices = Vec::new();
            for (i, (p, h)) in prefills.iter().enumerate() {
                slices.push(RequestSlice::prefill(i as u64, *p, *h));
            }
            for (i, h) in decodes.iter().enumerate() {
                slices.push(RequestSlice::decode(1000 + i as u64, *h));
            }
            let batch = BatchComposition::new(slices);
            let direct = uncached.time_batch(&batch);
            for pass in 0..2 {
                let memo = cached.time_batch(&batch);
                prop_assert_eq!(memo.stage_secs().len(), direct.stage_secs().len());
                for (a, b) in memo.stage_secs().iter().zip(direct.stage_secs()) {
                    prop_assert!((a - b).abs() < 1e-12, "pass {}: {} vs {}", pass, a, b);
                }
                prop_assert!((memo.model_flops() - direct.model_flops()).abs()
                    <= 1e-12 * direct.model_flops());
                for (a, b) in memo.op_secs().iter().zip(direct.op_secs()) {
                    prop_assert!((a - b).abs() < 1e-12, "op secs {} vs {}", a, b);
                }
            }
            prop_assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
        }
    }
}
