//! The shared event-driven batch-execution engine.
//!
//! [`ClusterSimulator`](crate::cluster::ClusterSimulator) and
//! [`DisaggSimulator`](crate::disagg::DisaggSimulator) are the same machine
//! wearing different routing policies: requests arrive, replicas greedily
//! form batches whenever pipeline stage 0 is free, per-stage execution times
//! come from a [`RuntimeSource`] through the memoized
//! [`StageTimer`] pipeline, and completions retire requests and wake
//! the replica. This module hoists that machinery — replica wake-up
//! deduplication, batch formation and timing, CPU-overhead jitter, in-flight
//! batch tracking, metrics flushes, and the report assembly — so each
//! concrete simulator implements only its policy delta (global routing,
//! pool topology, KV handoff) on top of [`vidur_core::event::Simulation`]
//! and is driven through [`vidur_core::event::run`].
//!
//! Future backends (pipeline variants, hybrid pools) should build on
//! [`BatchEngine`] the same way: own the engine plus a set of
//! [`EngineReplica`]s, translate engine callbacks into their own event type,
//! and keep policy state next to it.

use crate::config::{ClusterConfig, LateAbort};
use crate::metrics::{MetricsCollector, PowerSpec, SimulationReport};
use crate::timing::StageTimer;
use std::fmt;
use std::sync::Arc;
use vidur_core::event::{self, EventPush, EventQueue, Simulation};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};
use vidur_hardware::GpuSku;
use vidur_model::batch::BatchComposition;
use vidur_model::memory::MemoryPlan;
use vidur_model::shape::PlanTiming;
use vidur_scheduler::replica::CompletionEvent;
use vidur_scheduler::{PipelineTracker, ReplicaScheduler};

pub use crate::timing::RuntimeSource;

/// Event budget for one simulation run. Generous: batching means a few
/// events per iteration, so real runs finish far below this.
pub const MAX_EVENTS: u64 = 200_000_000;

/// Generation-tagged slot map for in-flight batches (a ROADMAP hot-path
/// item: the seed's `HashMap<u64, BatchComposition>` hashed and probed on
/// every launch/retire). Batch ids pack `(generation << 32) | slot`; slots
/// recycle through a free list, so the steady state is two Vec index
/// operations and zero hashing, while stale ids from a simulator bug still
/// miss (the generation check) instead of aliasing a live batch.
#[derive(Debug, Default, Clone)]
struct InflightSlots {
    slots: Vec<Option<BatchComposition>>,
    generations: Vec<u32>,
    free: Vec<u32>,
    len: usize,
}

impl InflightSlots {
    fn len(&self) -> usize {
        self.len
    }

    /// Stores `batch`, returning its id.
    fn insert(&mut self, batch: BatchComposition) -> u64 {
        self.len += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(batch);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(batch));
                self.generations.push(0);
                slot
            }
        };
        (self.generations[slot as usize] as u64) << 32 | slot as u64
    }

    /// Whether `id` maps to a live in-flight batch.
    fn contains(&self, id: u64) -> bool {
        let slot = (id & u32::MAX as u64) as usize;
        let generation = (id >> 32) as u32;
        self.generations.get(slot).copied() == Some(generation) && self.slots[slot].is_some()
    }

    /// Removes and returns the batch behind `id`; `None` for ids that are
    /// stale (generation mismatch) or never existed.
    fn remove(&mut self, id: u64) -> Option<BatchComposition> {
        let slot = (id & u32::MAX as u64) as usize;
        let generation = (id >> 32) as u32;
        if self.generations.get(slot).copied() != Some(generation) {
            return None;
        }
        let batch = self.slots[slot].take()?;
        self.generations[slot] = generation.wrapping_add(1);
        self.free.push(slot as u32);
        self.len -= 1;
        Some(batch)
    }
}

/// One replica's scheduling state: its batch scheduler, pipeline-stage
/// tracker, the earliest pending wake-up (dedupes `Wakeup` events), and the
/// completion times of its in-flight batches (coalesces wake-ups that a
/// completion handler would cover anyway).
#[derive(Debug, Clone)]
pub struct EngineReplica {
    /// Batch formation and KV block accounting.
    pub scheduler: ReplicaScheduler,
    /// Pipeline-stage occupancy (resolves stage contention and bubbles).
    pub pipeline: PipelineTracker,
    wakeup_at: Option<SimTime>,
    /// `(completion time, batch id)` of in-flight batches in launch order
    /// (monotone: the synchronous pipeline retires batches FIFO). The batch
    /// id rides along so a crash can cancel exactly this replica's in-flight
    /// work — see [`EngineCore::cancel_inflight`].
    pending_completions: std::collections::VecDeque<(SimTime, u64)>,
}

impl EngineReplica {
    /// Builds one replica for `config` with the KV capacity from `plan`.
    pub fn new(config: &ClusterConfig, plan: &MemoryPlan) -> Self {
        let mut scheduler =
            ReplicaScheduler::new(config.scheduler, plan.num_kv_blocks, config.block_size);
        if config.prefix_cache.is_some() {
            scheduler.arm_prefix_cache();
        }
        EngineReplica {
            scheduler,
            pipeline: PipelineTracker::new(config.parallelism.pipeline_parallel as usize),
            wakeup_at: None,
            pending_completions: std::collections::VecDeque::new(),
        }
    }

    /// Builds a pool of `n` identical replicas.
    pub fn pool(config: &ClusterConfig, plan: &MemoryPlan, n: usize) -> Vec<Self> {
        (0..n).map(|_| EngineReplica::new(config, plan)).collect()
    }

    /// Clears the pending wake-up marker (call when handling its event).
    pub fn clear_wakeup(&mut self) {
        self.wakeup_at = None;
    }

    /// Number of this replica's batches still executing (a draining replica
    /// is done once both this and its scheduler's outstanding count are 0).
    pub fn inflight_len(&self) -> usize {
        self.pending_completions.len()
    }

    /// Crash reset: clears the wake-up marker and replaces the pipeline
    /// tracker with a fresh one (a crashed replica's stages hold nothing).
    /// In-flight batches must be cancelled first via
    /// [`EngineCore::cancel_inflight`].
    pub fn reset_for_crash(&mut self) {
        debug_assert!(self.pending_completions.is_empty());
        self.wakeup_at = None;
        self.pipeline = PipelineTracker::new(self.pipeline.num_stages());
    }
}

/// Receiver of the engine's per-batch measurement callbacks.
///
/// The sequential engine sinks straight into the [`MetricsCollector`]; the
/// sharded engine sinks into a per-shard effect log that the commit loop
/// later replays into the shared collector in exact sequential event order.
/// The method set mirrors the collector's accumulation API one-for-one so a
/// replayed log is bit-identical (f64 accumulation order included) to a
/// sequential run.
pub trait EngineSink {
    /// A batch's cached plan timing was applied (per-operator attribution).
    /// `replica` is the metrics-replica index the batch ran on — the
    /// mergeable collector keys its single-writer fold slots by it.
    fn on_batch_timed(&mut self, replica: usize, timing: &Arc<PlanTiming>);
    /// GPU-busy seconds for a scheduled batch (stage time × TP GPUs).
    fn on_gpu_busy(&mut self, replica: usize, gpu_secs: f64);
    /// A batch was formed and launched.
    fn on_batch_scheduled(
        &mut self,
        replica: usize,
        now: SimTime,
        batch: &BatchComposition,
        flops: f64,
        bytes: f64,
    );
    /// A replica's KV occupancy changed.
    fn on_kv_sample(&mut self, replica: usize, now: SimTime, utilization: f64);
    /// A batch finished and produced completion events.
    fn on_batch_complete(&mut self, replica: usize, now: SimTime, events: &[CompletionEvent]);
}

impl EngineSink for MetricsCollector {
    fn on_batch_timed(&mut self, replica: usize, timing: &Arc<PlanTiming>) {
        self.on_op_secs(replica, timing.op_secs());
    }
    fn on_gpu_busy(&mut self, replica: usize, gpu_secs: f64) {
        MetricsCollector::on_gpu_busy(self, replica, gpu_secs);
    }
    fn on_batch_scheduled(
        &mut self,
        replica: usize,
        now: SimTime,
        batch: &BatchComposition,
        flops: f64,
        bytes: f64,
    ) {
        MetricsCollector::on_batch_scheduled(self, replica, now, batch, flops, bytes);
    }
    fn on_kv_sample(&mut self, replica: usize, now: SimTime, utilization: f64) {
        MetricsCollector::on_kv_sample(self, replica, now, utilization);
    }
    fn on_batch_complete(&mut self, replica: usize, now: SimTime, events: &[CompletionEvent]) {
        MetricsCollector::on_batch_complete(self, replica, now, events);
    }
}

/// The sink-agnostic scheduling core: batch formation, timing, pipeline
/// occupancy, and in-flight tracking, with all measurement routed through an
/// [`EngineSink`] and all event scheduling through
/// [`EventPush`](vidur_core::event::EventPush). [`BatchEngine`] wraps one of
/// these around the metrics collector for the sequential path; the sharded
/// driver owns one per shard, sinking into an effect log. Cloning snapshots
/// the full scheduling state (in-flight table, RNG streams, launch counter)
/// — the speculative sharded path checkpoints cores at window boundaries.
#[derive(Clone)]
pub struct EngineCore {
    timer: StageTimer,
    rng: SimRng,
    /// Base seed, kept so v2 per-replica jitter RNGs can be forked lazily.
    seed: u64,
    /// [`ClusterConfig::rng_version`]: 1 draws CPU-overhead jitter from the
    /// single engine-wide `rng` in launch order (the historical stream); 2
    /// draws from per-replica forked streams, which makes jittered runs
    /// shard-order independent.
    rng_version: u32,
    /// Per-replica jitter streams (v2 only), forked from `seed` by *global*
    /// replica index and grown lazily — a shard core only materializes the
    /// streams of the replicas it owns, and the streams are identical no
    /// matter how replicas are dealt to shards.
    replica_rngs: Vec<Option<SimRng>>,
    tp_gpus: f64,
    cpu_overhead: f64,
    inflight: InflightSlots,
    launched: u64,
    /// Per-replica straggler multipliers applied to every stage time after
    /// the shape-cache lookup (so the cache stays shared across replicas).
    /// Empty means "all 1.0" — the vector only materializes when a fault
    /// plan arms a `Slow` episode, and a multiplier of exactly 1.0 is
    /// bit-identical to no multiplier at all.
    stage_multipliers: Vec<f64>,
    /// Per-batch scratch (jittered stage times / stage durations /
    /// completion events), reused to keep allocations out of the scheduling
    /// hot loop.
    scratch_secs: Vec<f64>,
    scratch_durations: Vec<SimDuration>,
    events_scratch: Vec<CompletionEvent>,
}

impl fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineCore")
            .field("inflight", &self.inflight.len())
            .field("launched", &self.launched)
            .finish()
    }
}

/// The policy-free core of an event-driven serving simulation.
///
/// Owns everything both simulators used to duplicate: the runtime source,
/// the metrics collector, the deterministic RNG behind CPU-overhead jitter,
/// the in-flight batch table, and the stop conditions (deadline, late-abort).
/// Concrete simulators call [`BatchEngine::try_schedule`] whenever a replica
/// might make progress and [`BatchEngine::retire_batch`] when a batch
/// completion event fires.
pub struct BatchEngine {
    /// Metrics sink shared by the engine and the policy layer (arrivals and
    /// completion events are policy-specific, so simulators record those).
    pub metrics: MetricsCollector,
    core: EngineCore,
    deadline: Option<SimTime>,
    deadline_hit: bool,
    late_abort: Option<LateAbort>,
}

impl fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchEngine")
            .field("inflight", &self.core.inflight.len())
            .field("launched", &self.core.launched)
            .field("deadline_hit", &self.deadline_hit)
            .finish()
    }
}

impl EngineCore {
    /// Builds a core around `timer` with the jitter RNG seeded at `seed`.
    pub fn with_timer(config: &ClusterConfig, timer: StageTimer, seed: u64) -> Self {
        EngineCore {
            timer,
            rng: SimRng::new(seed),
            seed,
            rng_version: config.rng_version,
            replica_rngs: Vec::new(),
            tp_gpus: config.parallelism.tensor_parallel as f64,
            cpu_overhead: config.cpu_overhead,
            inflight: InflightSlots::default(),
            launched: 0,
            stage_multipliers: Vec::new(),
            scratch_secs: Vec::new(),
            scratch_durations: Vec::new(),
            events_scratch: Vec::new(),
        }
    }

    /// The core's stage timer (for cache statistics inspection).
    pub fn timer(&self) -> &StageTimer {
        &self.timer
    }

    /// Number of batches currently executing.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Batches launched so far.
    pub fn launched(&self) -> u64 {
        self.launched
    }

    /// Sets replica `replica`'s straggler stage-time multiplier (1.0 =
    /// nominal speed). Applied to every stage after the shape-cache lookup,
    /// so the cache stays shared; a multiplier of exactly 1.0 leaves stage
    /// times bit-identical.
    ///
    /// # Panics
    ///
    /// Panics unless `mult` is finite and >= 1.0 (stragglers slow down).
    pub fn set_stage_multiplier(&mut self, replica: usize, mult: f64) {
        assert!(
            mult.is_finite() && mult >= 1.0,
            "straggler multiplier must be finite and >= 1.0, got {mult}"
        );
        if replica >= self.stage_multipliers.len() {
            if mult == 1.0 {
                return;
            }
            self.stage_multipliers.resize(replica + 1, 1.0);
        }
        self.stage_multipliers[replica] = mult;
    }

    /// Whether batch `id` is still in flight (stale ids from cancelled
    /// batches miss via their bumped generation).
    pub fn inflight_contains(&self, id: u64) -> bool {
        self.inflight.contains(id)
    }

    /// Cancels every in-flight batch on `replica` (crash semantics): the
    /// batches are removed from the in-flight table — so their already-queued
    /// completion events become stale ids the driver must drop — their slice
    /// storage is recycled, and the replica's pipeline and wake-up state are
    /// reset. Returns the number of batches cancelled. The scheduler still
    /// holds the evicted requests; call
    /// [`ReplicaScheduler::evict_all`](vidur_scheduler::ReplicaScheduler::evict_all)
    /// after this to requeue them.
    pub fn cancel_inflight(&mut self, replica: &mut EngineReplica) -> usize {
        let mut cancelled = 0;
        while let Some((_, id)) = replica.pending_completions.pop_front() {
            let batch = self
                .inflight
                .remove(id)
                .expect("pending completion must be in flight");
            replica.scheduler.recycle_batch(batch);
            cancelled += 1;
        }
        replica.reset_for_crash();
        cancelled
    }

    /// Per-iteration CPU/framework overhead in seconds.
    ///
    /// The oracle source adds a log-normal wiggle plus rare multi-millisecond
    /// hiccups — the part of the real system a simulator cannot predict; the
    /// estimator source uses the constant nominal overhead. Under
    /// `rng_version` 1 the jitter draws come from one engine-wide RNG in
    /// launch order, which makes jittered runs inherently sequential; under
    /// version 2 each replica draws from its own stream forked from the base
    /// seed by *global* replica index, so the draws a replica sees do not
    /// depend on what other replicas launched — the property that admits
    /// jittered runs to the sharded fast path. The two versions produce
    /// different (both valid) jitter sequences, so v1 stays the default to
    /// preserve historical fingerprints.
    fn cpu_overhead(&mut self, replica: usize) -> f64 {
        let base = self.cpu_overhead;
        if !self.timer.jitters() {
            return base;
        }
        let rng = if self.rng_version >= 2 {
            if replica >= self.replica_rngs.len() {
                self.replica_rngs.resize(replica + 1, None);
            }
            let seed = self.seed;
            self.replica_rngs[replica].get_or_insert_with(|| SimRng::new(seed).fork(replica as u64))
        } else {
            &mut self.rng
        };
        let mut t = base * rng.log_normal(0.0, 0.25);
        if rng.bernoulli(0.02) {
            t += rng.exponential(1.0 / 2.0e-3);
        }
        t
    }

    /// Greedily forms and launches batches on `replica` while its first
    /// pipeline stage is free; arms a deduplicated wake-up otherwise.
    /// Measurement callbacks go to `sink`; follow-up events to `queue`.
    /// See [`BatchEngine::try_schedule`] for the full contract.
    #[allow(clippy::too_many_arguments)]
    pub fn try_schedule<E>(
        &mut self,
        replica: &mut EngineReplica,
        metrics_idx: usize,
        now: SimTime,
        queue: &mut impl EventPush<E>,
        sink: &mut impl EngineSink,
        bytes_of: impl Fn(&BatchComposition) -> f64,
        wakeup: impl Fn() -> E,
        complete: impl Fn(u64) -> E,
    ) {
        loop {
            let free_at = replica.pipeline.stage0_free_at();
            if free_at > now {
                // Busy. A completion event for this replica at exactly
                // `free_at` re-enters try_schedule with the stage already
                // free, so a wake-up for the same instant would pop right
                // after it and do nothing — coalesce it away. With PP=1
                // stage 0 always frees exactly at batch completion, so this
                // halves the steady-state event traffic.
                if replica
                    .pending_completions
                    .iter()
                    .any(|&(t, _)| t == free_at)
                {
                    return;
                }
                // Otherwise arm a wake-up (dedupe identical ones).
                let need = replica.wakeup_at.is_none_or(|at| at > free_at);
                if need {
                    replica.wakeup_at = Some(free_at);
                    queue.push(free_at, wakeup());
                }
                return;
            }
            let Some(batch) = replica.scheduler.next_batch() else {
                return;
            };
            // The memoized prediction pipeline: shape key → cached plan
            // timing → jitter. Per-operator attribution (paper §5.2's
            // operator-level metrics) is replayed from the cached totals,
            // and the stochastic CPU overhead draws after the lookup, so
            // reports are byte-identical with the cache on or off.
            let timing = self.timer.time_batch(&batch);
            sink.on_batch_timed(metrics_idx, &timing);
            let overhead = self.cpu_overhead(metrics_idx);
            self.scratch_secs.clear();
            self.scratch_secs.extend_from_slice(timing.stage_secs());
            let mult = self
                .stage_multipliers
                .get(metrics_idx)
                .copied()
                .unwrap_or(1.0);
            if mult != 1.0 {
                for s in &mut self.scratch_secs {
                    *s *= mult;
                }
            }
            self.scratch_secs[0] += overhead;
            let busy: f64 = self.scratch_secs.iter().sum();
            sink.on_gpu_busy(metrics_idx, busy * self.tp_gpus);
            self.scratch_durations.clear();
            self.scratch_durations.extend(
                self.scratch_secs
                    .iter()
                    .map(|&s| SimDuration::from_secs_f64(s.max(0.0))),
            );
            let completion = replica.pipeline.schedule(now, &self.scratch_durations);
            let bytes = bytes_of(&batch);
            sink.on_batch_scheduled(metrics_idx, now, &batch, timing.model_flops(), bytes);
            sink.on_kv_sample(metrics_idx, now, replica.scheduler.blocks().utilization());
            self.launched += 1;
            let id = self.inflight.insert(batch);
            replica.pending_completions.push_back((completion, id));
            queue.push(completion, complete(id));
            // Loop: with PP, stage 0 may free before completion, allowing
            // another microbatch now-ish; the next loop iteration either
            // schedules it or arms a wakeup.
        }
    }

    /// Pops finished batch `id` and retires it on `replica`'s scheduler.
    /// See [`BatchEngine::retire_batch`] for the full contract.
    #[allow(clippy::too_many_arguments)]
    pub fn retire_batch<E, Q: EventPush<E>>(
        &mut self,
        replica: &mut EngineReplica,
        metrics_idx: usize,
        id: u64,
        now: SimTime,
        queue: &mut Q,
        sink: &mut impl EngineSink,
        mut translate: impl FnMut(&mut CompletionEvent, &mut Q),
    ) {
        let batch = self.inflight.remove(id).expect("unknown in-flight batch");
        let done = replica.pending_completions.pop_front();
        debug_assert_eq!(done, Some((now, id)), "completions must retire in order");
        let mut events = std::mem::take(&mut self.events_scratch);
        replica.scheduler.complete_batch_into(&batch, &mut events);
        sink.on_kv_sample(metrics_idx, now, replica.scheduler.blocks().utilization());
        for ev in events.iter_mut() {
            translate(ev, queue);
        }
        sink.on_batch_complete(metrics_idx, now, &events);
        self.events_scratch = events;
        replica.scheduler.recycle_batch(batch);
    }
}

impl BatchEngine {
    /// Builds the engine for `config` with `metrics_replicas` KV-utilization
    /// series (aggregated clusters use one per replica; disaggregated ones,
    /// one per pool member). The stage timer (and its shape cache, per
    /// [`ClusterConfig::plan_cache`]) is private to this engine; use
    /// [`BatchEngine::with_timer`] to share a warm cache across runs.
    pub fn new(
        config: &ClusterConfig,
        source: RuntimeSource,
        seed: u64,
        metrics_replicas: usize,
    ) -> Self {
        BatchEngine::with_timer(
            config,
            StageTimer::for_config(config, source),
            seed,
            metrics_replicas,
        )
    }

    /// Builds the engine around an existing [`StageTimer`], sharing its
    /// shape cache with other engines cloned from the same timer (the
    /// capacity search prices ~10 probes per configuration this way).
    ///
    /// `timer` must have been built for a configuration with the same model,
    /// parallelism, and `async_pipeline_comm` as `config` — cached stage
    /// times are only reusable within that context.
    pub fn with_timer(
        config: &ClusterConfig,
        timer: StageTimer,
        seed: u64,
        metrics_replicas: usize,
    ) -> Self {
        let mut metrics = MetricsCollector::with_mode(metrics_replicas, config.quantile_mode);
        if let Some(la) = config.late_abort {
            metrics.set_late_limit(la.delay_limit_secs);
        }
        if let Some(ts) = config.timeseries {
            metrics.set_timeseries(ts);
        }
        BatchEngine {
            metrics,
            core: EngineCore::with_timer(config, timer, seed),
            deadline: config.max_sim_time,
            deadline_hit: false,
            late_abort: config.late_abort,
        }
    }

    /// The engine's stage timer (for cache statistics inspection).
    pub fn timer(&self) -> &StageTimer {
        self.core.timer()
    }

    /// Number of batches currently executing.
    pub fn inflight_len(&self) -> usize {
        self.core.inflight_len()
    }

    /// Whether batch `id` is still in flight — see
    /// [`EngineCore::inflight_contains`]. Drivers with crash injection use
    /// this to drop completion events for cancelled batches.
    pub fn inflight_contains(&self, id: u64) -> bool {
        self.core.inflight_contains(id)
    }

    /// Sets a replica's straggler stage-time multiplier — see
    /// [`EngineCore::set_stage_multiplier`].
    pub fn set_stage_multiplier(&mut self, replica: usize, mult: f64) {
        self.core.set_stage_multiplier(replica, mult);
    }

    /// Cancels every in-flight batch on `replica` (crash semantics) — see
    /// [`EngineCore::cancel_inflight`].
    pub fn cancel_inflight(&mut self, replica: &mut EngineReplica) -> usize {
        self.core.cancel_inflight(replica)
    }

    /// Latches and reports the deadline: call at the top of every event
    /// handler; once `now` passes the configured cap the handler should drop
    /// the event, and [`BatchEngine::halted`] reports done.
    pub fn deadline_exceeded(&mut self, now: SimTime) -> bool {
        if let Some(deadline) = self.deadline {
            if now > deadline {
                self.deadline_hit = true;
                return true;
            }
        }
        false
    }

    /// Engine-level stop condition: deadline hit, all `target` requests
    /// completed, or the late-abort guardrail tripped. Policy layers may OR
    /// in their own conditions.
    pub fn halted(&self, target: usize) -> bool {
        if self.deadline_hit || self.metrics.completed() == target {
            return true;
        }
        if let Some(la) = self.late_abort {
            if self.metrics.late_count() > la.max_late {
                return true;
            }
        }
        false
    }

    /// Greedily forms and launches batches on `replica` while its first
    /// pipeline stage is free; arms a deduplicated wake-up otherwise.
    ///
    /// `bytes_of` prices one batch iteration's HBM traffic for MBU
    /// accounting. `wakeup` and `complete` construct the caller's event
    /// payloads; the engine itself schedules them on `queue`. The handler
    /// for the `wakeup()` event must call
    /// [`EngineReplica::clear_wakeup`] and re-enter `try_schedule` for this
    /// replica; the handler for `complete(id)` must route the finished
    /// batch id back into [`BatchEngine::retire_batch`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_schedule<E>(
        &mut self,
        replica: &mut EngineReplica,
        metrics_idx: usize,
        now: SimTime,
        queue: &mut EventQueue<E>,
        bytes_of: impl Fn(&BatchComposition) -> f64,
        wakeup: impl Fn() -> E,
        complete: impl Fn(u64) -> E,
    ) {
        self.core.try_schedule(
            replica,
            metrics_idx,
            now,
            queue,
            &mut self.metrics,
            bytes_of,
            wakeup,
            complete,
        );
    }

    /// Pops finished batch `id`, retires it on `replica`'s scheduler,
    /// samples KV utilization, and records the completion events — after
    /// giving the policy layer a chance to rewrite each event via
    /// `translate` (e.g. the disaggregated prefill→decode handoff, which
    /// un-finishes requests and schedules their KV transfer on `queue`).
    ///
    /// The event buffer and the batch's slice storage are both recycled, so
    /// the steady-state retire path is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in flight, which would indicate a simulator bug.
    pub fn retire_batch<E>(
        &mut self,
        replica: &mut EngineReplica,
        metrics_idx: usize,
        id: u64,
        now: SimTime,
        queue: &mut EventQueue<E>,
        translate: impl FnMut(&mut CompletionEvent, &mut EventQueue<E>),
    ) {
        self.core.retire_batch(
            replica,
            metrics_idx,
            id,
            now,
            queue,
            &mut self.metrics,
            translate,
        );
    }

    /// Consumes the engine and assembles the final [`SimulationReport`],
    /// summing preemptions over the backend's replicas.
    pub fn finish<'r>(
        self,
        trace_len: usize,
        sku: &GpuSku,
        total_gpus: u32,
        replicas: impl Iterator<Item = &'r EngineReplica>,
    ) -> SimulationReport {
        let preemptions = replicas.map(|r| r.scheduler.preemptions()).sum();
        self.into_report(trace_len, sku, total_gpus, preemptions)
    }

    /// Consumes the engine and assembles the final [`SimulationReport`].
    pub fn into_report(
        self,
        trace_len: usize,
        sku: &GpuSku,
        total_gpus: u32,
        preemptions: u64,
    ) -> SimulationReport {
        let gpus = total_gpus as f64;
        self.metrics.into_report(
            trace_len,
            sku.peak_fp16_flops * gpus,
            sku.mem_bandwidth * gpus,
            preemptions,
            PowerSpec {
                tdp_watts: sku.tdp_watts,
                idle_watts: sku.idle_watts,
                total_gpus,
            },
        )
    }
}

/// Translates a trace into arrival events via `mk` (taking the trace index).
///
/// # Panics
///
/// Panics if the trace holds more than `u32::MAX` requests — event payloads
/// carry `u32` indices, and silently truncating would alias requests.
pub fn trace_arrivals<E>(
    trace: &vidur_workload::Trace,
    mk: impl Fn(u32) -> E,
) -> Vec<(SimTime, E)> {
    assert!(
        u32::try_from(trace.requests.len()).is_ok(),
        "trace of {} requests exceeds the u32 event-index range",
        trace.requests.len()
    );
    trace
        .requests
        .iter()
        .enumerate()
        .map(|(i, req)| (req.arrival, mk(i as u32)))
        .collect()
}

/// Seeds an event queue with `arrivals` and runs `sim` to completion through
/// the shared [`vidur_core::event::run`] driver. Returns the last processed
/// timestamp and the number of events processed.
pub fn drive<S: Simulation>(sim: &mut S, arrivals: Vec<(SimTime, S::Event)>) -> (SimTime, u64) {
    let mut queue = EventQueue::new();
    for (time, event) in arrivals {
        queue.push(time, event);
    }
    event::run(sim, &mut queue, MAX_EVENTS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_model::batch::RequestSlice;

    fn batch(id: u64) -> BatchComposition {
        BatchComposition::new(vec![RequestSlice::decode(id, 10)])
    }

    #[test]
    fn inflight_slots_roundtrip_and_recycle() {
        let mut slots = InflightSlots::default();
        let a = slots.insert(batch(1));
        let b = slots.insert(batch(2));
        assert_ne!(a, b);
        assert_eq!(slots.len(), 2);
        let got = slots.remove(a).expect("live id");
        assert_eq!(got.slices()[0].request_id, 1);
        assert_eq!(slots.len(), 1);
        // The freed slot recycles under a new generation: the new id must
        // differ from the retired one, and the stale id must miss.
        let c = slots.insert(batch(3));
        assert_ne!(c, a, "recycled slot carries a fresh generation");
        assert!(slots.remove(a).is_none(), "stale id misses");
        assert_eq!(slots.remove(c).unwrap().slices()[0].request_id, 3);
        assert_eq!(slots.remove(b).unwrap().slices()[0].request_id, 2);
        assert_eq!(slots.len(), 0);
        assert!(slots.remove(b).is_none(), "double retire misses");
    }

    #[test]
    fn inflight_slots_interleaved_fifo_pattern() {
        // The engine's real pattern: a window of in-flight batches retiring
        // FIFO while new ones launch. Ids must stay unique within the
        // window across heavy slot reuse.
        let mut slots = InflightSlots::default();
        let mut window = std::collections::VecDeque::new();
        for i in 0..1000u64 {
            window.push_back((i, slots.insert(batch(i))));
            if window.len() > 4 {
                let (req, id) = window.pop_front().unwrap();
                assert_eq!(slots.remove(id).unwrap().slices()[0].request_id, req);
            }
            let live: Vec<u64> = window.iter().map(|&(_, id)| id).collect();
            let mut dedup = live.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), live.len(), "live ids must be unique");
        }
        assert!(slots.slots.len() <= 8, "slots recycle instead of growing");
    }
}
