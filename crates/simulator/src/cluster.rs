//! The event-driven cluster simulator.
//!
//! Events: request arrivals, replica wake-ups (stage 0 freed), and batch
//! completions. Batch formation, stage timing, and completion bookkeeping
//! live in the shared [`engine`](crate::engine); this module contributes the
//! aggregated-cluster policy: a [`RoutingTier`] global router (paper §4.5 —
//! stateless and stateful deferred policies, fair-share, affinity) and
//! per-batch HBM-traffic pricing for MBU. With PP > 1, several disjoint
//! microbatches are in flight per replica, which is exactly the paper's
//! synchronous pipeline-parallel policy (§4.5).

use crate::config::ClusterConfig;
use crate::engine::{self, BatchEngine, EngineReplica};
use crate::metrics::{SimulationReport, TenantRoutingStats};
use vidur_core::event::{EventQueue, Simulation};
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_scheduler::{Request, RouteRequest, RoutingTier};
use vidur_workload::Trace;

pub use crate::engine::RuntimeSource;

/// Simulator event payload (public only because the `Simulation` trait
/// exposes the associated event type; not constructible outside this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Trace request `idx` arrives.
    #[doc(hidden)]
    Arrival(u32),
    /// Replica may be able to schedule (stage 0 freed).
    Wakeup(u32),
    /// Batch `batch_id` on replica finished its last stage.
    BatchComplete(u32, u64),
}

/// Execution statistics for one simulation run — how the event loop ran, as
/// opposed to what the simulation measured (the [`SimulationReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Event-loop shards actually used (1 = the sequential engine, either
    /// because sharding was off or the configuration fell off the fast
    /// path).
    pub shards: usize,
    /// Effects the shards streamed through the serial merger. In
    /// exact/sketch modes every metric effect replays serially; in
    /// mergeable mode only tier-relevant effects stream, so this drops by
    /// an order of magnitude. Zero on sequential runs (nothing streams).
    pub streamed_effects: u64,
}

/// The cluster simulator. Construct with [`ClusterSimulator::new`], run with
/// [`ClusterSimulator::run`].
pub struct ClusterSimulator {
    pub(crate) config: ClusterConfig,
    pub(crate) trace: Trace,
    pub(crate) engine: BatchEngine,
    pub(crate) replicas: Vec<EngineReplica>,
    /// The global scheduling tier: routing policy, live replica view, and
    /// deferred-queue bookkeeping (paper §4.5, first tier).
    pub(crate) tier: RoutingTier,
}

impl std::fmt::Debug for ClusterSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSimulator")
            .field("config", &self.config.label())
            .field("trace_len", &self.trace.len())
            .field("inflight", &self.engine.inflight_len())
            .finish()
    }
}

/// Assembles the per-tenant routing statistics a simulator publishes into
/// its metrics collector: the tier's routed/deferred counts and fair-share
/// attainment, plus quota denials summed over the replicas' schedulers.
/// Shared by the aggregated and disaggregated simulators.
pub(crate) fn routing_stats<'r>(
    tier: &RoutingTier,
    replicas: impl IntoIterator<Item = &'r EngineReplica>,
) -> Vec<TenantRoutingStats> {
    let mut stats: Vec<TenantRoutingStats> = tier
        .tenant_stats()
        .iter()
        .enumerate()
        .map(|(t, s)| TenantRoutingStats {
            routed: s.routed,
            deferred: s.deferred,
            quota_denied: 0,
            fair_share_attainment: tier.fair_share_attainment(t as u32),
        })
        .collect();
    for replica in replicas {
        for (t, &denied) in replica.scheduler.quota_denied().iter().enumerate() {
            if t >= stats.len() {
                stats.resize(t + 1, TenantRoutingStats::default());
            }
            stats[t].quota_denied += denied;
        }
    }
    stats
}

/// Approximate HBM traffic of one batch iteration (for MBU): every device
/// streams its resident weights once, plus KV reads/writes.
pub(crate) fn batch_bytes(config: &ClusterConfig, batch: &BatchComposition) -> f64 {
    let weights = config.parallelism.weight_bytes_per_device(&config.model)
        * config.parallelism.gpus_per_replica() as f64;
    let kv_read = batch.decode_kv_read_tokens() as f64 * config.model.kv_bytes_per_token() as f64;
    let kv_write = batch.total_query_tokens() as f64 * config.model.kv_bytes_per_token() as f64;
    weights + kv_read + kv_write
}

impl ClusterSimulator {
    /// Builds a simulator for `config` over `trace` with runtimes from
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot host the model (run
    /// [`ClusterConfig::memory_plan`] first to pre-validate).
    pub fn new(config: ClusterConfig, trace: Trace, source: RuntimeSource, seed: u64) -> Self {
        let timer = crate::timing::StageTimer::for_config(&config, source);
        ClusterSimulator::with_timer(config, trace, timer, seed)
    }

    /// Builds a simulator around an existing [`StageTimer`], sharing its
    /// batch-shape cache with other runs cloned from the same timer (the
    /// capacity search prices every bisection probe of a configuration this
    /// way). The timer must have been built for a configuration with the
    /// same model, parallelism, and `async_pipeline_comm` as `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot host the model.
    pub fn with_timer(
        config: ClusterConfig,
        trace: Trace,
        timer: crate::timing::StageTimer,
        seed: u64,
    ) -> Self {
        let plan = config
            .memory_plan()
            .expect("configuration cannot host the model");
        let mut replicas = EngineReplica::pool(&config, &plan, config.num_replicas);
        if let Some(quota) = config.tenant_quota_blocks(plan.num_kv_blocks) {
            for replica in &mut replicas {
                replica.scheduler.set_tenant_quotas(&quota);
            }
        }
        let tier = RoutingTier::new(
            config.global_policy,
            config.num_replicas,
            seed ^ 0x9E37,
            &config.tenant_weights,
        );
        let mut engine = BatchEngine::with_timer(&config, timer, seed, config.num_replicas);
        if !trace.tenants.is_empty() {
            engine
                .metrics
                .set_tenants(&trace.tenants, config.tenant_slo);
        }
        ClusterSimulator {
            config,
            trace,
            engine,
            replicas,
            tier,
        }
    }

    /// Runs the simulation to completion (all requests finished, the
    /// configured time cap reached, or the event budget exhausted) and
    /// returns the report.
    ///
    /// With [`ClusterConfig::shards`] above 1 and a configuration on the
    /// sharded fast path (see [`crate::sharded`]), the event loop runs one
    /// shard per thread; reports are bit-identical to the sequential run.
    pub fn run(self) -> SimulationReport {
        self.run_with_stats().0
    }

    /// Like [`ClusterSimulator::run`], but also reports how the event loop
    /// executed — shard count and serial-commit volume ([`RunStats`]). The
    /// report is identical to the one `run` returns.
    pub fn run_with_stats(mut self) -> (SimulationReport, RunStats) {
        let shards = self.config.shards.min(self.config.num_replicas);
        let mut stats = RunStats {
            shards: 1,
            streamed_effects: 0,
        };
        if shards > 1 && crate::sharded::eligible(&self.config, self.engine.timer().jitters()) {
            stats.shards = shards;
            stats.streamed_effects = crate::sharded::run_sharded(&mut self, shards);
        } else {
            let arrivals = engine::trace_arrivals(&self.trace, SimEvent::Arrival);
            engine::drive(&mut self, arrivals);
        }
        let routing = routing_stats(&self.tier, &self.replicas);
        self.engine.metrics.set_tenant_routing(routing);
        let report = self.engine.finish(
            self.trace.len(),
            &self.config.sku,
            self.config.total_gpus(),
            self.replicas.iter(),
        );
        (report, stats)
    }

    /// The tier's routing key for trace request `idx`.
    fn route_request(&self, idx: u32) -> RouteRequest {
        let tr = self.trace.requests[idx as usize];
        RouteRequest {
            key: idx as u64,
            tenant: tr.tenant,
            priority: tr.priority,
            tokens: tr.prefill_tokens + tr.decode_tokens,
        }
    }

    /// Binds trace request `idx` to `target` and kicks its scheduler.
    fn dispatch(
        &mut self,
        idx: u32,
        target: usize,
        now: SimTime,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let tr = self.trace.requests[idx as usize];
        self.replicas[target].scheduler.add_request(
            Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens)
                .with_tenant(tr.tenant)
                .with_priority(tr.priority),
        );
        self.try_schedule(target as u32, now, queue);
    }

    /// Binds deferred requests while the tier will place them (stateful
    /// deferred routing, paper §4.5).
    fn drain_deferred(&mut self, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        while let Some((req, target)) = self.tier.next_ready() {
            self.dispatch(req.key as u32, target, now, queue);
        }
    }

    fn try_schedule(&mut self, replica: u32, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let r = replica as usize;
        let config = &self.config;
        self.engine.try_schedule(
            &mut self.replicas[r],
            r,
            now,
            queue,
            |batch| batch_bytes(config, batch),
            || SimEvent::Wakeup(replica),
            |id| SimEvent::BatchComplete(replica, id),
        );
    }
}

impl Simulation for ClusterSimulator {
    type Event = SimEvent;

    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        if self.engine.deadline_exceeded(now) {
            return;
        }
        match event {
            SimEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.engine
                    .metrics
                    .on_arrival(tr.id, now, tr.decode_tokens, tr.tenant);
                let req = self.route_request(idx);
                // `None` means the tier holds the request; completions
                // re-poll it via `drain_deferred`.
                if let Some(target) = self.tier.route(req) {
                    self.dispatch(idx, target, now, queue);
                }
            }
            SimEvent::Wakeup(replica) => {
                self.replicas[replica as usize].clear_wakeup();
                self.try_schedule(replica, now, queue);
            }
            SimEvent::BatchComplete(replica, id) => {
                let r = replica as usize;
                let trace = &self.trace;
                let tier = &mut self.tier;
                self.engine.retire_batch(
                    &mut self.replicas[r],
                    r,
                    id,
                    now,
                    queue,
                    // Aggregated clusters record completion events as-is;
                    // finished requests leave the tier's live view here.
                    |ev, _queue| {
                        if ev.finished {
                            let tr = trace.requests[ev.id as usize];
                            tier.on_finished(r, tr.tenant, tr.prefill_tokens + tr.decode_tokens);
                        }
                    },
                );
                self.tier
                    .set_free_kv_blocks(r, self.replicas[r].scheduler.blocks().free_blocks());
                self.drain_deferred(now, queue);
                self.try_schedule(replica, now, queue);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.engine.halted(self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_core::time::SimTime;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn small_trace(n: usize, qps: f64, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        let arrivals = if qps.is_finite() {
            ArrivalProcess::Poisson { qps }
        } else {
            ArrivalProcess::Static
        };
        TraceWorkload::chat_1m().generate(n, &arrivals, &mut rng)
    }

    fn config(policy: BatchPolicyKind) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(policy, 64),
        )
    }

    fn oracle_source() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn completes_all_requests_static() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(50, f64::INFINITY, 1),
            oracle_source(),
            1,
        );
        let report = sim.run();
        assert_eq!(report.completed, 50);
        assert!(report.makespan_secs > 0.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.mfu > 0.0 && report.mfu <= 1.0);
        assert!(report.kv_utilization > 0.0);
    }

    #[test]
    fn completes_all_requests_dynamic() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::SarathiServe { chunk_size: 512 }),
            small_trace(60, 2.0, 2),
            oracle_source(),
            2,
        );
        let report = sim.run();
        assert_eq!(report.completed, 60);
        // TTFT >= scheduling delay; TBT positive.
        assert!(report.ttft.p50 >= report.scheduling_delay.p50);
        assert!(report.tbt.p50 > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            ClusterSimulator::new(
                config(BatchPolicyKind::OrcaPlus),
                small_trace(40, 5.0, 3),
                oracle_source(),
                7,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_replica_spreads_load() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 1;
        let single =
            ClusterSimulator::new(c.clone(), small_trace(80, 3.0, 4), oracle_source(), 4).run();
        c.num_replicas = 4;
        let quad = ClusterSimulator::new(c, small_trace(80, 3.0, 4), oracle_source(), 4).run();
        assert!(
            quad.e2e.p90 < single.e2e.p90,
            "4 replicas must cut tail latency: {} vs {}",
            quad.e2e.p90,
            single.e2e.p90
        );
    }

    #[test]
    fn pipeline_parallel_runs() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 2);
        let report =
            ClusterSimulator::new(c, small_trace(30, f64::INFINITY, 5), oracle_source(), 5).run();
        assert_eq!(report.completed, 30);
    }

    #[test]
    fn deadline_stops_overload() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.max_sim_time = Some(SimTime::from_secs_f64(20.0));
        // 200 QPS of chat on one 7B replica is far beyond capacity.
        let report =
            ClusterSimulator::new(c, small_trace(2000, 200.0, 6), oracle_source(), 6).run();
        assert!(report.completed < 2000, "overload must not drain");
    }

    #[test]
    fn deferred_routing_completes_and_balances() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 2;
        c.global_policy = vidur_scheduler::GlobalPolicyKind::Deferred { max_outstanding: 4 };
        let report = ClusterSimulator::new(c, small_trace(60, 3.0, 8), oracle_source(), 8).run();
        assert_eq!(report.completed, 60, "deferred requests must all drain");
    }

    #[test]
    fn async_pipeline_comm_cuts_latency() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 4);
        let t = small_trace(30, f64::INFINITY, 9);
        let sync = ClusterSimulator::new(c.clone(), t.clone(), oracle_source(), 9).run();
        c.async_pipeline_comm = true;
        let asynch = ClusterSimulator::new(c, t, oracle_source(), 9).run();
        assert_eq!(asynch.completed, 30);
        assert!(
            asynch.makespan_secs < sync.makespan_secs,
            "hiding send/recv must help: {} vs {}",
            asynch.makespan_secs,
            sync.makespan_secs
        );
    }

    #[test]
    fn energy_accounting_sane() {
        let report = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(40, f64::INFINITY, 10),
            oracle_source(),
            10,
        )
        .run();
        assert!(report.energy_kwh > 0.0);
        // One A100: mean power between idle (60 W) and TDP (400 W).
        assert!(
            report.mean_power_watts >= 60.0 && report.mean_power_watts <= 400.0,
            "{}",
            report.mean_power_watts
        );
        assert!(report.energy_wh_per_request > 0.0);
        // Operator breakdown covers the big matmuls and is sorted.
        let ops: Vec<&str> = report
            .operator_time_breakdown
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(ops.contains(&"mlp_up_proj"));
        assert!(ops.contains(&"attn_decode"));
        let times: Vec<f64> = report
            .operator_time_breakdown
            .iter()
            .map(|(_, t)| *t)
            .collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 0.5, 7),
            oracle_source(),
            7,
        )
        .run();
        let heavy = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 4.0, 7),
            oracle_source(),
            7,
        )
        .run();
        assert!(heavy.e2e.mean > light.e2e.mean);
    }
}
