//! The event-driven cluster simulator.
//!
//! Events: request arrivals, replica wake-ups (stage 0 freed), and batch
//! completions. Batch formation, stage timing, and completion bookkeeping
//! live in the shared [`engine`](crate::engine); this module contributes the
//! aggregated-cluster policy: a [`RoutingTier`] global router (paper §4.5 —
//! stateless and stateful deferred policies, fair-share, affinity) and
//! per-batch HBM-traffic pricing for MBU. With PP > 1, several disjoint
//! microbatches are in flight per replica, which is exactly the paper's
//! synchronous pipeline-parallel policy (§4.5).

use crate::config::ClusterConfig;
use crate::engine::{self, BatchEngine, EngineReplica};
use crate::faults::{
    Autoscaler, AutoscalerSpec, FleetObservation, ScaleDecision, SloQueueAutoscaler,
};
use crate::metrics::{FleetStats, SimulationReport, TenantRoutingStats};
use vidur_core::event::{EventQueue, Simulation};
use vidur_core::time::{SimDuration, SimTime};
use vidur_model::batch::BatchComposition;
use vidur_scheduler::{ReplicaHealth, Request, RequestId, RouteRequest, RoutingTier};
use vidur_workload::faults::{FaultAction, FaultRecord};
use vidur_workload::Trace;

pub use crate::engine::RuntimeSource;

/// Simulator event payload (public only because the `Simulation` trait
/// exposes the associated event type; not constructible outside this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Trace request `idx` arrives.
    #[doc(hidden)]
    Arrival(u32),
    /// Replica may be able to schedule (stage 0 freed).
    Wakeup(u32),
    /// Batch `batch_id` on replica finished its last stage.
    BatchComplete(u32, u64),
    /// Fault record `idx` of the armed plan fires (elastic runs only).
    Fault(u32),
    /// The autoscaler evaluates one observation window (elastic runs only).
    AutoscaleTick,
    /// Replica finished warming up and becomes routable (elastic runs only).
    WarmupDone(u32),
}

/// Per-run elastic-fleet state: the armed fault schedule, warm-up pricing,
/// autoscaler, retry/requeue accounting, and per-replica uptime intervals.
/// `None` on non-elastic runs, so the fixed-fleet hot path pays nothing and
/// stays bit-identical.
pub(crate) struct ElasticState {
    /// Time-ordered fault records of the armed plan.
    records: Vec<FaultRecord>,
    /// Warm-up delay priced once from the warm-up model and the replica's
    /// total weight bytes.
    warmup_delay: SimDuration,
    /// Armed autoscaler bounds/thresholds, if any.
    spec: Option<AutoscalerSpec>,
    /// The autoscaling policy (defaults to [`SloQueueAutoscaler`]).
    policy: Option<Box<dyn Autoscaler>>,
    /// Dispatches per trace index: a second dispatch is a retry.
    dispatch_count: Vec<u32>,
    retries: u64,
    requeued: u64,
    evicted_by_crash: u64,
    tenant_retries: Vec<u64>,
    tenant_requeued: Vec<u64>,
    tenant_evicted: Vec<u64>,
    /// Open uptime interval start per replica slot (`None` = down).
    up_since: Vec<Option<SimTime>>,
    /// Closed uptime accumulated per replica slot, seconds.
    up_secs: Vec<f64>,
    /// Pending warm-up completion per replica slot; a `WarmupDone` event is
    /// only honored if it matches (a crash during warm-up clears it, so the
    /// stale event is dropped).
    warmup_due: Vec<Option<SimTime>>,
    /// Windowed TTFT counters the autoscaler observes.
    window_prefills: u64,
    window_slo_ok: u64,
    /// Reusable eviction buffer.
    evict_scratch: Vec<RequestId>,
}

impl ElasticState {
    fn new(config: &ClusterConfig, trace_len: usize, warmup_delay_secs: f64) -> Self {
        let fleet = config.fleet_size();
        let mut up_since = vec![None; fleet];
        for slot in up_since.iter_mut().take(config.num_replicas) {
            *slot = Some(SimTime::ZERO);
        }
        ElasticState {
            records: config.faults.schedule.records.clone(),
            warmup_delay: SimDuration::from_secs_f64(warmup_delay_secs),
            spec: config.autoscaler,
            policy: config
                .autoscaler
                .map(|spec| Box::new(SloQueueAutoscaler::new(spec)) as Box<dyn Autoscaler>),
            dispatch_count: vec![0; trace_len],
            retries: 0,
            requeued: 0,
            evicted_by_crash: 0,
            tenant_retries: Vec::new(),
            tenant_requeued: Vec::new(),
            tenant_evicted: Vec::new(),
            up_since,
            up_secs: vec![0.0; fleet],
            warmup_due: vec![None; fleet],
            window_prefills: 0,
            window_slo_ok: 0,
            evict_scratch: Vec::new(),
        }
    }

    /// Opens replica `r`'s uptime interval at `now` (no-op if already open).
    fn open_up_interval(&mut self, r: usize, now: SimTime) {
        if self.up_since[r].is_none() {
            self.up_since[r] = Some(now);
        }
    }

    /// Closes replica `r`'s uptime interval at `now` (no-op if not open).
    fn close_up_interval(&mut self, r: usize, now: SimTime) {
        if let Some(since) = self.up_since[r].take() {
            self.up_secs[r] += now.saturating_duration_since(since).as_secs_f64();
        }
    }

    fn bump(counts: &mut Vec<u64>, tenant: u32) {
        let idx = tenant as usize;
        if idx >= counts.len() {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += 1;
    }

    /// Finalizes uptime accounting at the run's horizon and assembles the
    /// published [`FleetStats`].
    fn into_fleet_stats(mut self, end: SimTime) -> FleetStats {
        for r in 0..self.up_since.len() {
            self.close_up_interval(r, end);
        }
        let horizon = end.as_secs_f64();
        FleetStats {
            retries: self.retries,
            requeued: self.requeued,
            evicted_by_crash: self.evicted_by_crash,
            replica_hours: self.up_secs.iter().sum::<f64>() / 3600.0,
            replica_availability: self
                .up_secs
                .iter()
                .map(|&s| {
                    if horizon > 0.0 {
                        (s / horizon).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            tenant_retries: self.tenant_retries,
            tenant_requeued: self.tenant_requeued,
            tenant_evicted: self.tenant_evicted,
        }
    }
}

/// Execution statistics for one simulation run — how the event loop ran, as
/// opposed to what the simulation measured (the [`SimulationReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Event-loop shards actually used (1 = the sequential engine, either
    /// because sharding was off or the configuration fell off the fast
    /// path).
    pub shards: usize,
    /// Effects the shards streamed through the serial merger. In
    /// exact/sketch modes every metric effect replays serially; in
    /// mergeable mode only tier-relevant effects stream, so this drops by
    /// an order of magnitude. Zero on sequential runs (nothing streams).
    pub streamed_effects: u64,
    /// Speculation windows the stateful-routing fast path executed
    /// (retries of a rolled-back window count again). Zero on sequential
    /// runs and on the stateless streaming path, which never speculates.
    pub spec_windows: u64,
    /// Arrivals whose speculative placement disagreed with the exact
    /// live-view replay during the ordered commit. Each one rolls the
    /// affected window back.
    pub mispredictions: u64,
    /// Events discarded by window rollbacks and re-simulated with corrected
    /// placements — the raw cost of misprediction.
    pub rollback_events: u64,
    /// Why the run left the sharded fast path, when it did: `None` on
    /// sharded runs *and* on runs that never asked for sharding
    /// (`ClusterConfig::shards` <= 1). A sharding request that fell back —
    /// whether rejected up front (armed elastic fleet, armed prefix cache,
    /// jittered runtimes under rng_version 1, late-abort, `Deferred`
    /// policy) or aborted mid-run (a stateful policy actually deferred a
    /// request) — names the first blocking reason here.
    pub fallback_reason: Option<&'static str>,
}

/// The cluster simulator. Construct with [`ClusterSimulator::new`], run with
/// [`ClusterSimulator::run`].
pub struct ClusterSimulator {
    pub(crate) config: ClusterConfig,
    pub(crate) trace: Trace,
    pub(crate) engine: BatchEngine,
    pub(crate) replicas: Vec<EngineReplica>,
    /// The global scheduling tier: routing policy, live replica view, and
    /// deferred-queue bookkeeping (paper §4.5, first tier).
    pub(crate) tier: RoutingTier,
    /// Elastic-fleet state (fault schedule, autoscaler, uptime accounting);
    /// `None` unless [`ClusterConfig::elastic`] — the fixed-fleet path pays
    /// nothing for the feature.
    pub(crate) elastic: Option<Box<ElasticState>>,
    /// Construction seed, kept so a sharded attempt that aborts mid-run (a
    /// stateful policy deferred a request) can rebuild the simulator from
    /// scratch and re-run sequentially.
    pub(crate) seed: u64,
    /// Reusable pre-route scratch for the sharded path (`order`/`targets`
    /// live across windows and retries instead of reallocating per run).
    pub(crate) sharded_scratch: crate::sharded::ShardedScratch,
}

impl std::fmt::Debug for ClusterSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSimulator")
            .field("config", &self.config.label())
            .field("trace_len", &self.trace.len())
            .field("inflight", &self.engine.inflight_len())
            .finish()
    }
}

/// Assembles the per-tenant routing statistics a simulator publishes into
/// its metrics collector: the tier's routed/deferred counts and fair-share
/// attainment, plus quota denials summed over the replicas' schedulers.
/// Shared by the aggregated and disaggregated simulators.
pub(crate) fn routing_stats<'r>(
    tier: &RoutingTier,
    replicas: impl IntoIterator<Item = &'r EngineReplica>,
) -> Vec<TenantRoutingStats> {
    let mut stats: Vec<TenantRoutingStats> = tier
        .tenant_stats()
        .iter()
        .enumerate()
        .map(|(t, s)| TenantRoutingStats {
            routed: s.routed,
            deferred: s.deferred,
            quota_denied: 0,
            fair_share_attainment: tier.fair_share_attainment(t as u32),
        })
        .collect();
    for replica in replicas {
        for (t, &denied) in replica.scheduler.quota_denied().iter().enumerate() {
            if t >= stats.len() {
                stats.resize(t + 1, TenantRoutingStats::default());
            }
            stats[t].quota_denied += denied;
        }
    }
    stats
}

/// Approximate HBM traffic of one batch iteration (for MBU): every device
/// streams its resident weights once, plus KV reads/writes.
pub(crate) fn batch_bytes(config: &ClusterConfig, batch: &BatchComposition) -> f64 {
    let weights = config.parallelism.weight_bytes_per_device(&config.model)
        * config.parallelism.gpus_per_replica() as f64;
    let kv_read = batch.decode_kv_read_tokens() as f64 * config.model.kv_bytes_per_token() as f64;
    let kv_write = batch.total_query_tokens() as f64 * config.model.kv_bytes_per_token() as f64;
    weights + kv_read + kv_write
}

impl ClusterSimulator {
    /// Builds a simulator for `config` over `trace` with runtimes from
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot host the model (run
    /// [`ClusterConfig::memory_plan`] first to pre-validate).
    pub fn new(config: ClusterConfig, trace: Trace, source: RuntimeSource, seed: u64) -> Self {
        let timer = crate::timing::StageTimer::for_config(&config, source);
        ClusterSimulator::with_timer(config, trace, timer, seed)
    }

    /// Builds a simulator around an existing [`StageTimer`], sharing its
    /// batch-shape cache with other runs cloned from the same timer (the
    /// capacity search prices every bisection probe of a configuration this
    /// way). The timer must have been built for a configuration with the
    /// same model, parallelism, and `async_pipeline_comm` as `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot host the model.
    pub fn with_timer(
        config: ClusterConfig,
        trace: Trace,
        timer: crate::timing::StageTimer,
        seed: u64,
    ) -> Self {
        let plan = config
            .memory_plan()
            .expect("configuration cannot host the model");
        // Elastic runs pre-allocate the autoscaler's `max_replicas` ceiling;
        // fixed fleets allocate exactly `num_replicas` (fleet_size == that).
        let fleet = config.fleet_size();
        let mut replicas = EngineReplica::pool(&config, &plan, fleet);
        if let Some(quota) = config.tenant_quota_blocks(plan.num_kv_blocks) {
            for replica in &mut replicas {
                replica.scheduler.set_tenant_quotas(&quota);
            }
        }
        let mut tier = RoutingTier::new(
            config.global_policy,
            fleet,
            seed ^ 0x9E37,
            &config.tenant_weights,
        );
        let mut engine = BatchEngine::with_timer(&config, timer, seed, fleet);
        if !trace.tenants.is_empty() {
            engine
                .metrics
                .set_tenants(&trace.tenants, config.tenant_slo);
        }
        let elastic = config.elastic().then(|| {
            // Slots beyond the starting fleet begin powered off; the
            // autoscaler warms them up on demand.
            for r in config.num_replicas..fleet {
                tier.set_health(r, ReplicaHealth::Down);
            }
            let weight_bytes_total =
                plan.weight_bytes * config.parallelism.gpus_per_replica() as f64;
            let delay = config.faults.warmup.delay_secs(weight_bytes_total);
            Box::new(ElasticState::new(&config, trace.len(), delay))
        });
        ClusterSimulator {
            config,
            trace,
            engine,
            replicas,
            tier,
            elastic,
            seed,
            sharded_scratch: crate::sharded::ShardedScratch::default(),
        }
    }

    /// Replaces the default [`SloQueueAutoscaler`] with a custom policy.
    /// Only meaningful when [`ClusterConfig::autoscaler`] is armed (the
    /// spec still provides the cadence and fleet bounds); a no-op otherwise.
    pub fn set_autoscaler_policy(&mut self, policy: Box<dyn Autoscaler>) {
        if let Some(el) = self.elastic.as_deref_mut() {
            if el.spec.is_some() {
                el.policy = Some(policy);
            }
        }
    }

    /// Runs the simulation to completion (all requests finished, the
    /// configured time cap reached, or the event budget exhausted) and
    /// returns the report.
    ///
    /// With [`ClusterConfig::shards`] above 1 and a configuration on the
    /// sharded fast path (see [`crate::sharded`]), the event loop runs one
    /// shard per thread; reports are bit-identical to the sequential run.
    pub fn run(self) -> SimulationReport {
        self.run_with_stats().0
    }

    /// Like [`ClusterSimulator::run`], but also reports how the event loop
    /// executed — shard count, serial-commit volume, speculation counters,
    /// and the fast-path fallback reason ([`RunStats`]). The report is
    /// identical to the one `run` returns.
    pub fn run_with_stats(mut self) -> (SimulationReport, RunStats) {
        let shards = self.config.shards.min(self.config.num_replicas);
        let mut stats = RunStats {
            shards: 1,
            ..RunStats::default()
        };
        if self.config.shards > 1 {
            stats.fallback_reason =
                crate::sharded::block_reason(&self.config, self.engine.timer().jitters());
            if stats.fallback_reason.is_none() && shards < 2 {
                stats.fallback_reason = Some("fewer than two replicas");
            }
        }
        if self.config.shards > 1 && stats.fallback_reason.is_none() {
            match crate::sharded::run_sharded(&mut self, shards) {
                Ok(sharded_stats) => stats = sharded_stats,
                Err(reason) => {
                    // Mid-run abort (a stateful policy actually deferred a
                    // request — an inherently cross-shard bind): throw the
                    // half-run state away, rebuild from scratch on the same
                    // timer (the shape cache stays warm), and run the whole
                    // trace sequentially.
                    stats.fallback_reason = Some(reason);
                    self = ClusterSimulator::with_timer(
                        self.config.clone(),
                        self.trace.clone(),
                        self.engine.timer().clone(),
                        self.seed,
                    );
                }
            }
        }
        if stats.shards <= 1 {
            stats.shards = 1;
            let mut arrivals = engine::trace_arrivals(&self.trace, SimEvent::Arrival);
            if let Some(el) = self.elastic.as_deref() {
                for (i, rec) in el.records.iter().enumerate() {
                    arrivals.push((rec.at, SimEvent::Fault(i as u32)));
                }
                if let Some(spec) = el.spec {
                    arrivals.push((
                        SimTime::from_secs_f64(spec.interval_secs),
                        SimEvent::AutoscaleTick,
                    ));
                }
            }
            let (end, _) = engine::drive(&mut self, arrivals);
            if let Some(el) = self.elastic.take() {
                self.engine.metrics.set_fleet(el.into_fleet_stats(end));
            }
        }
        let routing = routing_stats(&self.tier, &self.replicas);
        self.engine.metrics.set_tenant_routing(routing);
        if self.config.prefix_cache.is_some() {
            let mut prefix = crate::metrics::PrefixStats::default();
            for rep in &self.replicas {
                let s = &rep.scheduler;
                prefix.hit_requests += s.prefix_hit_requests();
                prefix.tokens_saved += s.prefix_tokens_saved();
                for (idx, &h) in s.tenant_prefix_hits().iter().enumerate() {
                    if idx >= prefix.tenant_hits.len() {
                        prefix.tenant_hits.resize(idx + 1, 0);
                    }
                    prefix.tenant_hits[idx] += h;
                }
                for (idx, &v) in s.tenant_prefix_saved().iter().enumerate() {
                    if idx >= prefix.tenant_saved.len() {
                        prefix.tenant_saved.resize(idx + 1, 0);
                    }
                    prefix.tenant_saved[idx] += v;
                }
            }
            self.engine.metrics.set_prefix(prefix);
        }
        let report = self.engine.finish(
            self.trace.len(),
            &self.config.sku,
            self.config.total_gpus(),
            self.replicas.iter(),
        );
        (report, stats)
    }

    /// The tier's routing key for trace request `idx`.
    fn route_request(&self, idx: u32) -> RouteRequest {
        let tr = self.trace.requests[idx as usize];
        RouteRequest {
            key: idx as u64,
            tenant: tr.tenant,
            priority: tr.priority,
            tokens: tr.prefill_tokens + tr.decode_tokens,
        }
    }

    /// Binds trace request `idx` to `target` and kicks its scheduler.
    fn dispatch(
        &mut self,
        idx: u32,
        target: usize,
        now: SimTime,
        queue: &mut EventQueue<SimEvent>,
    ) {
        let tr = self.trace.requests[idx as usize];
        if let Some(el) = self.elastic.as_deref_mut() {
            if el.dispatch_count[idx as usize] > 0 {
                el.retries += 1;
                ElasticState::bump(&mut el.tenant_retries, tr.tenant);
            }
            el.dispatch_count[idx as usize] += 1;
        }
        self.replicas[target].scheduler.add_request(
            Request::new(tr.id, tr.arrival, tr.prefill_tokens, tr.decode_tokens)
                .with_tenant(tr.tenant)
                .with_priority(tr.priority)
                .with_prefix(tr.prefix_id, tr.prefix_len),
        );
        self.try_schedule(target as u32, now, queue);
    }

    /// Publishes each replica's expected cached-prefix hit for trace request
    /// `idx` into the routing tier (consulted by [`KvAware`] routing and
    /// `Affinity`'s spill decision). No-op unless the prefix cache is armed
    /// — the tier's hit view then stays all-zero and routing is
    /// bit-identical to the pre-prefix engine.
    ///
    /// [`KvAware`]: vidur_scheduler::GlobalPolicyKind::KvAware
    fn publish_prefix_hits(&mut self, idx: u32) {
        if self.config.prefix_cache.is_none() {
            return;
        }
        let tr = self.trace.requests[idx as usize];
        let hits: Vec<u64> = self
            .replicas
            .iter()
            .map(|rep| {
                rep.scheduler
                    .blocks()
                    .prefix_cached_tokens(tr.prefix_id, tr.prefill_tokens)
            })
            .collect();
        self.tier.set_route_prefix_hits(&hits);
    }

    /// Binds deferred requests while the tier will place them (stateful
    /// deferred routing, paper §4.5).
    fn drain_deferred(&mut self, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        if self.config.prefix_cache.is_some() {
            // The hit view still holds the last-routed request's hits;
            // deferred requests place on a clean (all-zero) view rather
            // than another request's stale one.
            let zeros = vec![0u64; self.replicas.len()];
            self.tier.set_route_prefix_hits(&zeros);
        }
        while let Some((req, target)) = self.tier.next_ready() {
            self.dispatch(req.key as u32, target, now, queue);
        }
    }

    fn try_schedule(&mut self, replica: u32, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let r = replica as usize;
        let config = &self.config;
        self.engine.try_schedule(
            &mut self.replicas[r],
            r,
            now,
            queue,
            |batch| batch_bytes(config, batch),
            || SimEvent::Wakeup(replica),
            |id| SimEvent::BatchComplete(replica, id),
        );
    }

    // ---- elastic-fleet actions -------------------------------------------

    /// Applies fault record `i` of the armed plan.
    fn apply_fault(&mut self, i: u32, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let rec = self.elastic.as_deref().expect("elastic armed").records[i as usize];
        let r = rec.replica as usize;
        assert!(
            r < self.replicas.len(),
            "fault schedule names replica {r} but the fleet has {}",
            self.replicas.len()
        );
        match rec.action {
            FaultAction::Crash => self.crash_replica(r, now, queue),
            FaultAction::Recover => self.begin_warmup(r, now, queue),
            FaultAction::Slow(mult) => self.engine.set_stage_multiplier(r, mult),
            FaultAction::Restore => self.engine.set_stage_multiplier(r, 1.0),
            FaultAction::Drain => self.drain_replica(r, now, queue),
        }
    }

    /// Hard-crashes replica `r`: cancels its in-flight batches (their
    /// already-queued completion events become stale and are dropped),
    /// evicts every request with KV reclaimed, and requeues the evicted
    /// work through the routing tier. No-op if the replica is already down.
    fn crash_replica(&mut self, r: usize, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        if self.tier.health(r) == ReplicaHealth::Down {
            return;
        }
        let mut evicted = {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            el.close_up_interval(r, now);
            el.warmup_due[r] = None;
            std::mem::take(&mut el.evict_scratch)
        };
        evicted.clear();
        self.tier.set_health(r, ReplicaHealth::Down);
        self.engine.cancel_inflight(&mut self.replicas[r]);
        self.replicas[r].scheduler.evict_all(&mut evicted);
        self.tier
            .set_free_kv_blocks(r, self.replicas[r].scheduler.blocks().free_blocks());
        {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            let trace = &self.trace;
            let tier = &mut self.tier;
            el.evicted_by_crash += evicted.len() as u64;
            el.requeued += evicted.len() as u64;
            for &id in &evicted {
                let tr = trace.requests[id as usize];
                ElasticState::bump(&mut el.tenant_evicted, tr.tenant);
                ElasticState::bump(&mut el.tenant_requeued, tr.tenant);
                // Balance the tier's dispatch accounting before re-routing.
                tier.on_finished(r, tr.tenant, tr.prefill_tokens + tr.decode_tokens);
            }
        }
        self.requeue(&evicted, now, queue);
        evicted.clear();
        self.elastic
            .as_deref_mut()
            .expect("elastic armed")
            .evict_scratch = evicted;
    }

    /// Gracefully drains replica `r`: the router stops placing new work on
    /// it, admissions close (running work executes to completion), and the
    /// not-yet-started queue migrates through the routing tier. No-op
    /// unless the replica is live.
    fn drain_replica(&mut self, r: usize, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        if self.tier.health(r) != ReplicaHealth::Live {
            return;
        }
        self.tier.set_health(r, ReplicaHealth::Draining);
        let mut migrated = {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            std::mem::take(&mut el.evict_scratch)
        };
        migrated.clear();
        self.replicas[r].scheduler.drain_queued(&mut migrated);
        {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            let trace = &self.trace;
            let tier = &mut self.tier;
            el.requeued += migrated.len() as u64;
            for &id in &migrated {
                let tr = trace.requests[id as usize];
                ElasticState::bump(&mut el.tenant_requeued, tr.tenant);
                tier.on_finished(r, tr.tenant, tr.prefill_tokens + tr.decode_tokens);
            }
        }
        self.requeue(&migrated, now, queue);
        migrated.clear();
        self.elastic
            .as_deref_mut()
            .expect("elastic armed")
            .evict_scratch = migrated;
        self.maybe_finish_drain(r, now);
    }

    /// Sends evicted/migrated requests back through the routing tier. The
    /// tier defers them when no replica is routable; recoveries drain the
    /// deferred queue.
    fn requeue(&mut self, ids: &[RequestId], now: SimTime, queue: &mut EventQueue<SimEvent>) {
        for &id in ids {
            let idx = id as u32;
            let req = self.route_request(idx);
            self.publish_prefix_hits(idx);
            if let Some(target) = self.tier.route(req) {
                self.dispatch(idx, target, now, queue);
            }
        }
    }

    /// Completes a graceful drain once the replica has nothing running.
    fn maybe_finish_drain(&mut self, r: usize, now: SimTime) {
        if self.tier.health(r) == ReplicaHealth::Draining
            && self.replicas[r].inflight_len() == 0
            && self.replicas[r].scheduler.outstanding() == 0
        {
            self.tier.set_health(r, ReplicaHealth::Down);
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            el.close_up_interval(r, now);
        }
    }

    /// Starts warming replica `r` up (fault-plan recovery or autoscaler
    /// scale-up): the replica pays the model-load + weight-transfer delay
    /// before becoming routable. No-op unless the replica is down.
    fn begin_warmup(&mut self, r: usize, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        if self.tier.health(r) != ReplicaHealth::Down {
            return;
        }
        self.tier.set_health(r, ReplicaHealth::Warming);
        let el = self.elastic.as_deref_mut().expect("elastic armed");
        let due = now + el.warmup_delay;
        el.warmup_due[r] = Some(due);
        // A warming replica occupies its GPUs: uptime (and replica-hours)
        // start at warm-up, not at readiness.
        el.open_up_interval(r, now);
        queue.push(due, SimEvent::WarmupDone(r as u32));
    }

    /// Replica `r` finished warming up: it becomes routable and the tier's
    /// deferred queue drains onto it. Stale events (the replica crashed
    /// mid-warm-up) are dropped via the `warmup_due` match.
    fn warmup_done(&mut self, r: usize, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            if self.tier.health(r) != ReplicaHealth::Warming || el.warmup_due[r] != Some(now) {
                return;
            }
            el.warmup_due[r] = None;
        }
        self.replicas[r].scheduler.reopen_admissions();
        self.tier.set_health(r, ReplicaHealth::Live);
        self.tier
            .set_free_kv_blocks(r, self.replicas[r].scheduler.blocks().free_blocks());
        self.drain_deferred(now, queue);
        self.try_schedule(r as u32, now, queue);
    }

    /// One autoscaler evaluation: observe the window, decide, apply within
    /// the spec's fleet bounds, and re-arm the next tick.
    fn autoscale_tick(&mut self, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let fleet = self.replicas.len();
        let (mut live, mut warming, mut draining, mut outstanding) = (0usize, 0, 0, 0);
        for r in 0..fleet {
            match self.tier.health(r) {
                ReplicaHealth::Live => {
                    live += 1;
                    outstanding += self.replicas[r].scheduler.outstanding();
                }
                ReplicaHealth::Warming => warming += 1,
                ReplicaHealth::Draining => draining += 1,
                ReplicaHealth::Down => {}
            }
        }
        let (spec, decision) = {
            let el = self.elastic.as_deref_mut().expect("elastic armed");
            let spec = el.spec.expect("tick only fires with an armed autoscaler");
            let obs = FleetObservation {
                now_secs: now.as_secs_f64(),
                live,
                warming,
                draining,
                deferred: self.tier.deferred_len(),
                outstanding,
                window_prefills: el.window_prefills,
                window_slo_ok: el.window_slo_ok,
            };
            el.window_prefills = 0;
            el.window_slo_ok = 0;
            let policy = el.policy.as_mut().expect("armed autoscaler has a policy");
            (spec, policy.decide(&obs))
        };
        match decision {
            ScaleDecision::Hold => {}
            ScaleDecision::Up(n) => {
                // Warming and draining replicas still occupy fleet slots.
                let mut budget = n.min(spec.max_replicas.saturating_sub(live + warming + draining));
                for r in 0..fleet {
                    if budget == 0 {
                        break;
                    }
                    if self.tier.health(r) == ReplicaHealth::Down {
                        self.begin_warmup(r, now, queue);
                        budget -= 1;
                    }
                }
            }
            ScaleDecision::Drain(n) => {
                let mut budget = n.min(live.saturating_sub(spec.min_replicas));
                for r in (0..fleet).rev() {
                    if budget == 0 {
                        break;
                    }
                    if self.tier.health(r) == ReplicaHealth::Live {
                        self.drain_replica(r, now, queue);
                        budget -= 1;
                    }
                }
            }
        }
        queue.push(
            now + SimDuration::from_secs_f64(spec.interval_secs),
            SimEvent::AutoscaleTick,
        );
    }
}

impl Simulation for ClusterSimulator {
    type Event = SimEvent;

    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        if self.engine.deadline_exceeded(now) {
            return;
        }
        match event {
            SimEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.engine
                    .metrics
                    .on_arrival(tr.id, now, tr.decode_tokens, tr.tenant);
                let req = self.route_request(idx);
                self.publish_prefix_hits(idx);
                // `None` means the tier holds the request; completions
                // re-poll it via `drain_deferred`.
                if let Some(target) = self.tier.route(req) {
                    self.dispatch(idx, target, now, queue);
                }
            }
            SimEvent::Wakeup(replica) => {
                self.replicas[replica as usize].clear_wakeup();
                self.try_schedule(replica, now, queue);
            }
            SimEvent::BatchComplete(replica, id) => {
                let r = replica as usize;
                // Crash cancellation leaves completion events for batches
                // that no longer exist; their generation check fails here.
                if self.elastic.is_some() && !self.engine.inflight_contains(id) {
                    return;
                }
                let trace = &self.trace;
                let tier = &mut self.tier;
                let mut elastic = self.elastic.as_deref_mut();
                self.engine.retire_batch(
                    &mut self.replicas[r],
                    r,
                    id,
                    now,
                    queue,
                    // Aggregated clusters record completion events as-is;
                    // finished requests leave the tier's live view here.
                    |ev, _queue| {
                        if ev.finished {
                            let tr = trace.requests[ev.id as usize];
                            tier.on_finished(r, tr.tenant, tr.prefill_tokens + tr.decode_tokens);
                        }
                        if let Some(el) = elastic.as_deref_mut() {
                            if ev.prefill_completed {
                                if let Some(spec) = el.spec {
                                    let tr = trace.requests[ev.id as usize];
                                    el.window_prefills += 1;
                                    let ttft =
                                        now.saturating_duration_since(tr.arrival).as_secs_f64();
                                    if ttft <= spec.ttft_slo_secs {
                                        el.window_slo_ok += 1;
                                    }
                                }
                            }
                        }
                    },
                );
                self.tier
                    .set_free_kv_blocks(r, self.replicas[r].scheduler.blocks().free_blocks());
                self.drain_deferred(now, queue);
                self.try_schedule(replica, now, queue);
                if self.elastic.is_some() {
                    self.maybe_finish_drain(r, now);
                }
            }
            SimEvent::Fault(i) => self.apply_fault(i, now, queue),
            SimEvent::AutoscaleTick => self.autoscale_tick(now, queue),
            SimEvent::WarmupDone(r) => self.warmup_done(r as usize, now, queue),
        }
    }

    fn is_done(&self) -> bool {
        self.engine.halted(self.trace.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_core::rng::SimRng;
    use vidur_core::time::SimTime;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn small_trace(n: usize, qps: f64, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        let arrivals = if qps.is_finite() {
            ArrivalProcess::Poisson { qps }
        } else {
            ArrivalProcess::Static
        };
        TraceWorkload::chat_1m().generate(n, &arrivals, &mut rng)
    }

    fn config(policy: BatchPolicyKind) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(policy, 64),
        )
    }

    fn oracle_source() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn completes_all_requests_static() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(50, f64::INFINITY, 1),
            oracle_source(),
            1,
        );
        let report = sim.run();
        assert_eq!(report.completed, 50);
        assert!(report.makespan_secs > 0.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.mfu > 0.0 && report.mfu <= 1.0);
        assert!(report.kv_utilization > 0.0);
    }

    #[test]
    fn completes_all_requests_dynamic() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::SarathiServe { chunk_size: 512 }),
            small_trace(60, 2.0, 2),
            oracle_source(),
            2,
        );
        let report = sim.run();
        assert_eq!(report.completed, 60);
        // TTFT >= scheduling delay; TBT positive.
        assert!(report.ttft.p50 >= report.scheduling_delay.p50);
        assert!(report.tbt.p50 > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            ClusterSimulator::new(
                config(BatchPolicyKind::OrcaPlus),
                small_trace(40, 5.0, 3),
                oracle_source(),
                7,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_replica_spreads_load() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 1;
        let single =
            ClusterSimulator::new(c.clone(), small_trace(80, 3.0, 4), oracle_source(), 4).run();
        c.num_replicas = 4;
        let quad = ClusterSimulator::new(c, small_trace(80, 3.0, 4), oracle_source(), 4).run();
        assert!(
            quad.e2e.p90 < single.e2e.p90,
            "4 replicas must cut tail latency: {} vs {}",
            quad.e2e.p90,
            single.e2e.p90
        );
    }

    #[test]
    fn pipeline_parallel_runs() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 2);
        let report =
            ClusterSimulator::new(c, small_trace(30, f64::INFINITY, 5), oracle_source(), 5).run();
        assert_eq!(report.completed, 30);
    }

    #[test]
    fn deadline_stops_overload() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.max_sim_time = Some(SimTime::from_secs_f64(20.0));
        // 200 QPS of chat on one 7B replica is far beyond capacity.
        let report =
            ClusterSimulator::new(c, small_trace(2000, 200.0, 6), oracle_source(), 6).run();
        assert!(report.completed < 2000, "overload must not drain");
    }

    #[test]
    fn deferred_routing_completes_and_balances() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 2;
        c.global_policy = vidur_scheduler::GlobalPolicyKind::Deferred { max_outstanding: 4 };
        let report = ClusterSimulator::new(c, small_trace(60, 3.0, 8), oracle_source(), 8).run();
        assert_eq!(report.completed, 60, "deferred requests must all drain");
    }

    #[test]
    fn async_pipeline_comm_cuts_latency() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 4);
        let t = small_trace(30, f64::INFINITY, 9);
        let sync = ClusterSimulator::new(c.clone(), t.clone(), oracle_source(), 9).run();
        c.async_pipeline_comm = true;
        let asynch = ClusterSimulator::new(c, t, oracle_source(), 9).run();
        assert_eq!(asynch.completed, 30);
        assert!(
            asynch.makespan_secs < sync.makespan_secs,
            "hiding send/recv must help: {} vs {}",
            asynch.makespan_secs,
            sync.makespan_secs
        );
    }

    #[test]
    fn energy_accounting_sane() {
        let report = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(40, f64::INFINITY, 10),
            oracle_source(),
            10,
        )
        .run();
        assert!(report.energy_kwh > 0.0);
        // One A100: mean power between idle (60 W) and TDP (400 W).
        assert!(
            report.mean_power_watts >= 60.0 && report.mean_power_watts <= 400.0,
            "{}",
            report.mean_power_watts
        );
        assert!(report.energy_wh_per_request > 0.0);
        // Operator breakdown covers the big matmuls and is sorted.
        let ops: Vec<&str> = report
            .operator_time_breakdown
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(ops.contains(&"mlp_up_proj"));
        assert!(ops.contains(&"attn_decode"));
        let times: Vec<f64> = report
            .operator_time_breakdown
            .iter()
            .map(|(_, t)| *t)
            .collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 0.5, 7),
            oracle_source(),
            7,
        )
        .run();
        let heavy = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 4.0, 7),
            oracle_source(),
            7,
        )
        .run();
        assert!(heavy.e2e.mean > light.e2e.mean);
    }
}
