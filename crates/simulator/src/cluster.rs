//! The event-driven cluster simulator.
//!
//! Events: request arrivals, replica wake-ups (stage 0 freed), and batch
//! completions. Each replica greedily forms batches whenever its first
//! pipeline stage is free; per-stage execution times come from the runtime
//! predictor, and the pipeline tracker resolves stage contention (bubbles
//! included). With PP > 1, several disjoint microbatches are in flight per
//! replica, which is exactly the paper's synchronous pipeline-parallel
//! policy (§4.5).

use crate::config::ClusterConfig;
use crate::metrics::{MetricsCollector, PowerSpec, SimulationReport};
use std::collections::{HashMap, VecDeque};
use vidur_core::event::{self, EventQueue, Simulation};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};
use vidur_estimator::RuntimeEstimator;
use vidur_hardware::KernelOracle;
use vidur_model::batch::{BatchComposition, ExecutionPlan};
use vidur_model::runtime::RuntimePredictor;
use vidur_scheduler::{
    GlobalPolicy, PipelineTracker, ReplicaScheduler, Request,
};
use vidur_workload::Trace;

/// Where batch runtimes come from.
///
/// `Oracle` is this repo's stand-in for the real testbed: ground-truth
/// analytical kernel times **plus stochastic CPU-overhead jitter** (real
/// serving systems exhibit framework hiccups; the paper attributes the 7B
/// model's elevated error to exactly this). `Estimator` is Vidur proper:
/// trained runtime models and a constant nominal CPU overhead.
#[derive(Debug, Clone)]
pub enum RuntimeSource {
    /// Ground truth with jittered CPU overhead (the paper's "Real").
    Oracle(KernelOracle),
    /// Trained estimator with nominal CPU overhead (the paper's
    /// "Predicted").
    Estimator(RuntimeEstimator),
}

impl RuntimeSource {
    fn op_source(&self) -> &dyn RuntimePredictor {
        match self {
            RuntimeSource::Oracle(o) => o,
            RuntimeSource::Estimator(e) => e,
        }
    }

    fn jitters(&self) -> bool {
        matches!(self, RuntimeSource::Oracle(_))
    }
}

/// Simulator event payload (public only because the `Simulation` trait
/// exposes the associated event type; not constructible outside this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Trace request `idx` arrives.
    #[doc(hidden)]
    Arrival(u32),
    /// Replica may be able to schedule (stage 0 freed).
    Wakeup(u32),
    /// Batch `batch_id` on replica finished its last stage.
    BatchComplete(u32, u64),
}

struct ReplicaState {
    scheduler: ReplicaScheduler,
    pipeline: PipelineTracker,
    /// Earliest pending wakeup (dedupes Wakeup events).
    wakeup_at: Option<SimTime>,
}

/// The cluster simulator. Construct with [`ClusterSimulator::new`], run with
/// [`ClusterSimulator::run`].
pub struct ClusterSimulator {
    config: ClusterConfig,
    source: RuntimeSource,
    trace: Trace,
    replicas: Vec<ReplicaState>,
    router: GlobalPolicy,
    metrics: MetricsCollector,
    inflight: HashMap<u64, (u32, BatchComposition)>,
    /// Requests held back by a deferring global policy (trace indices).
    deferred: VecDeque<u32>,
    next_batch_id: u64,
    rng: SimRng,
    deadline: Option<SimTime>,
    deadline_hit: bool,
}

impl std::fmt::Debug for ClusterSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSimulator")
            .field("config", &self.config.label())
            .field("trace_len", &self.trace.len())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl ClusterSimulator {
    /// Builds a simulator for `config` over `trace` with runtimes from
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot host the model (run
    /// [`ClusterConfig::memory_plan`] first to pre-validate).
    pub fn new(config: ClusterConfig, trace: Trace, source: RuntimeSource, seed: u64) -> Self {
        let plan = config
            .memory_plan()
            .expect("configuration cannot host the model");
        let num_stages = config.parallelism.pipeline_parallel as usize;
        let replicas = (0..config.num_replicas)
            .map(|_| ReplicaState {
                scheduler: ReplicaScheduler::new(
                    config.scheduler,
                    plan.num_kv_blocks,
                    config.block_size,
                ),
                pipeline: PipelineTracker::new(num_stages),
                wakeup_at: None,
            })
            .collect();
        let router = GlobalPolicy::new(config.global_policy, config.num_replicas, seed ^ 0x9E37);
        let mut metrics = MetricsCollector::new(config.num_replicas);
        if let Some(la) = config.late_abort {
            metrics.set_late_limit(la.delay_limit_secs);
        }
        ClusterSimulator {
            deadline: config.max_sim_time,
            config,
            source,
            trace,
            replicas,
            router,
            metrics,
            inflight: HashMap::new(),
            deferred: VecDeque::new(),
            next_batch_id: 0,
            rng: SimRng::new(seed),
            deadline_hit: false,
        }
    }

    /// Runs the simulation to completion (all requests finished, the
    /// configured time cap reached, or the event budget exhausted) and
    /// returns the report.
    pub fn run(mut self) -> SimulationReport {
        let mut queue = EventQueue::new();
        for (i, req) in self.trace.requests.iter().enumerate() {
            queue.push(req.arrival, SimEvent::Arrival(i as u32));
        }
        // Generous budget: ~40 events per request-token would be absurd;
        // batching means a few events per iteration.
        let max_events = 200_000_000u64;
        event::run(&mut self, &mut queue, max_events);
        self.finish()
    }

    fn finish(self) -> SimulationReport {
        let preemptions: u64 = self.replicas.iter().map(|r| r.scheduler.preemptions()).sum();
        let gpus = self.config.total_gpus() as f64;
        self.metrics.into_report(
            self.trace.len(),
            self.config.sku.peak_fp16_flops * gpus,
            self.config.sku.mem_bandwidth * gpus,
            preemptions,
            PowerSpec {
                tdp_watts: self.config.sku.tdp_watts,
                idle_watts: self.config.sku.idle_watts,
                total_gpus: self.config.total_gpus(),
            },
        )
    }

    /// Per-iteration CPU/framework overhead in seconds.
    fn cpu_overhead(&mut self) -> f64 {
        let base = self.config.cpu_overhead;
        if self.source.jitters() {
            // Log-normal wiggle plus rare multi-millisecond hiccups — the
            // part of the real system a simulator cannot predict.
            let mut t = base * self.rng.log_normal(0.0, 0.25);
            if self.rng.bernoulli(0.02) {
                t += self.rng.exponential(1.0 / 2.0e-3);
            }
            t
        } else {
            base
        }
    }

    /// Approximate HBM traffic of one batch iteration (for MBU): every
    /// device streams its resident weights once, plus KV reads/writes.
    fn batch_bytes(&self, batch: &BatchComposition) -> f64 {
        let weights = self
            .config
            .parallelism
            .weight_bytes_per_device(&self.config.model)
            * self.config.parallelism.gpus_per_replica() as f64;
        let kv_read = batch.decode_kv_read_tokens() as f64
            * self.config.model.kv_bytes_per_token() as f64;
        let kv_write = batch.total_query_tokens() as f64
            * self.config.model.kv_bytes_per_token() as f64;
        weights + kv_read + kv_write
    }

    /// Asks the global policy for a placement given current replica loads.
    fn route_one(&mut self) -> Option<usize> {
        let outstanding: Vec<usize> = self
            .replicas
            .iter()
            .map(|r| r.scheduler.outstanding())
            .collect();
        self.router.try_route(&outstanding)
    }

    /// Binds trace request `idx` to `target` and kicks its scheduler.
    fn dispatch(&mut self, idx: u32, target: usize, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        let tr = self.trace.requests[idx as usize];
        self.replicas[target].scheduler.add_request(Request::new(
            tr.id,
            tr.arrival,
            tr.prefill_tokens,
            tr.decode_tokens,
        ));
        self.try_schedule(target as u32, now, queue);
    }

    /// Re-offers deferred requests while some replica will take them
    /// (stateful deferred routing, paper §4.5).
    fn drain_deferred(&mut self, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        while let Some(&idx) = self.deferred.front() {
            match self.route_one() {
                Some(target) => {
                    self.deferred.pop_front();
                    self.dispatch(idx, target, now, queue);
                }
                None => break,
            }
        }
    }

    fn try_schedule(&mut self, replica: u32, now: SimTime, queue: &mut EventQueue<SimEvent>) {
        loop {
            let r = replica as usize;
            let free_at = self.replicas[r].pipeline.stage0_free_at();
            if free_at > now {
                // Busy: wake up when stage 0 frees (dedupe identical wakeups).
                let need = match self.replicas[r].wakeup_at {
                    Some(at) => at > free_at,
                    None => true,
                };
                if need {
                    self.replicas[r].wakeup_at = Some(free_at);
                    queue.push(free_at, SimEvent::Wakeup(replica));
                }
                return;
            }
            let Some(batch) = self.replicas[r].scheduler.next_batch() else {
                return;
            };
            let plan = ExecutionPlan::build(&self.config.model, &self.config.parallelism, &batch);
            // Per-stage times with per-operator attribution (paper §5.2's
            // operator-level metrics come for free from this loop).
            let predictor = self.source.op_source();
            let mut stage_secs: Vec<f64> = Vec::with_capacity(plan.num_stages());
            let mut op_acc: Vec<(vidur_model::Operator, f64)> = Vec::with_capacity(20);
            let async_comm = self.config.async_pipeline_comm;
            for stage in 0..plan.num_stages() {
                let mut total = 0.0;
                for inv in plan.stage(stage) {
                    let t = predictor.invocation_time(inv);
                    op_acc.push((inv.op, t));
                    // Async stage scheduling hides inter-stage send/recv
                    // behind compute; the transfer still happens (energy,
                    // op metrics) but leaves the stage's critical path.
                    if async_comm && inv.op == vidur_model::Operator::SendRecv {
                        continue;
                    }
                    total += t;
                }
                stage_secs.push(total);
            }
            for (op, t) in op_acc {
                self.metrics.on_op_time(op, t);
            }
            stage_secs[0] += self.cpu_overhead();
            let tp_gpus = self.config.parallelism.tensor_parallel as f64;
            self.metrics
                .on_gpu_busy(stage_secs.iter().sum::<f64>() * tp_gpus);
            let durations: Vec<SimDuration> = stage_secs
                .iter()
                .map(|&s| SimDuration::from_secs_f64(s.max(0.0)))
                .collect();
            let completion = self.replicas[r].pipeline.schedule(now, &durations);
            let bytes = self.batch_bytes(&batch);
            self.metrics
                .on_batch_scheduled(now, &batch, plan.model_flops(), bytes);
            self.metrics.on_kv_sample(
                r,
                now,
                self.replicas[r].scheduler.blocks().utilization(),
            );
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            self.inflight.insert(id, (replica, batch));
            queue.push(completion, SimEvent::BatchComplete(replica, id));
            // Loop: with PP, stage 0 may free before completion, allowing
            // another microbatch now-ish; the next loop iteration either
            // schedules it or arms a wakeup.
        }
    }
}

impl Simulation for ClusterSimulator {
    type Event = SimEvent;

    fn handle(&mut self, now: SimTime, event: SimEvent, queue: &mut EventQueue<SimEvent>) {
        if let Some(deadline) = self.deadline {
            if now > deadline {
                self.deadline_hit = true;
                return;
            }
        }
        match event {
            SimEvent::Arrival(idx) => {
                let tr = self.trace.requests[idx as usize];
                self.metrics.on_arrival(tr.id, now, tr.decode_tokens);
                match self.route_one() {
                    Some(target) => self.dispatch(idx, target, now, queue),
                    None => self.deferred.push_back(idx),
                }
            }
            SimEvent::Wakeup(replica) => {
                self.replicas[replica as usize].wakeup_at = None;
                self.try_schedule(replica, now, queue);
            }
            SimEvent::BatchComplete(replica, id) => {
                let (_, batch) = self
                    .inflight
                    .remove(&id)
                    .expect("unknown in-flight batch");
                let events = self.replicas[replica as usize]
                    .scheduler
                    .complete_batch(&batch);
                self.metrics.on_batch_complete(now, &events);
                self.metrics.on_kv_sample(
                    replica as usize,
                    now,
                    self.replicas[replica as usize].scheduler.blocks().utilization(),
                );
                self.drain_deferred(now, queue);
                self.try_schedule(replica, now, queue);
            }
        }
    }

    fn is_done(&self) -> bool {
        if self.deadline_hit || self.metrics.completed() == self.trace.len() {
            return true;
        }
        if let Some(la) = self.config.late_abort {
            if self.metrics.late_count() > la.max_late {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_hardware::GpuSku;
    use vidur_model::{ModelSpec, ParallelismConfig};
    use vidur_scheduler::{BatchPolicyKind, SchedulerConfig};
    use vidur_workload::{ArrivalProcess, TraceWorkload};

    fn small_trace(n: usize, qps: f64, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        let arrivals = if qps.is_finite() {
            ArrivalProcess::Poisson { qps }
        } else {
            ArrivalProcess::Static
        };
        TraceWorkload::chat_1m().generate(n, &arrivals, &mut rng)
    }

    fn config(policy: BatchPolicyKind) -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_7b(),
            GpuSku::a100_80g(),
            ParallelismConfig::serial(),
            1,
            SchedulerConfig::new(policy, 64),
        )
    }

    fn oracle_source() -> RuntimeSource {
        RuntimeSource::Oracle(KernelOracle::new(GpuSku::a100_80g()))
    }

    #[test]
    fn completes_all_requests_static() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(50, f64::INFINITY, 1),
            oracle_source(),
            1,
        );
        let report = sim.run();
        assert_eq!(report.completed, 50);
        assert!(report.makespan_secs > 0.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.mfu > 0.0 && report.mfu <= 1.0);
        assert!(report.kv_utilization > 0.0);
    }

    #[test]
    fn completes_all_requests_dynamic() {
        let sim = ClusterSimulator::new(
            config(BatchPolicyKind::SarathiServe { chunk_size: 512 }),
            small_trace(60, 2.0, 2),
            oracle_source(),
            2,
        );
        let report = sim.run();
        assert_eq!(report.completed, 60);
        // TTFT >= scheduling delay; TBT positive.
        assert!(report.ttft.p50 >= report.scheduling_delay.p50);
        assert!(report.tbt.p50 > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            ClusterSimulator::new(
                config(BatchPolicyKind::OrcaPlus),
                small_trace(40, 5.0, 3),
                oracle_source(),
                7,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn multi_replica_spreads_load() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 1;
        let single = ClusterSimulator::new(c.clone(), small_trace(80, 3.0, 4), oracle_source(), 4)
            .run();
        c.num_replicas = 4;
        let quad = ClusterSimulator::new(c, small_trace(80, 3.0, 4), oracle_source(), 4).run();
        assert!(
            quad.e2e.p90 < single.e2e.p90,
            "4 replicas must cut tail latency: {} vs {}",
            quad.e2e.p90,
            single.e2e.p90
        );
    }

    #[test]
    fn pipeline_parallel_runs() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 2);
        let report =
            ClusterSimulator::new(c, small_trace(30, f64::INFINITY, 5), oracle_source(), 5).run();
        assert_eq!(report.completed, 30);
    }

    #[test]
    fn deadline_stops_overload() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.max_sim_time = Some(SimTime::from_secs_f64(20.0));
        // 200 QPS of chat on one 7B replica is far beyond capacity.
        let report =
            ClusterSimulator::new(c, small_trace(2000, 200.0, 6), oracle_source(), 6).run();
        assert!(report.completed < 2000, "overload must not drain");
    }

    #[test]
    fn deferred_routing_completes_and_balances() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.num_replicas = 2;
        c.global_policy = vidur_scheduler::GlobalPolicyKind::Deferred { max_outstanding: 4 };
        let report =
            ClusterSimulator::new(c, small_trace(60, 3.0, 8), oracle_source(), 8).run();
        assert_eq!(report.completed, 60, "deferred requests must all drain");
    }

    #[test]
    fn async_pipeline_comm_cuts_latency() {
        let mut c = config(BatchPolicyKind::Vllm);
        c.parallelism = ParallelismConfig::new(1, 4);
        let t = small_trace(30, f64::INFINITY, 9);
        let sync = ClusterSimulator::new(c.clone(), t.clone(), oracle_source(), 9).run();
        c.async_pipeline_comm = true;
        let asynch = ClusterSimulator::new(c, t, oracle_source(), 9).run();
        assert_eq!(asynch.completed, 30);
        assert!(
            asynch.makespan_secs < sync.makespan_secs,
            "hiding send/recv must help: {} vs {}",
            asynch.makespan_secs,
            sync.makespan_secs
        );
    }

    #[test]
    fn energy_accounting_sane() {
        let report = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(40, f64::INFINITY, 10),
            oracle_source(),
            10,
        )
        .run();
        assert!(report.energy_kwh > 0.0);
        // One A100: mean power between idle (60 W) and TDP (400 W).
        assert!(
            report.mean_power_watts >= 60.0 && report.mean_power_watts <= 400.0,
            "{}",
            report.mean_power_watts
        );
        assert!(report.energy_wh_per_request > 0.0);
        // Operator breakdown covers the big matmuls and is sorted.
        let ops: Vec<&str> = report
            .operator_time_breakdown
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(ops.contains(&"mlp_up_proj"));
        assert!(ops.contains(&"attn_decode"));
        let times: Vec<f64> = report
            .operator_time_breakdown
            .iter()
            .map(|(_, t)| *t)
            .collect();
        assert!(times.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 0.5, 7),
            oracle_source(),
            7,
        )
        .run();
        let heavy = ClusterSimulator::new(
            config(BatchPolicyKind::Vllm),
            small_trace(60, 4.0, 7),
            oracle_source(),
            7,
        )
        .run();
        assert!(heavy.e2e.mean > light.e2e.mean);
    }
}
