//! Cluster / deployment configuration — the "Simulation Spec" of Figure 2.

use crate::faults::{AutoscalerSpec, FaultPlan};
use crate::metrics::{TenantSlo, TimeseriesConfig};
use serde::{Deserialize, Serialize};
use vidur_core::metrics::QuantileMode;
use vidur_core::time::SimTime;
use vidur_hardware::GpuSku;
use vidur_model::memory::{MemoryPlan, DEFAULT_BLOCK_SIZE};
use vidur_model::spec::SpecError;
use vidur_model::{ModelSpec, ParallelismConfig};
use vidur_scheduler::{GlobalPolicyKind, SchedulerConfig};

/// Mean per-iteration CPU/framework overhead in seconds (scheduler step,
/// tokenization hand-off, kernel dispatch). The paper's vLLM fork uses CUDA
/// graphs to minimize this, but it never reaches zero — and its run-to-run
/// *jitter* on the real system is what drives the 7B model's higher fidelity
/// error (paper §7.2).
pub const DEFAULT_CPU_OVERHEAD: f64 = 300e-6;

/// A complete deployment configuration to simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The model being served.
    pub model: ModelSpec,
    /// GPU SKU for every device in the cluster.
    pub sku: GpuSku,
    /// Per-replica parallelism (TP × PP).
    pub parallelism: ParallelismConfig,
    /// Number of identical replicas.
    pub num_replicas: usize,
    /// Replica batching policy and limits.
    pub scheduler: SchedulerConfig,
    /// Cluster-tier routing policy.
    pub global_policy: GlobalPolicyKind,
    /// KV-cache page size in tokens.
    pub block_size: u32,
    /// Mean per-iteration CPU overhead in seconds.
    pub cpu_overhead: f64,
    /// Hard wall on simulated time (overloaded configs stop here instead of
    /// draining); `None` runs to completion.
    pub max_sim_time: Option<SimTime>,
    /// Overlap pipeline-parallel send/recv with compute (the asynchronous-
    /// communication extension the paper plans for the replica stage
    /// scheduler, §4.5). When set, inter-stage transfers leave the critical
    /// path.
    pub async_pipeline_comm: bool,
    /// Abort the simulation once more than `max_late` requests waited
    /// longer than `delay_limit_secs` for their first schedule. Used by
    /// capacity probes: an overloaded system is declared infeasible after a
    /// handful of blown deadlines instead of simulating the full queue
    /// explosion.
    pub late_abort: Option<LateAbort>,
    /// Memoize per-stage predicted times by batch shape (see
    /// `vidur_simulator::timing::StageTimer`). Reports are byte-identical
    /// either way — the cache only trades memory for speed — so this
    /// defaults on; disable it to bound memory on extremely long
    /// high-entropy runs or to benchmark the uncached path.
    pub plan_cache: bool,
    /// How the metrics collector aggregates latency distributions:
    /// [`QuantileMode::Exact`] (the default) stores every sample so report
    /// quantiles are exact and bit-reproducible; [`QuantileMode::Sketch`]
    /// streams samples through P² marker sketches and retires per-request
    /// records as they complete, bounding metrics memory on very long runs
    /// (per-token TBT streams) at the cost of approximate mid-quantiles;
    /// [`QuantileMode::Mergeable`] folds latencies into per-replica t-digest
    /// slots so per-shard collectors merge into one report — reports are
    /// invariant under merge order (identical bytes for any shard count) but
    /// not bit-comparable with the other two modes.
    pub quantile_mode: QuantileMode,
    /// Latency SLO judged per completed request for the per-tenant
    /// attainment column of the report. Only consulted on multi-tenant
    /// traces (ones that declare tenants); `None` reports latencies without
    /// attainment.
    pub tenant_slo: Option<TenantSlo>,
    /// Per-tenant fair-share weights for
    /// [`GlobalPolicyKind::FairShare`] routing (index = tenant id; missing
    /// entries weigh 1.0). Empty = equal weights. Other policies ignore
    /// this.
    pub tenant_weights: Vec<f64>,
    /// Per-tenant KV quotas as a fraction of each replica's KV blocks
    /// (index = tenant id; missing entries are unlimited; values clamp to
    /// at least one block). Empty = quotas disabled. Enforced at replica
    /// admission — see `ReplicaScheduler::set_tenant_quotas`.
    pub tenant_kv_quota: Vec<f64>,
    /// Number of event-loop shards to run in parallel (clamped to
    /// `num_replicas`). `1` (the default) uses the sequential engine. Values
    /// above 1 opt into the sharded engine for configurations on its fast
    /// path — no late-abort, no elastic fleet, no armed prefix cache,
    /// jitter-free runtimes (unless [`Self::rng_version`] is 2), and any
    /// non-`Deferred` routing policy: stateless policies
    /// (round-robin/random) stream straight through, stateful ones
    /// (least-outstanding, priority-aware, fair-share, affinity, KV-aware)
    /// run under windowed speculate-and-verify routing; anything else falls
    /// back to the sequential engine with the reason reported in
    /// `RunStats::fallback_reason`. Reports are bit-identical either way
    /// (see `vidur_simulator::sharded`).
    pub shards: usize,
    /// Speculation window size for the sharded engine's stateful-routing
    /// path: how many arrivals are pre-routed per window before the shards
    /// simulate it. `None` (the default) sizes windows adaptively — halving
    /// on mispredictions down to 1 (sequential-per-window, trivially exact),
    /// doubling on clean windows. `Some(n)` pins the window at `n` arrivals,
    /// which tests use to force misprediction pressure. Reports are
    /// byte-identical for every window size; only wall-clock changes.
    pub spec_window: Option<usize>,
    /// Determinism-contract version for the engine's stochastic draws.
    /// Version `1` (the default) draws CPU-overhead jitter from one
    /// engine-wide RNG in launch order — the historical stream every pinned
    /// fingerprint was captured under — which forces jittered runs onto the
    /// sequential engine. Version `2` forks one jitter stream per replica
    /// (keyed by global replica index) so jittered runs become shard-order
    /// independent and eligible for the sharded fast path; v2 sequential
    /// and sharded runs are bit-identical to each other but not to v1.
    pub rng_version: u32,
    /// Windowed time-series output: when set, the report's `timeseries`
    /// field carries one row per wall-clock window (throughput, TTFT p99,
    /// mean KV occupancy). Only populated in [`QuantileMode::Mergeable`];
    /// the other modes ignore it.
    pub timeseries: Option<TimeseriesConfig>,
    /// Fault-injection plan: replica crashes (work requeues through the
    /// routing tier), straggler episodes, and recoveries with warm-up. The
    /// default (empty) plan is byte-identical to a run without the fault
    /// layer. Arming a non-empty plan (or `autoscaler`) forces the
    /// sequential engine — the sharded fast path falls back automatically.
    /// Only the aggregated [`ClusterSimulator`](crate::ClusterSimulator)
    /// injects faults; the disaggregated engine reports zero fault counters.
    pub faults: FaultPlan,
    /// SLO/queue-driven autoscaler: when set, the fleet starts at
    /// `num_replicas` live replicas and the policy adds or drains replicas
    /// each interval within `[min_replicas, max_replicas]`; the engine
    /// pre-allocates `max_replicas`. `None` keeps the fleet fixed.
    pub autoscaler: Option<AutoscalerSpec>,
    /// Prefix-cache tier: when set, each replica's block manager caches
    /// shared-prefix KV blocks (reference-counted, LRU-evicted), admission
    /// skips the cached prefill tokens, batch formation prices only the
    /// un-cached prefill, and the routing tier sees per-replica expected
    /// prefix hits ([`GlobalPolicyKind::KvAware`] routes on them). `None`
    /// (the default) is byte-identical to the pre-prefix engine. Arming it
    /// forces the sequential engine — the sharded fast path falls back.
    pub prefix_cache: Option<PrefixCacheConfig>,
}

/// Prefix-cache tier configuration. Currently a marker — arming the tier is
/// the only knob; capacity is whatever the block manager's free pool holds
/// under LRU pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheConfig {}

/// Early-abort rule for overloaded capacity probes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LateAbort {
    /// Scheduling-delay limit in seconds (the capacity SLO).
    pub delay_limit_secs: f64,
    /// Abort when strictly more than this many requests are late.
    pub max_late: usize,
}

impl ClusterConfig {
    /// Creates a configuration with paper defaults (block size 16, 300 µs
    /// CPU overhead, round-robin routing, no time cap).
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas == 0`.
    pub fn new(
        model: ModelSpec,
        sku: GpuSku,
        parallelism: ParallelismConfig,
        num_replicas: usize,
        scheduler: SchedulerConfig,
    ) -> Self {
        assert!(num_replicas > 0, "need at least one replica");
        ClusterConfig {
            model,
            sku,
            parallelism,
            num_replicas,
            scheduler,
            global_policy: GlobalPolicyKind::RoundRobin,
            block_size: DEFAULT_BLOCK_SIZE,
            cpu_overhead: DEFAULT_CPU_OVERHEAD,
            max_sim_time: None,
            async_pipeline_comm: false,
            late_abort: None,
            plan_cache: true,
            quantile_mode: QuantileMode::Exact,
            tenant_slo: None,
            tenant_weights: Vec::new(),
            tenant_kv_quota: Vec::new(),
            shards: 1,
            spec_window: None,
            rng_version: 1,
            timeseries: None,
            faults: FaultPlan::none(),
            autoscaler: None,
            prefix_cache: None,
        }
    }

    /// True when the elastic-fleet layer (fault plan or autoscaler) is
    /// armed. Elastic runs pre-allocate [`Self::fleet_size`] replicas and
    /// always use the sequential engine.
    pub fn elastic(&self) -> bool {
        !self.faults.is_empty() || self.autoscaler.is_some()
    }

    /// Replica slots to pre-allocate: `num_replicas`, or the autoscaler's
    /// `max_replicas` ceiling when it is armed and larger. Slots beyond
    /// `num_replicas` start powered off.
    pub fn fleet_size(&self) -> usize {
        match &self.autoscaler {
            Some(spec) => self.num_replicas.max(spec.max_replicas),
            None => self.num_replicas,
        }
    }

    /// Per-tenant KV quotas in blocks for a replica with `num_kv_blocks`
    /// blocks, or `None` when quotas are disabled. Each fraction clamps to
    /// `[1, num_kv_blocks]`.
    pub fn tenant_quota_blocks(&self, num_kv_blocks: u64) -> Option<Vec<u64>> {
        if self.tenant_kv_quota.is_empty() {
            return None;
        }
        Some(
            self.tenant_kv_quota
                .iter()
                .map(|&f| {
                    let blocks = (num_kv_blocks as f64 * f).floor() as u64;
                    blocks.clamp(1, num_kv_blocks)
                })
                .collect(),
        )
    }

    /// Total GPUs across all replicas.
    pub fn total_gpus(&self) -> u32 {
        self.parallelism.gpus_per_replica() * self.num_replicas as u32
    }

    /// Cluster rental cost in dollars per hour.
    pub fn dollars_per_hour(&self) -> f64 {
        self.total_gpus() as f64 * self.sku.price_per_gpu_hour
    }

    /// Plans per-device memory, validating that the model fits.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parallelism or insufficient memory —
    /// such configurations are skipped by the search.
    pub fn memory_plan(&self) -> Result<MemoryPlan, SpecError> {
        MemoryPlan::compute(
            &self.model,
            &self.parallelism,
            self.sku.memory_bytes,
            self.block_size,
        )
    }

    /// Short human-readable label for reports,
    /// e.g. `llama2-70b/a100-80g/TP4-PP1/vllm/bs64/r2`. Non-default routing
    /// policies append a segment (e.g. `/fair-share(max=32)`) so search
    /// results over the routing dimension stay distinguishable.
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/{}/{}/bs{}/r{}",
            self.model.name,
            self.sku.name,
            self.parallelism,
            self.scheduler.policy,
            self.scheduler.max_batch_size,
            self.num_replicas
        );
        let base = if self.global_policy == GlobalPolicyKind::RoundRobin {
            base
        } else {
            format!("{base}/{}", self.global_policy)
        };
        if self.prefix_cache.is_some() {
            format!("{base}/prefix-cache")
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_scheduler::BatchPolicyKind;

    fn base() -> ClusterConfig {
        ClusterConfig::new(
            ModelSpec::llama2_70b(),
            GpuSku::a100_80g(),
            ParallelismConfig::new(4, 1),
            2,
            SchedulerConfig::new(BatchPolicyKind::Vllm, 64),
        )
    }

    #[test]
    fn gpu_and_cost_accounting() {
        let c = base();
        assert_eq!(c.total_gpus(), 8);
        assert!((c.dollars_per_hour() - 8.0 * 2.21).abs() < 1e-9);
    }

    #[test]
    fn memory_plan_validates() {
        let c = base();
        assert!(c.memory_plan().is_ok());
        let mut bad = base();
        bad.parallelism = ParallelismConfig::serial();
        assert!(bad.memory_plan().is_err(), "70B on one GPU must fail");
    }

    #[test]
    fn label_is_descriptive() {
        let label = base().label();
        assert!(label.contains("llama2-70b"));
        assert!(label.contains("TP4-PP1"));
        assert!(label.contains("vllm"));
    }
}
