//! # vidur-estimator
//!
//! Vidur's runtime estimator (paper §4.4): small machine-learning models
//! that interpolate sparse profiled measurements across the full input range
//! encountered during simulation.
//!
//! The paper found that MLPs need too much data and polynomials cannot
//! capture the non-linear runtime characteristics of CUDA kernels (tile and
//! wave quantization), while **random forest regression** balances data
//! frugality and fidelity. This crate implements, from scratch:
//!
//! * [`tree`] — CART regression trees over a scalar size feature;
//! * [`forest`] — bootstrap-aggregated random forests;
//! * [`poly`] — polynomial ridge regression (the baseline the paper rejects,
//!   kept for the ablation bench);
//! * [`interp`] — nearest-neighbor and piecewise-linear lookup baselines;
//! * [`estimator`] — the per-operator [`RuntimeEstimator`] implementing
//!   [`vidur_model::RuntimePredictor`], trained from a
//!   [`vidur_profiler::ProfileTable`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod estimator;
pub mod forest;
pub mod interp;
pub mod poly;
pub mod tree;

pub use estimator::{EstimatorKind, RuntimeEstimator};
pub use forest::{ForestConfig, RandomForest};
pub use tree::{RegressionTree, TreeConfig};
