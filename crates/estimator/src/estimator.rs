//! The per-operator runtime estimator (paper §4.4, Figure 2 step ③).
//!
//! Training consumes a [`ProfileTable`] and fits one regressor per operator
//! over its scalar size feature. At simulation time the estimator implements
//! [`RuntimePredictor`], so the end-to-end simulator can swap it for the
//! hardware oracle to measure fidelity.

use crate::forest::{ForestConfig, RandomForest};
use crate::interp::LookupTable;
use crate::poly::PolynomialRegressor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vidur_core::rng::SimRng;
use vidur_model::operators::{OpInvocation, Operator};
use vidur_model::runtime::RuntimePredictor;
use vidur_profiler::ProfileTable;

/// Which regression family to train (paper §4.4 compares these).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Random forest regression — the paper's choice.
    RandomForest(ForestConfig),
    /// Polynomial ridge regression of the given degree.
    Polynomial {
        /// Polynomial degree.
        degree: usize,
        /// L2 regularization strength.
        ridge: f64,
    },
    /// Nearest-profiled-point lookup.
    NearestNeighbor,
    /// Piecewise-linear interpolation between profiled points.
    LinearInterpolation,
}

impl Default for EstimatorKind {
    fn default() -> Self {
        EstimatorKind::RandomForest(ForestConfig::default())
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorKind::RandomForest(_) => write!(f, "random-forest"),
            EstimatorKind::Polynomial { degree, .. } => write!(f, "polynomial-deg{degree}"),
            EstimatorKind::NearestNeighbor => write!(f, "nearest-neighbor"),
            EstimatorKind::LinearInterpolation => write!(f, "linear-interpolation"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum OpModel {
    /// A random forest compiled into a dense lookup table (paper §4.2: the
    /// runtime estimator "produces operation-wise runtime lookup tables that
    /// can be later used during simulation"). The table is the forest
    /// evaluated on a fine grid; simulation-time queries are then O(log n)
    /// interpolations instead of full tree walks — the simulator's hot path.
    CompiledForest(LookupTable),
    Poly(PolynomialRegressor),
    Nearest(LookupTable),
    Linear(LookupTable),
}

impl OpModel {
    fn predict(&self, feature: f64) -> f64 {
        match self {
            OpModel::CompiledForest(t) => t.linear(feature),
            OpModel::Poly(m) => m.predict(feature),
            OpModel::Nearest(t) => t.nearest(feature),
            OpModel::Linear(t) => t.linear(feature),
        }
    }
}

/// Grid on which a trained forest is compiled into its lookup table: every
/// integer for small feature ranges, 0.4%-geometric steps for large (byte-
/// sized) ranges, capped to keep tables compact.
fn compile_grid(lo: f64, hi: f64) -> Vec<f64> {
    let lo = lo.max(0.0);
    if hi <= lo {
        return vec![lo];
    }
    let span = hi - lo;
    if span <= 8192.0 {
        let step = (span / 4096.0).max(1.0);
        let mut g: Vec<f64> = Vec::with_capacity(4100);
        let mut v = lo;
        while v < hi {
            g.push(v);
            v += step;
        }
        g.push(hi);
        g
    } else {
        let mut g = Vec::with_capacity(4000);
        let mut v = lo.max(1.0);
        g.push(lo);
        while v < hi {
            g.push(v);
            v *= 1.004;
        }
        g.push(hi);
        g
    }
}

/// A trained runtime estimator: one regressor per operator plus the feature
/// range observed during profiling (predictions clamp into it).
///
/// # Example
///
/// ```
/// use vidur_core::rng::SimRng;
/// use vidur_estimator::{EstimatorKind, RuntimeEstimator};
/// use vidur_hardware::{GpuSku, KernelOracle};
/// use vidur_model::{ModelSpec, ParallelismConfig};
/// use vidur_profiler::{ProfileCollector, ProfilingPlan};
///
/// let model = ModelSpec::llama2_7b();
/// let par = ParallelismConfig::serial();
/// let plan = ProfilingPlan::with_limits(&model, &par, 512, 8192);
/// let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
/// let table = collector.collect(&plan, &mut SimRng::new(1));
/// let est = RuntimeEstimator::train(&table, EstimatorKind::default(), 7);
/// assert!(est.operators().count() > 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEstimator {
    kind: EstimatorKind,
    models: BTreeMap<Operator, OpModel>,
    ranges: BTreeMap<Operator, (f64, f64)>,
}

impl RuntimeEstimator {
    /// Trains one regressor per operator in `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn train(table: &ProfileTable, kind: EstimatorKind, seed: u64) -> Self {
        assert!(!table.is_empty(), "cannot train on an empty profile table");
        let mut rng = SimRng::new(seed);
        let mut models = BTreeMap::new();
        let mut ranges = BTreeMap::new();
        for op in table.operators() {
            let pts = table.points_for(op);
            let xs: Vec<f64> = pts.iter().map(|p| p.feature).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.mean_time).collect();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let model = match kind {
                EstimatorKind::RandomForest(cfg) => {
                    let mut op_rng = rng.fork(op as u64);
                    let forest = RandomForest::fit(&xs, &ys, cfg, &mut op_rng);
                    let grid = compile_grid(lo, hi);
                    let table: Vec<(f64, f64)> =
                        grid.iter().map(|&x| (x, forest.predict(x))).collect();
                    OpModel::CompiledForest(LookupTable::new(table))
                }
                EstimatorKind::Polynomial { degree, ridge } => {
                    OpModel::Poly(PolynomialRegressor::fit(&xs, &ys, degree, ridge))
                }
                EstimatorKind::NearestNeighbor => OpModel::Nearest(LookupTable::new(
                    xs.iter().copied().zip(ys.iter().copied()).collect(),
                )),
                EstimatorKind::LinearInterpolation => OpModel::Linear(LookupTable::new(
                    xs.iter().copied().zip(ys.iter().copied()).collect(),
                )),
            };
            models.insert(op, model);
            ranges.insert(op, (lo, hi));
        }
        RuntimeEstimator {
            kind,
            models,
            ranges,
        }
    }

    /// The regression family used.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Operators the estimator can predict.
    pub fn operators(&self) -> impl Iterator<Item = Operator> + '_ {
        self.models.keys().copied()
    }

    /// Predicts the single-execution time for `op` at `feature`, clamping
    /// into the profiled range.
    ///
    /// # Panics
    ///
    /// Panics if the operator was never profiled — a model-onboarding bug.
    pub fn predict(&self, op: Operator, feature: f64) -> f64 {
        let model = self.models.get(&op).unwrap_or_else(|| {
            panic!("operator {op} was not profiled; regenerate the profiling plan")
        });
        let (lo, hi) = self.ranges[&op];
        let clamped = feature.clamp(lo, hi);
        model.predict(clamped).max(0.0)
    }
}

impl RuntimePredictor for RuntimeEstimator {
    fn op_time(&self, inv: &OpInvocation) -> f64 {
        self.predict(inv.op, inv.input.feature())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_hardware::{GpuSku, KernelOracle};
    use vidur_model::parallelism::ParallelismConfig;
    use vidur_model::spec::ModelSpec;
    use vidur_profiler::{ProfileCollector, ProfilingPlan};

    fn trained(kind: EstimatorKind) -> (RuntimeEstimator, KernelOracle, ProfilingPlan) {
        let model = ModelSpec::llama2_7b();
        let par = ParallelismConfig::serial();
        let plan = ProfilingPlan::with_limits(&model, &par, 4096, 1 << 18);
        let oracle = KernelOracle::new(GpuSku::a100_80g());
        let collector = ProfileCollector::new(oracle.clone());
        let table = collector.collect(&plan, &mut SimRng::new(1));
        (RuntimeEstimator::train(&table, kind, 7), oracle, plan)
    }

    /// Mean absolute percentage error of the estimator against the oracle on
    /// off-grid probe invocations.
    fn probe_mape(est: &RuntimeEstimator, oracle: &KernelOracle) -> f64 {
        use vidur_model::operators::OpInput;
        let mut errs = Vec::new();
        // Off-grid token counts (none are powers of two or sample knots).
        for m in [37u64, 211, 733, 1531, 2897, 3803] {
            let inv = OpInvocation::new(
                Operator::MlpUpProj,
                OpInput::Matmul {
                    m,
                    k: 4096,
                    n: 11008,
                },
                1,
            );
            let truth = oracle.op_time(&inv);
            errs.push((est.op_time(&inv) - truth).abs() / truth);
            let inv = OpInvocation::new(
                Operator::AttnPrefill,
                OpInput::AttentionPrefill {
                    equiv_len: m,
                    q_heads: 32,
                    head_dim: 128,
                },
                1,
            );
            let truth = oracle.op_time(&inv);
            errs.push((est.op_time(&inv) - truth).abs() / truth);
            let kv_bytes = m * 524_288; // m kv tokens/layer-ish
            let inv = OpInvocation::new(
                Operator::AttnDecode,
                OpInput::AttentionDecode {
                    kv_bytes,
                    tokens: 16,
                },
                1,
            );
            let truth = oracle.op_time(&inv);
            errs.push((est.op_time(&inv) - truth).abs() / truth);
        }
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    #[test]
    fn forest_interpolates_accurately() {
        let (est, oracle, _) = trained(EstimatorKind::default());
        let mape = probe_mape(&est, &oracle);
        assert!(mape < 0.06, "forest MAPE {mape}");
    }

    #[test]
    fn forest_beats_polynomial() {
        let (forest, oracle, _) = trained(EstimatorKind::default());
        let (poly, _, _) = trained(EstimatorKind::Polynomial {
            degree: 3,
            ridge: 1e-8,
        });
        let f_err = probe_mape(&forest, &oracle);
        let p_err = probe_mape(&poly, &oracle);
        assert!(
            f_err < p_err,
            "forest {f_err} should beat polynomial {p_err}"
        );
    }

    #[test]
    fn linear_interp_is_competitive() {
        let (est, oracle, _) = trained(EstimatorKind::LinearInterpolation);
        let mape = probe_mape(&est, &oracle);
        assert!(mape < 0.10, "linear MAPE {mape}");
    }

    #[test]
    fn covers_all_profiled_operators() {
        let (est, oracle, plan) = trained(EstimatorKind::default());
        for inv in plan.points() {
            let t = est.op_time(inv);
            assert!(t.is_finite() && t >= 0.0);
            let truth = oracle.op_time(inv);
            // At profiled knots the estimate is close to truth.
            let rel = (t - truth).abs() / truth;
            assert!(rel < 0.25, "{}: rel {rel}", inv.op);
        }
    }

    #[test]
    fn out_of_range_features_clamp() {
        let (est, _, _) = trained(EstimatorKind::default());
        let at_max = est.predict(Operator::QkvProj, 4096.0);
        let beyond = est.predict(Operator::QkvProj, 1e12);
        assert_eq!(at_max, beyond);
    }

    #[test]
    #[should_panic(expected = "not profiled")]
    fn unprofiled_operator_panics() {
        let (est, _, _) = trained(EstimatorKind::default());
        // TP1 profile has no AllReduce points.
        est.predict(Operator::AllReduce, 1024.0);
    }

    #[test]
    fn training_is_deterministic() {
        let (a, _, _) = trained(EstimatorKind::default());
        let (b, _, _) = trained(EstimatorKind::default());
        assert_eq!(a, b);
    }

    #[test]
    fn kind_display() {
        assert_eq!(EstimatorKind::default().to_string(), "random-forest");
        assert_eq!(
            EstimatorKind::Polynomial {
                degree: 3,
                ridge: 0.0
            }
            .to_string(),
            "polynomial-deg3"
        );
    }
}
