//! CART regression trees over a scalar feature.
//!
//! Trees split greedily on the threshold minimizing the summed squared error
//! of the two children, recursing until a depth or leaf-size floor. On the
//! piecewise-smooth runtime curves the hardware produces (staircase jumps at
//! tile boundaries, kernel-selection quirks at size-bucket boundaries) a
//! tree places its splits exactly at the discontinuities — the property that
//! makes forests fit these curves where polynomials cannot (paper §4.4).

use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: u32,
    /// Minimum training samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 14,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree.
///
/// # Example
///
/// ```
/// use vidur_estimator::{RegressionTree, TreeConfig};
/// // A step function: 1.0 below 50, 2.0 above.
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| if x < 50.0 { 1.0 } else { 2.0 }).collect();
/// let tree = RegressionTree::fit(&xs, &ys, TreeConfig::default());
/// assert_eq!(tree.predict(10.0), 1.0);
/// assert_eq!(tree.predict(90.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to `(xs, ys)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty, have different lengths, or contain
    /// NaN.
    pub fn fit(xs: &[f64], ys: &[f64], config: TreeConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "feature/target length mismatch");
        assert!(!xs.is_empty(), "cannot fit a tree to zero samples");
        assert!(
            xs.iter().chain(ys.iter()).all(|v| !v.is_nan()),
            "NaN in training data"
        );
        // Sort once; recursion then works on contiguous index ranges.
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN"));
        let sx: Vec<f64> = order.iter().map(|&i| xs[i]).collect();
        let sy: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        // Prefix sums for O(1) SSE of any range.
        let mut pre_y = vec![0.0; sx.len() + 1];
        let mut pre_y2 = vec![0.0; sx.len() + 1];
        for i in 0..sx.len() {
            pre_y[i + 1] = pre_y[i] + sy[i];
            pre_y2[i + 1] = pre_y2[i] + sy[i] * sy[i];
        }
        let mut nodes = Vec::new();
        build(&sx, &pre_y, &pre_y2, 0, sx.len(), 0, config, &mut nodes);
        let _ = sy; // targets are fully captured by the prefix sums
        RegressionTree { nodes }
    }

    /// Predicts the target for feature `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let mut idx = 0usize;
        loop {
            match self.nodes[idx] {
                Node::Leaf { value } => return value,
                Node::Split {
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

/// Builds a subtree over the sorted range `[lo, hi)`; returns its node index.
#[allow(clippy::too_many_arguments)]
fn build(
    sx: &[f64],
    pre_y: &[f64],
    pre_y2: &[f64],
    lo: usize,
    hi: usize,
    depth: u32,
    config: TreeConfig,
    nodes: &mut Vec<Node>,
) -> u32 {
    let n = hi - lo;
    let range_sum = pre_y[hi] - pre_y[lo];
    let mean = range_sum / n as f64;
    let sse = |a: usize, b: usize| -> f64 {
        let cnt = (b - a) as f64;
        if cnt == 0.0 {
            return 0.0;
        }
        let s = pre_y[b] - pre_y[a];
        let s2 = pre_y2[b] - pre_y2[a];
        s2 - s * s / cnt
    };
    let make_leaf = |nodes: &mut Vec<Node>| -> u32 {
        nodes.push(Node::Leaf { value: mean });
        (nodes.len() - 1) as u32
    };
    if depth >= config.max_depth || n < 2 * config.min_samples_leaf || n < 2 {
        return make_leaf(nodes);
    }
    // Best split position: i means left = [lo, i), right = [i, hi).
    let mut best: Option<(usize, f64)> = None;
    let parent_sse = sse(lo, hi);
    for i in (lo + config.min_samples_leaf)..=(hi - config.min_samples_leaf) {
        if i == lo || i == hi {
            continue;
        }
        // Cannot split between identical feature values.
        if sx[i - 1] == sx[i] {
            continue;
        }
        let total = sse(lo, i) + sse(i, hi);
        if best.is_none_or(|(_, b)| total < b) {
            best = Some((i, total));
        }
    }
    match best {
        Some((i, total)) if total < parent_sse - 1e-18 => {
            let threshold = 0.5 * (sx[i - 1] + sx[i]);
            let node_idx = nodes.len() as u32;
            nodes.push(Node::Leaf { value: mean }); // placeholder
            let left = build(sx, pre_y, pre_y2, lo, i, depth + 1, config, nodes);
            let right = build(sx, pre_y, pre_y2, i, hi, depth + 1, config, nodes);
            nodes[node_idx as usize] = Node::Split {
                threshold,
                left,
                right,
            };
            node_idx
        }
        _ => make_leaf(nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fits_constant() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(t.predict(0.0), 5.0);
        assert_eq!(t.predict(10.0), 5.0);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn fits_linear_within_resolution() {
        let xs: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 1.0).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        for &x in &[10.0, 100.0, 200.0] {
            let err = (t.predict(x) - (3.0 * x + 1.0)).abs();
            assert!(err < 3.0, "x={x} err={err}");
        }
    }

    #[test]
    fn finds_step_discontinuity() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 63.5 { 10.0 } else { 20.0 })
            .collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 2,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(t.predict(63.0), 10.0);
        assert_eq!(t.predict(64.0), 20.0);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 20,
                min_samples_leaf: 5,
            },
        );
        assert!(t.leaf_count() <= 2);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeConfig {
                max_depth: 0,
                min_samples_leaf: 1,
            },
        );
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(2.0), 2.5);
    }

    #[test]
    fn duplicate_features_do_not_split() {
        let xs = [1.0, 1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(1.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        RegressionTree::fit(&[], &[], TreeConfig::default());
    }

    #[test]
    fn extrapolates_edge_leaves() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.clone();
        let t = RegressionTree::fit(&xs, &ys, TreeConfig::default());
        // Outside the training range, predictions clamp to edge leaves.
        assert!(t.predict(-100.0) <= 1.0);
        assert!(t.predict(1000.0) >= 62.0);
    }

    proptest! {
        #[test]
        fn training_points_fit_well(
            pts in proptest::collection::vec((0.0f64..1e4, 0.0f64..1.0), 2..64)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let t = RegressionTree::fit(&xs, &ys, TreeConfig {
                max_depth: 32,
                min_samples_leaf: 1,
            });
            // With unlimited depth each distinct x gets its own leaf; the
            // prediction equals the mean of ys at that x.
            for (i, &x) in xs.iter().enumerate() {
                let same: Vec<f64> = xs.iter().zip(&ys)
                    .filter(|(xx, _)| **xx == x)
                    .map(|(_, y)| *y)
                    .collect();
                let mean = same.iter().sum::<f64>() / same.len() as f64;
                prop_assert!((t.predict(x) - mean).abs() < 1e-9,
                    "i={i} x={x} pred={} mean={mean}", t.predict(x));
            }
        }

        #[test]
        fn predictions_within_target_range(
            pts in proptest::collection::vec((0.0f64..1e4, -5.0f64..5.0), 1..64),
            probe in -1e5f64..1e5,
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let t = RegressionTree::fit(&xs, &ys, TreeConfig::default());
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let p = t.predict(probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
