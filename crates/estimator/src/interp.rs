//! Lookup-table baselines: nearest neighbor and piecewise-linear
//! interpolation over the profiled points.
//!
//! These are the "profile and replay" strategies prior DNN simulators use.
//! They are exact at profiled sizes but their behaviour between samples
//! (constant vs linear) misses quantization staircases; the estimator
//! ablation bench compares them against the random forest.

use serde::{Deserialize, Serialize};

/// A sorted `(x, y)` table supporting nearest and linear lookups.
///
/// # Example
///
/// ```
/// use vidur_estimator::interp::LookupTable;
/// let t = LookupTable::new(vec![(0.0, 0.0), (10.0, 100.0)]);
/// assert_eq!(t.nearest(2.0), 0.0);
/// assert_eq!(t.nearest(9.0), 100.0);
/// assert_eq!(t.linear(5.0), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    points: Vec<(f64, f64)>,
}

impl LookupTable {
    /// Creates a table from `(x, y)` pairs; sorts and deduplicates by `x`
    /// (keeping the mean `y` of duplicates).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains NaN.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "lookup table needs at least one point");
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "non-finite points"
        );
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        let mut i = 0;
        while i < points.len() {
            let x = points[i].0;
            let mut sum = 0.0;
            let mut cnt = 0.0;
            while i < points.len() && points[i].0 == x {
                sum += points[i].1;
                cnt += 1.0;
                i += 1;
            }
            merged.push((x, sum / cnt));
        }
        LookupTable { points: merged }
    }

    /// Index of the last point with `x <= probe`, or `None` if probe is
    /// before the first point.
    fn partition(&self, probe: f64) -> Option<usize> {
        match self
            .points
            .binary_search_by(|(x, _)| x.partial_cmp(&probe).expect("no NaN"))
        {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Nearest-neighbor lookup.
    pub fn nearest(&self, probe: f64) -> f64 {
        match self.partition(probe) {
            None => self.points[0].1,
            Some(i) if i + 1 == self.points.len() => self.points[i].1,
            Some(i) => {
                let (x0, y0) = self.points[i];
                let (x1, y1) = self.points[i + 1];
                if probe - x0 <= x1 - probe {
                    y0
                } else {
                    y1
                }
            }
        }
    }

    /// Piecewise-linear interpolation, clamped at the ends.
    pub fn linear(&self, probe: f64) -> f64 {
        match self.partition(probe) {
            None => self.points[0].1,
            Some(i) if i + 1 == self.points.len() => self.points[i].1,
            Some(i) => {
                let (x0, y0) = self.points[i];
                let (x1, y1) = self.points[i + 1];
                if x1 == x0 {
                    return y0;
                }
                let f = (probe - x0) / (x1 - x0);
                y0 * (1.0 - f) + y1 * f
            }
        }
    }

    /// Number of (deduplicated) points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the table is empty (cannot happen after `new`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_at_knots() {
        let t = LookupTable::new(vec![(1.0, 10.0), (2.0, 20.0), (5.0, 50.0)]);
        assert_eq!(t.linear(1.0), 10.0);
        assert_eq!(t.linear(5.0), 50.0);
        assert_eq!(t.nearest(2.0), 20.0);
    }

    #[test]
    fn clamps_outside_range() {
        let t = LookupTable::new(vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(t.linear(0.0), 10.0);
        assert_eq!(t.linear(99.0), 20.0);
        assert_eq!(t.nearest(-5.0), 10.0);
        assert_eq!(t.nearest(99.0), 20.0);
    }

    #[test]
    fn duplicates_average() {
        let t = LookupTable::new(vec![(1.0, 10.0), (1.0, 30.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest(1.0), 20.0);
    }

    #[test]
    fn nearest_picks_closer_knot() {
        let t = LookupTable::new(vec![(0.0, 1.0), (10.0, 2.0)]);
        assert_eq!(t.nearest(4.9), 1.0);
        assert_eq!(t.nearest(5.1), 2.0);
    }

    #[test]
    fn single_point_table() {
        let t = LookupTable::new(vec![(3.0, 7.0)]);
        assert_eq!(t.linear(0.0), 7.0);
        assert_eq!(t.linear(100.0), 7.0);
    }

    proptest! {
        #[test]
        fn linear_within_neighbor_bounds(
            pts in proptest::collection::vec((0.0f64..1e4, 0.0f64..1.0), 2..32),
            probe in 0.0f64..1e4,
        ) {
            let t = LookupTable::new(pts);
            let v = t.linear(probe);
            // Must lie within the overall y-range (piecewise linear).
            let lo = t.points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let hi = t.points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
