//! Polynomial ridge regression — the baseline the paper rejects (§4.4:
//! "simple polynomial regression does not capture the non-linear runtime
//! characteristics of CUDA kernels due to phenomenons like tile and wave
//! quantization"). Kept for the estimator ablation bench.

use serde::{Deserialize, Serialize};

/// A fitted polynomial ridge regressor over a normalized scalar feature.
///
/// # Example
///
/// ```
/// use vidur_estimator::poly::PolynomialRegressor;
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 3.0).collect();
/// let p = PolynomialRegressor::fit(&xs, &ys, 2, 1e-9);
/// assert!((p.predict(50.0) - 103.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolynomialRegressor {
    /// Coefficients, constant term first.
    coeffs: Vec<f64>,
    /// Feature shift (mean) for conditioning.
    x_shift: f64,
    /// Feature scale (std) for conditioning.
    x_scale: f64,
}

impl PolynomialRegressor {
    /// Fits a degree-`degree` polynomial with L2 penalty `ridge` on the
    /// normalized feature.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/mismatched, contain NaN, or `degree` is 0
    /// with an empty target.
    pub fn fit(xs: &[f64], ys: &[f64], degree: usize, ridge: f64) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit to zero samples");
        assert!(
            xs.iter().chain(ys.iter()).all(|v| v.is_finite()),
            "non-finite training data"
        );
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let scale = var.sqrt().max(1e-12);
        let k = degree + 1;
        // Normal equations: (X^T X + ridge I) w = X^T y.
        let mut xtx = vec![vec![0.0; k]; k];
        let mut xty = vec![0.0; k];
        for (&x, &y) in xs.iter().zip(ys) {
            let z = (x - mean) / scale;
            let mut pow = vec![1.0; k];
            for d in 1..k {
                pow[d] = pow[d - 1] * z;
            }
            for i in 0..k {
                xty[i] += pow[i] * y;
                for j in 0..k {
                    xtx[i][j] += pow[i] * pow[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let coeffs = solve(xtx, xty);
        PolynomialRegressor {
            coeffs,
            x_shift: mean,
            x_scale: scale,
        }
    }

    /// Predicts the target at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let z = (x - self.x_shift) / self.x_scale;
        let mut acc = 0.0;
        let mut pow = 1.0;
        for &c in &self.coeffs {
            acc += c * pow;
            pow *= z;
        }
        acc
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(
            diag.abs() > 1e-300,
            "singular system; increase ridge penalty"
        );
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            let (upper, lower) = a.split_at_mut(row);
            let pivot_row = &upper[col];
            for (cell, &pivot) in lower[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_quadratic_exactly() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x * x - 2.0 * x + 7.0).collect();
        let p = PolynomialRegressor::fit(&xs, &ys, 2, 1e-10);
        for &x in &[5.0, 20.0, 45.0] {
            let truth = 0.5 * x * x - 2.0 * x + 7.0;
            assert!((p.predict(x) - truth).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn cannot_fit_staircase() {
        // The whole point: a cubic underfits a staircase badly.
        let staircase = |x: f64| ((x / 64.0).ceil()).max(1.0);
        let xs: Vec<f64> = (1..512).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| staircase(x)).collect();
        let p = PolynomialRegressor::fit(&xs, &ys, 3, 1e-8);
        // Near a jump the polynomial must smear across the discontinuity.
        let before = p.predict(64.0);
        let after = p.predict(65.0);
        assert!((after - before).abs() < 0.5, "polynomial can't step");
    }

    #[test]
    fn degree_reported() {
        let p = PolynomialRegressor::fit(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 1, 1e-9);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn constant_fit() {
        let p = PolynomialRegressor::fit(&[1.0, 2.0], &[4.0, 4.0], 0, 1e-9);
        // The ridge penalty biases the constant by O(ridge).
        assert!((p.predict(100.0) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ill_conditioned_features_survive_normalization() {
        // Features spanning 1..1e9 would blow up un-normalized Vandermonde.
        let xs: Vec<f64> = (0..40).map(|i| (i as f64 + 1.0) * 2.5e7).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e-12 * x + 3e-6).collect();
        let p = PolynomialRegressor::fit(&xs, &ys, 2, 1e-9);
        let probe = 5e8;
        let truth = 1e-12 * probe + 3e-6;
        assert!((p.predict(probe) - truth).abs() / truth < 0.01);
    }
}
