//! Bootstrap-aggregated random forests (paper §4.4).
//!
//! Each tree trains on a bootstrap resample of the profiled points; the
//! forest predicts the mean of its trees. Bagging turns the single tree's
//! high-variance piecewise fit into a smooth, noise-robust interpolator
//! while preserving the ability to model sharp discontinuities.

use crate::tree::{RegressionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: u32,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 24,
            tree: TreeConfig::default(),
        }
    }
}

/// A fitted random forest regressor.
///
/// # Example
///
/// ```
/// use vidur_estimator::{RandomForest, ForestConfig};
/// use vidur_core::rng::SimRng;
///
/// let xs: Vec<f64> = (0..128).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| x.sqrt()).collect();
/// let mut rng = SimRng::new(1);
/// let forest = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut rng);
/// let err = (forest.predict(64.0) - 8.0).abs();
/// assert!(err < 0.5, "{err}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits a forest to `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched (see
    /// [`RegressionTree::fit`]) or `config.num_trees == 0`.
    pub fn fit(xs: &[f64], ys: &[f64], config: ForestConfig, rng: &mut SimRng) -> Self {
        assert!(config.num_trees > 0, "forest needs at least one tree");
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        let n = xs.len();
        let mut trees = Vec::with_capacity(config.num_trees as usize);
        let mut bx = vec![0.0; n];
        let mut by = vec![0.0; n];
        for _ in 0..config.num_trees {
            for i in 0..n {
                let j = rng.next_below(n as u64) as usize;
                bx[i] = xs[j];
                by[i] = ys[j];
            }
            trees.push(RegressionTree::fit(&bx, &by, config.tree));
        }
        RandomForest { trees }
    }

    /// Predicts the mean of all trees at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn staircase(x: f64) -> f64 {
        // Tile-quantization-like curve: linear with 64-step jumps.
        let tiles = (x / 64.0).ceil().max(1.0);
        tiles * 64.0 * 1e-6 + 5e-6
    }

    #[test]
    fn fits_staircase_accurately() {
        let xs: Vec<f64> = (1..=2048).step_by(7).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| staircase(x)).collect();
        let mut rng = SimRng::new(42);
        let f = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut rng);
        let rels: Vec<f64> = (1..2048)
            .step_by(13)
            .map(|probe| {
                let x = probe as f64;
                (f.predict(x) - staircase(x)).abs() / staircase(x)
            })
            .collect();
        let mean = rels.iter().sum::<f64>() / rels.len() as f64;
        let max = rels.iter().cloned().fold(0.0, f64::max);
        // Probes falling between two training samples that straddle a step
        // are intrinsically ambiguous (the 7-step grid under-resolves the
        // 64-wide steps near x=64), so bound the mean tightly and the max
        // by one step height.
        assert!(mean < 0.02, "mean rel err {mean}");
        assert!(max < 0.55, "max rel err {max}");
    }

    #[test]
    fn robust_to_label_noise() {
        let mut rng = SimRng::new(7);
        let xs: Vec<f64> = (1..=512).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| staircase(x) * rng.log_normal(0.0, 0.02))
            .collect();
        let f = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut rng);
        let mid_err = (f.predict(256.0) - staircase(256.0)).abs() / staircase(256.0);
        assert!(mid_err < 0.05, "{mid_err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * 2.0).collect();
        let f1 = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut SimRng::new(5));
        let f2 = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut SimRng::new(5));
        assert_eq!(f1, f2);
    }

    #[test]
    fn single_tree_forest_works() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let cfg = ForestConfig {
            num_trees: 1,
            tree: TreeConfig::default(),
        };
        let f = RandomForest::fit(&xs, &ys, cfg, &mut SimRng::new(1));
        assert_eq!(f.num_trees(), 1);
        assert!(f.predict(2.5).is_finite());
    }

    proptest! {
        #[test]
        fn predictions_bounded_by_targets(
            pts in proptest::collection::vec((0.0f64..1e4, 0.1f64..10.0), 2..48),
            probe in 0.0f64..2e4,
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let f = RandomForest::fit(&xs, &ys, ForestConfig::default(), &mut SimRng::new(3));
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let p = f.predict(probe);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }
}
