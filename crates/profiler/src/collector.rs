//! The profile collector: executes a profiling plan against the hardware
//! oracle, averaging repeated noisy measurements per point.
//!
//! This is the stand-in for the paper's CUPTI measurement loop. Repeats
//! average away run-to-run variance (log-normal, ~1.5% sigma) so the
//! estimator trains on stable means — with few repeats, residual noise
//! propagates into prediction error, which the profiler-density ablation
//! bench quantifies.

use crate::plan::ProfilingPlan;
use crate::tables::{ProfilePoint, ProfileTable};
use vidur_core::rng::SimRng;
use vidur_hardware::KernelOracle;

/// Default number of repeated measurements per point.
pub const DEFAULT_REPEATS: u32 = 5;

/// Collects profile tables by measuring plan points on an oracle.
#[derive(Debug)]
pub struct ProfileCollector {
    oracle: KernelOracle,
    repeats: u32,
}

impl ProfileCollector {
    /// Creates a collector measuring each point [`DEFAULT_REPEATS`] times.
    pub fn new(oracle: KernelOracle) -> Self {
        Self::with_repeats(oracle, DEFAULT_REPEATS)
    }

    /// Creates a collector with an explicit repeat count.
    ///
    /// # Panics
    ///
    /// Panics if `repeats == 0`.
    pub fn with_repeats(oracle: KernelOracle, repeats: u32) -> Self {
        assert!(repeats > 0, "need at least one measurement per point");
        ProfileCollector { oracle, repeats }
    }

    /// The oracle measurements are taken against.
    pub fn oracle(&self) -> &KernelOracle {
        &self.oracle
    }

    /// Runs the plan, returning a sorted profile table.
    pub fn collect(&self, plan: &ProfilingPlan, rng: &mut SimRng) -> ProfileTable {
        let mut table = ProfileTable::new(
            plan.model_name(),
            plan.tensor_parallel(),
            self.oracle.sku().name.clone(),
        );
        for inv in plan.points() {
            let mut samples = Vec::with_capacity(self.repeats as usize);
            for _ in 0..self.repeats {
                samples.push(self.oracle.measure(inv, rng));
            }
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
            table.push(
                inv.op,
                ProfilePoint {
                    feature: inv.input.feature(),
                    mean_time: mean,
                    std_dev: var.sqrt(),
                    repeats: self.repeats,
                    input: inv.input,
                },
            );
        }
        table.sort();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vidur_hardware::GpuSku;
    use vidur_model::operators::Operator;
    use vidur_model::parallelism::ParallelismConfig;
    use vidur_model::runtime::RuntimePredictor;
    use vidur_model::spec::ModelSpec;

    fn small_plan() -> ProfilingPlan {
        ProfilingPlan::with_limits(
            &ModelSpec::llama2_7b(),
            &ParallelismConfig::serial(),
            256,
            4096,
        )
    }

    #[test]
    fn collect_covers_plan() {
        let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
        let mut rng = SimRng::new(1);
        let table = collector.collect(&small_plan(), &mut rng);
        assert_eq!(table.len(), small_plan().points().len());
        assert_eq!(table.model_name, "llama2-7b");
        assert_eq!(table.sku_name, "a100-80g");
    }

    #[test]
    fn means_approach_truth_with_repeats() {
        let oracle = KernelOracle::new(GpuSku::a100_80g());
        let plan = small_plan();
        let collector = ProfileCollector::with_repeats(oracle.clone(), 25);
        let mut rng = SimRng::new(2);
        let table = collector.collect(&plan, &mut rng);
        for inv in plan.points().iter().take(50) {
            let truth = oracle.op_time(inv);
            let measured = table
                .points_for(inv.op)
                .iter()
                .find(|p| p.input == inv.input)
                .unwrap()
                .mean_time;
            let rel = (measured / truth - 1.0).abs();
            assert!(rel < 0.02, "{}: rel err {rel}", inv.op);
        }
    }

    #[test]
    fn points_are_sorted_by_feature() {
        let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
        let mut rng = SimRng::new(3);
        let table = collector.collect(&small_plan(), &mut rng);
        for op in [Operator::QkvProj, Operator::AttnDecode] {
            let feats: Vec<f64> = table.points_for(op).iter().map(|p| p.feature).collect();
            assert!(feats.windows(2).all(|w| w[0] <= w[1]), "{op}: {feats:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let collector = ProfileCollector::new(KernelOracle::new(GpuSku::a100_80g()));
        let t1 = collector.collect(&small_plan(), &mut SimRng::new(7));
        let t2 = collector.collect(&small_plan(), &mut SimRng::new(7));
        assert_eq!(t1, t2);
    }

    #[test]
    fn std_dev_reflects_noise() {
        let collector = ProfileCollector::with_repeats(KernelOracle::new(GpuSku::a100_80g()), 20);
        let mut rng = SimRng::new(11);
        let table = collector.collect(&small_plan(), &mut rng);
        let noisy = table
            .points_for(Operator::QkvProj)
            .iter()
            .filter(|p| p.std_dev > 0.0)
            .count();
        assert!(noisy > 0, "repeated measurements must show spread");
    }
}
