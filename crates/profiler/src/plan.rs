//! Profiling plans: the minimal set of input sizes to measure per operator.
//!
//! Feature values are sampled densely at small sizes (where quantization
//! staircases and launch overheads dominate and curves bend) and
//! geometrically at large sizes (where curves are asymptotically linear or
//! quadratic). This mirrors the paper's "minimal data collection" goal: a
//! few hundred points per operator instead of the combinatorial batch space.

use serde::{Deserialize, Serialize};
use vidur_model::operators::{OpInput, OpInvocation, Operator};
use vidur_model::parallelism::ParallelismConfig;
use vidur_model::spec::ModelSpec;

/// Default maximum tokens per iteration to profile (vLLM/Orca cap is 4096).
pub const DEFAULT_MAX_TOKENS: u64 = 8192;

/// Default maximum KV tokens readable by one decode batch on a device.
pub const DEFAULT_MAX_KV_TOKENS: u64 = 1 << 20;

/// A profiling plan: every operator invocation to measure for one
/// (model, TP degree) pair on a SKU.
///
/// # Example
///
/// ```
/// use vidur_model::{ModelSpec, ParallelismConfig};
/// use vidur_profiler::ProfilingPlan;
///
/// let plan = ProfilingPlan::for_model(
///     &ModelSpec::llama2_7b(),
///     &ParallelismConfig::serial(),
/// );
/// // A few hundred points, not millions.
/// assert!(plan.points().len() > 200);
/// assert!(plan.points().len() < 5_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilingPlan {
    model_name: String,
    tensor_parallel: u32,
    points: Vec<OpInvocation>,
}

/// Domain-aware sample of feature sizes in `[1, max]`.
///
/// The placement encodes GPU knowledge the paper's profiler also exploits:
/// dense coverage at tiny sizes (launch-overhead regime), **tile-aligned**
/// samples at multiples of 64 up to 1024 and 256 up to 4096 (so regressors
/// see the tile-quantization staircase), then ~10% geometric growth where
/// curves are asymptotically smooth. Always includes `max`.
pub fn size_samples(max: u64) -> Vec<u64> {
    assert!(max >= 1);
    let mut out: Vec<u64> = Vec::new();
    let mut push = |v: u64| {
        if v <= max && out.last() != Some(&v) {
            out.push(v);
        }
    };
    for v in 1..=16u64 {
        push(v);
    }
    let mut v = 24u64;
    while v <= 64 {
        push(v);
        v += 8;
    }
    let mut v = 96u64;
    while v <= 1024 {
        push(v);
        v += 32;
    }
    let mut v = 1152u64;
    while v <= 4096 {
        push(v);
        v += 128;
    }
    let mut f = 4096.0 * 1.10f64;
    while (f as u64) < max {
        push(f as u64);
        f *= 1.10;
    }
    if out.last() != Some(&max) {
        out.push(max);
    }
    out
}

impl ProfilingPlan {
    /// Builds the plan for `model` sharded at `par`'s TP degree with default
    /// size caps.
    pub fn for_model(model: &ModelSpec, par: &ParallelismConfig) -> Self {
        Self::with_limits(model, par, DEFAULT_MAX_TOKENS, DEFAULT_MAX_KV_TOKENS)
    }

    /// Builds the plan with explicit token / KV-token caps.
    ///
    /// # Panics
    ///
    /// Panics if the parallelism configuration is invalid for the model.
    pub fn with_limits(
        model: &ModelSpec,
        par: &ParallelismConfig,
        max_tokens: u64,
        max_kv_tokens: u64,
    ) -> Self {
        par.validate_for(model).expect("invalid parallelism config");
        let d = model.embed_dim as u64;
        let dtype = model.dtype_bytes as u64;
        let q_dim = par.q_dim_per_device(model);
        let kv_dim = par.kv_dim_per_device(model);
        let mlp_dim = par.mlp_dim_per_device(model);
        let tp = par.tensor_parallel;

        let mut points = Vec::new();
        let tokens = size_samples(max_tokens);

        // Token-level matmuls: vary m, fixed (k, n) from the sharded spec.
        let matmul_dims: [(Operator, u64, u64); 5] = [
            (Operator::QkvProj, d, q_dim + 2 * kv_dim),
            (Operator::AttnOutProj, q_dim, d),
            (Operator::MlpUpProj, d, mlp_dim),
            (Operator::MlpGateProj, d, mlp_dim),
            (Operator::MlpDownProj, mlp_dim, d),
        ];
        for &(op, k, n) in &matmul_dims {
            if op == Operator::MlpGateProj && !model.gated_mlp {
                continue;
            }
            for &m in &tokens {
                points.push(OpInvocation::new(op, OpInput::Matmul { m, k, n }, 1));
            }
        }
        for &m in &tokens {
            points.push(OpInvocation::new(
                Operator::LmHead,
                OpInput::Matmul {
                    m,
                    k: d,
                    n: par.vocab_per_device(model),
                },
                1,
            ));
        }

        // Token-level pointwise ops.
        let pointwise_dims: [(Operator, u64); 7] = [
            (Operator::Embedding, d),
            (Operator::Rope, q_dim + kv_dim),
            (Operator::InputNorm, d),
            (Operator::PostAttnNorm, d),
            (Operator::ResidualAdd, d),
            (Operator::MlpActivation, mlp_dim),
            (Operator::FinalNorm, d),
        ];
        for &(op, width) in &pointwise_dims {
            for &t in &tokens {
                points.push(OpInvocation::new(
                    op,
                    OpInput::Pointwise { tokens: t, width },
                    1,
                ));
            }
        }
        for &t in &tokens {
            points.push(OpInvocation::new(
                Operator::KvCacheSave,
                OpInput::Pointwise {
                    tokens: t,
                    width: 2 * kv_dim,
                },
                1,
            ));
        }

        // Sequence-level: prefill attention over equivalent lengths up to
        // the model's context window (chunk history inflates the equivalent
        // length beyond max_position, so go 2x).
        let max_equiv = 2 * model.max_position_embeddings as u64;
        for &len in &size_samples(max_equiv) {
            points.push(OpInvocation::new(
                Operator::AttnPrefill,
                OpInput::AttentionPrefill {
                    equiv_len: len,
                    q_heads: par.q_heads_per_device(model),
                    head_dim: model.head_dim as u64,
                },
                1,
            ));
        }
        // Decode attention over total KV tokens read per layer.
        for &kv_tokens in &size_samples(max_kv_tokens) {
            let kv_bytes = kv_tokens * 2 * kv_dim * dtype;
            points.push(OpInvocation::new(
                Operator::AttnDecode,
                OpInput::AttentionDecode {
                    kv_bytes,
                    tokens: kv_tokens.min(512),
                },
                1,
            ));
        }

        // Communication: payloads up to max_tokens * d activations.
        if tp > 1 {
            for &t in &tokens {
                let bytes = t * d * dtype;
                points.push(OpInvocation::new(
                    Operator::AllReduce,
                    OpInput::Comm { bytes, world: tp },
                    1,
                ));
                points.push(OpInvocation::new(
                    Operator::AllGather,
                    OpInput::Comm { bytes, world: tp },
                    1,
                ));
            }
        }
        for &t in &tokens {
            let bytes = t * d * dtype;
            points.push(OpInvocation::new(
                Operator::SendRecv,
                OpInput::Comm { bytes, world: 2 },
                1,
            ));
        }

        ProfilingPlan {
            model_name: model.name.clone(),
            tensor_parallel: tp,
            points,
        }
    }

    /// The model this plan profiles.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The TP degree operators are sharded at.
    pub fn tensor_parallel(&self) -> u32 {
        self.tensor_parallel
    }

    /// Every invocation to measure.
    pub fn points(&self) -> &[OpInvocation] {
        &self.points
    }

    /// Operators covered by this plan.
    pub fn operators(&self) -> Vec<Operator> {
        let mut ops: Vec<Operator> = self.points.iter().map(|p| p.op).collect();
        ops.sort_unstable();
        ops.dedup();
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_samples_shape() {
        let s = size_samples(4096);
        assert_eq!(s[0], 1);
        assert!(s.contains(&16));
        // Tile-aligned knots are present so regressors see the staircase.
        assert!(s.contains(&128) && s.contains(&512) && s.contains(&1024));
        assert_eq!(*s.last().unwrap(), 4096);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(s.len() < 120, "sparse: {}", s.len());
    }

    #[test]
    fn size_samples_tiny_max() {
        assert_eq!(size_samples(1), vec![1]);
        let s = size_samples(10);
        assert_eq!(*s.last().unwrap(), 10);
    }

    #[test]
    fn plan_covers_all_op_classes() {
        let plan =
            ProfilingPlan::for_model(&ModelSpec::llama2_70b(), &ParallelismConfig::new(4, 1));
        let ops = plan.operators();
        assert!(ops.contains(&Operator::QkvProj));
        assert!(ops.contains(&Operator::AttnPrefill));
        assert!(ops.contains(&Operator::AttnDecode));
        assert!(ops.contains(&Operator::AllReduce));
        assert!(ops.contains(&Operator::SendRecv));
        assert!(ops.contains(&Operator::LmHead));
    }

    #[test]
    fn tp1_plan_has_no_tp_collectives() {
        let plan = ProfilingPlan::for_model(&ModelSpec::llama2_7b(), &ParallelismConfig::serial());
        let ops = plan.operators();
        assert!(!ops.contains(&Operator::AllReduce));
        assert!(!ops.contains(&Operator::AllGather));
        // SendRecv is still profiled so PP configs reuse the same table.
        assert!(ops.contains(&Operator::SendRecv));
    }

    #[test]
    fn ungated_model_skips_gate_proj() {
        let mut model = ModelSpec::llama2_7b();
        model.gated_mlp = false;
        let plan = ProfilingPlan::for_model(&model, &ParallelismConfig::serial());
        assert!(!plan.operators().contains(&Operator::MlpGateProj));
    }

    #[test]
    fn matmul_dims_are_sharded_by_tp() {
        let model = ModelSpec::llama2_70b();
        let plan = ProfilingPlan::for_model(&model, &ParallelismConfig::new(4, 1));
        let up = plan
            .points()
            .iter()
            .find(|p| p.op == Operator::MlpUpProj)
            .unwrap();
        match up.input {
            OpInput::Matmul { n, .. } => assert_eq!(n, 28672 / 4),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plan_size_is_bounded() {
        for model in ModelSpec::paper_models() {
            let plan = ProfilingPlan::for_model(&model, &ParallelismConfig::new(2, 1));
            assert!(
                plan.points().len() < 5_000,
                "{}: {}",
                model.name,
                plan.points().len()
            );
        }
    }
}
