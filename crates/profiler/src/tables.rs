//! Profile tables: the persisted output of a profiling run.
//!
//! A [`ProfileTable`] is keyed by operator and holds `(feature, mean time)`
//! samples plus measurement spread — everything the runtime estimator needs
//! to train, and the artifact a user would ship alongside a model onboarding
//! (paper Figure 2: "Compute Profiles").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vidur_model::operators::{OpInput, Operator};

/// One profiled data point for an operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilePoint {
    /// The scalar size feature (tokens, equivalent length, bytes...).
    pub feature: f64,
    /// Mean measured execution time in seconds.
    pub mean_time: f64,
    /// Standard deviation across repeated measurements.
    pub std_dev: f64,
    /// Number of repeated measurements averaged.
    pub repeats: u32,
    /// The full input descriptor measured (for audit/debug).
    pub input: OpInput,
}

/// All profiled points for one (model, TP degree, SKU) context.
///
/// # Example
///
/// ```
/// use vidur_profiler::{ProfilePoint, ProfileTable};
/// use vidur_model::operators::{OpInput, Operator};
///
/// let mut table = ProfileTable::new("llama2-7b", 1, "a100-80g");
/// table.push(Operator::QkvProj, ProfilePoint {
///     feature: 128.0,
///     mean_time: 42e-6,
///     std_dev: 1e-6,
///     repeats: 5,
///     input: OpInput::Matmul { m: 128, k: 4096, n: 12288 },
/// });
/// assert_eq!(table.points_for(Operator::QkvProj).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    /// Model the table was collected for.
    pub model_name: String,
    /// TP degree operators were sharded at.
    pub tensor_parallel: u32,
    /// SKU the measurements were taken on.
    pub sku_name: String,
    points: BTreeMap<Operator, Vec<ProfilePoint>>,
}

impl ProfileTable {
    /// Creates an empty table for a profiling context.
    pub fn new(
        model_name: impl Into<String>,
        tensor_parallel: u32,
        sku_name: impl Into<String>,
    ) -> Self {
        ProfileTable {
            model_name: model_name.into(),
            tensor_parallel,
            sku_name: sku_name.into(),
            points: BTreeMap::new(),
        }
    }

    /// Appends a measured point for `op`.
    pub fn push(&mut self, op: Operator, point: ProfilePoint) {
        self.points.entry(op).or_default().push(point);
    }

    /// The points collected for `op` (empty slice if none).
    pub fn points_for(&self, op: Operator) -> &[ProfilePoint] {
        self.points.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Operators present in the table.
    pub fn operators(&self) -> impl Iterator<Item = Operator> + '_ {
        self.points.keys().copied()
    }

    /// Total number of points across all operators.
    pub fn len(&self) -> usize {
        self.points.values().map(Vec::len).sum()
    }

    /// Returns `true` if no points were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts each operator's points by feature (training expects this).
    pub fn sort(&mut self) {
        for pts in self.points.values_mut() {
            pts.sort_by(|a, b| a.feature.partial_cmp(&b.feature).expect("no NaN features"));
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails (cannot happen
    /// for well-formed tables).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(f: f64) -> ProfilePoint {
        ProfilePoint {
            feature: f,
            mean_time: f * 1e-9,
            std_dev: 0.0,
            repeats: 3,
            input: OpInput::Pointwise {
                tokens: f as u64,
                width: 1,
            },
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = ProfileTable::new("m", 1, "a100-80g");
        t.push(Operator::Rope, point(1.0));
        t.push(Operator::Rope, point(2.0));
        assert_eq!(t.points_for(Operator::Rope).len(), 2);
        assert_eq!(t.points_for(Operator::LmHead).len(), 0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn sort_orders_by_feature() {
        let mut t = ProfileTable::new("m", 1, "a100-80g");
        t.push(Operator::Rope, point(5.0));
        t.push(Operator::Rope, point(1.0));
        t.push(Operator::Rope, point(3.0));
        t.sort();
        let feats: Vec<f64> = t
            .points_for(Operator::Rope)
            .iter()
            .map(|p| p.feature)
            .collect();
        assert_eq!(feats, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = ProfileTable::new("llama2-7b", 2, "h100-80g");
        t.push(Operator::AttnDecode, point(4096.0));
        let json = t.to_json().unwrap();
        let back = ProfileTable::from_json(&json).unwrap();
        assert_eq!(t, back);
    }
}
