//! # vidur-profiler
//!
//! The offline profiling phase of Vidur's model onboarding (paper §4.2–4.3,
//! Figure 2 steps 1–2).
//!
//! Profiling every possible input is infeasible — a batch mixes arbitrary
//! prefill chunks and decode tokens over arbitrary KV history. Instead, the
//! profiler exploits operator triage: each operator's runtime depends on a
//! *single* size feature (iteration tokens, equivalent prefill length, KV
//! bytes, or payload bytes). The [`plan`] module chooses a sparse,
//! geometrically-spaced set of feature values per operator; the [`collector`]
//! "measures" each point several times against the hardware oracle (our
//! CUPTI substitute) and records the averaged samples in a
//! [`tables::ProfileTable`] that the runtime estimator trains on.
//!
//! Because operator dimensions are derived from the declarative model spec
//! *after* TP sharding (paper §4.1 "Automatic Profiling for Parallelism
//! Strategies"), one profiling pass per (model, TP degree, SKU) covers every
//! pipeline-parallel and batching configuration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collector;
pub mod plan;
pub mod tables;

pub use collector::ProfileCollector;
pub use plan::ProfilingPlan;
pub use tables::{ProfilePoint, ProfileTable};
