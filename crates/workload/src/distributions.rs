//! Token-length distributions.
//!
//! Request lengths in real LLM traces are heavy-tailed; a log-normal
//! parameterized by its **median** and **P90** (the two quantiles Table 1
//! reports) matches the reported means within a few percent for all three
//! datasets.

use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;

/// z-score of the 90th percentile of the standard normal.
const Z90: f64 = 1.281_551_565_544_6;

/// A distribution over token counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDistribution {
    /// Every draw returns the same value.
    Fixed {
        /// The constant token count.
        value: u64,
    },
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest value.
        lo: u64,
        /// Largest value.
        hi: u64,
    },
    /// Log-normal specified by its median and 90th percentile.
    LogNormal {
        /// Median token count.
        median: f64,
        /// 90th-percentile token count (must exceed the median).
        p90: f64,
    },
}

impl LengthDistribution {
    /// Log-normal from Table 1 quantiles.
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `p90 <= median`.
    pub fn log_normal(median: f64, p90: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(p90 > median, "p90 must exceed the median");
        LengthDistribution::LogNormal { median, p90 }
    }

    /// Draws one token count (≥ 1).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let v = match *self {
            LengthDistribution::Fixed { value } => value,
            LengthDistribution::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted");
                lo + rng.next_below(hi - lo + 1)
            }
            LengthDistribution::LogNormal { median, p90 } => {
                let mu = median.ln();
                let sigma = (p90 / median).ln() / Z90;
                rng.log_normal(mu, sigma).round() as u64
            }
        };
        v.max(1)
    }

    /// The distribution's nominal median.
    pub fn median(&self) -> f64 {
        match *self {
            LengthDistribution::Fixed { value } => value as f64,
            LengthDistribution::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            LengthDistribution::LogNormal { median, .. } => median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantile(sorted: &[u64], q: f64) -> u64 {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }

    #[test]
    fn fixed_is_constant() {
        let d = LengthDistribution::Fixed { value: 7 };
        let mut rng = SimRng::new(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 7));
    }

    #[test]
    fn uniform_within_bounds() {
        let d = LengthDistribution::Uniform { lo: 10, hi: 20 };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn log_normal_hits_quantiles() {
        let d = LengthDistribution::log_normal(417.0, 1678.0);
        let mut rng = SimRng::new(3);
        let mut samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let med = quantile(&samples, 0.5) as f64;
        let p90 = quantile(&samples, 0.9) as f64;
        assert!((med / 417.0 - 1.0).abs() < 0.05, "median {med}");
        assert!((p90 / 1678.0 - 1.0).abs() < 0.05, "p90 {p90}");
    }

    #[test]
    fn samples_never_zero() {
        let d = LengthDistribution::log_normal(2.0, 10.0);
        let mut rng = SimRng::new(4);
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 1));
    }

    #[test]
    #[should_panic(expected = "p90 must exceed")]
    fn bad_quantiles_rejected() {
        LengthDistribution::log_normal(100.0, 50.0);
    }

    #[test]
    fn median_accessor() {
        assert_eq!(LengthDistribution::Fixed { value: 9 }.median(), 9.0);
        assert_eq!(LengthDistribution::log_normal(100.0, 300.0).median(), 100.0);
    }
}
