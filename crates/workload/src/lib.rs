//! # vidur-workload
//!
//! Vidur-Bench (paper §5): workload traces, arrival processes, and the
//! dataset statistics of Table 1.
//!
//! The paper builds traces from three public datasets with very different
//! shapes — LMSys-Chat-1M (chat: short mixed prompts, moderate decodes),
//! Arxiv-Summarization (long prompts, short summaries; P:D ≈ 15.7) and
//! Bilingual-Web-Book (translation: decode-heavy, P:D ≈ 0.65) — each capped
//! at 4096 total tokens. We cannot ship the datasets, so [`traces`] provides
//! **synthetic generators** with log-normal length marginals fitted to the
//! medians and P90s Table 1 reports, plus the same 4K cap (see DESIGN.md,
//! "Substitutions"). The simulator consumes only
//! `(prefill_tokens, decode_tokens, arrival)` tuples, so matching these
//! marginals reproduces each dataset's pressure on the serving stack.
//!
//! [`arrival`] supplies Poisson and Gamma arrival processes, the static
//! (all-at-once) mode used for the paper's offline-fidelity experiments
//! (Figure 3), and the production-traffic zoo: Markov-modulated Poisson
//! bursts, diurnal sinusoidal rate curves, and superposed multi-tenant
//! streams — all generated incrementally so million-request runs stay
//! bounded-memory.
//!
//! [`replay`] adds the line-oriented on-disk trace format with a streaming
//! loader and typed parse errors; [`traces`] adds multi-tenant trace
//! generation ([`MultiTenantWorkload`]) and derived-stat resampling
//! ([`Trace::amplify`]) for amplifying small real traces to millions of
//! requests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod distributions;
pub mod faults;
pub mod replay;
pub mod stats;
pub mod traces;

pub use arrival::{ArrivalIter, ArrivalProcess, ArrivalTimes};
pub use distributions::LengthDistribution;
pub use faults::{FaultAction, FaultError, FaultRecord, FaultSchedule};
pub use replay::{TraceError, TraceReader};
pub use stats::WorkloadStats;
pub use traces::{
    MultiTenantWorkload, TenantPrefixConfig, TenantStream, Trace, TracePrefix, TraceRequest,
    TraceWorkload, NO_PREFIX,
};
