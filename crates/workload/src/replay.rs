//! Trace replay: a line-oriented on-disk trace format with a streaming
//! loader.
//!
//! Production traces are plain text, one request per line, so they can be
//! produced with `awk` from any serving log and diffed in code review:
//!
//! ```text
//! #vidur-trace v1
//! # comments and blank lines are ignored
//! workload prod-us-east
//! tenant interactive
//! tenant batch
//! 0.25 417 139 interactive 0
//! 1.5  2730 167 batch 2
//! 3.75 100 10
//! ```
//!
//! * The first non-blank line must be the `#vidur-trace v1` magic (or
//!   `#vidur-trace v2`, below).
//! * `workload <name>` and `tenant <name>` directives must precede the
//!   first record; tenant declaration order assigns tenant ids.
//! * Records are whitespace-separated:
//!   `<arrival-secs> <prefill> <decode> [<tenant> [<priority>]]` — arrival
//!   timestamps are decimal seconds with nanosecond precision (parsed
//!   exactly, no float round-trip), must be non-decreasing, and lengths
//!   must be ≥ 1. Omitted tenant/priority default to the first tenant and
//!   priority 0.
//!
//! **Format v2** ([`TRACE_MAGIC_V2`]) adds shared-prefix metadata on top of
//! everything v1 allows:
//!
//! ```text
//! #vidur-trace v2
//! tenant interactive
//! prefix system-prompt 256
//! 0.25 417 139 interactive 0 0 256
//! 1.5  2730 167 interactive 0 - -
//! ```
//!
//! * `prefix <name> <tokens>` directives (after the tenants, before the
//!   first record); declaration order assigns prefix ids.
//! * Records gain two trailing columns `<prefix-id> <prefix-len>`, written
//!   as `- -` for prefix-free requests. `prefix-id` indexes the declared
//!   prefixes and `prefix-len` must satisfy
//!   1 ≤ len ≤ min(declared tokens, prefill).
//! * v1 files stay readable byte-for-byte — the v1 parse path is untouched,
//!   and a `prefix` line in a v1 file is rejected exactly as any unknown
//!   directive. The writer emits v1 whenever a trace declares no prefixes,
//!   so existing traces round-trip unchanged.
//!
//! Malformed input yields a typed [`TraceError`] carrying the 1-based line
//! number — the loader never panics. [`Trace::from_file`] /
//! [`Trace::to_file`] round-trip exactly for traces whose tenant table is
//! self-consistent (tenants declared, or fully-default single-tenant); the
//! one writer-side normalization is that undeclared tenant/priority usage
//! gets synthesized `tenant-<id>` declarations, which the reload then
//! carries in [`Trace::tenants`] (see [`Trace::to_writer`]).
//! [`TraceReader`] streams records one at a time so multi-gigabyte traces
//! never need to fit in memory (beyond whatever the caller retains).

use crate::traces::{Trace, TracePrefix, TraceRequest, NO_PREFIX};
use std::fmt;
use std::io::{BufRead, Write};
use vidur_core::time::SimTime;

/// Magic first line of a v1 trace file.
pub const TRACE_MAGIC: &str = "#vidur-trace v1";

/// Magic first line of a v2 trace file: everything v1 allows, plus
/// `prefix <name> <tokens>` directives and two extra record columns
/// `<prefix-id> <prefix-len>` (`- -` for prefix-free requests). v1 files
/// stay readable byte-for-byte; the writer emits v1 whenever a trace
/// declares no prefixes.
pub const TRACE_MAGIC_V2: &str = "#vidur-trace v2";

/// A typed trace-format error. Every parse variant carries the 1-based line
/// number of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io {
        /// File path (or `"<reader>"` for in-memory sources).
        path: String,
        /// The I/O error message.
        message: String,
    },
    /// The file does not start with [`TRACE_MAGIC`].
    MissingHeader {
        /// Line that should have been the magic.
        line: usize,
    },
    /// A malformed `workload` / `tenant` directive, a duplicate
    /// declaration, or a directive after the first record.
    Directive {
        /// Offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record with fewer than three fields.
    Truncated {
        /// Offending line.
        line: usize,
        /// Fields actually present.
        found: usize,
    },
    /// A record with more fields than its format version allows (five in
    /// v1, seven in v2).
    TooManyFields {
        /// Offending line.
        line: usize,
        /// Fields actually present.
        found: usize,
    },
    /// An unparseable or negative arrival timestamp.
    BadTimestamp {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
    /// An arrival earlier than the preceding record's.
    NonMonotonic {
        /// Offending line.
        line: usize,
    },
    /// An unparseable, negative, or zero token length.
    BadLength {
        /// Offending line.
        line: usize,
        /// Which length field (`"prefill"` or `"decode"`).
        field: &'static str,
        /// The raw field.
        value: String,
    },
    /// A record referencing an undeclared tenant.
    UnknownTenant {
        /// Offending line.
        line: usize,
        /// The tenant name as written.
        name: String,
    },
    /// An unparseable priority field.
    BadPriority {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
    /// An unparseable `prefix_id` field (v2 only; `-` means no prefix).
    BadPrefixId {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
    /// A record referencing an undeclared prefix index (v2 only).
    UnknownPrefix {
        /// Offending line.
        line: usize,
        /// The out-of-range prefix id.
        id: u64,
    },
    /// A `prefix_len` that is missing, unparseable, inconsistent with its
    /// `prefix_id` (`-` pairs only with `-`), zero, or larger than the
    /// declared prefix length or the record's prefill (v2 only).
    BadPrefixLen {
        /// Offending line.
        line: usize,
        /// The raw field (`"<missing>"` for a six-field record).
        value: String,
    },
    /// Serialization: a request's tenant index is outside the declared
    /// tenant list.
    TenantIndexOutOfRange {
        /// The out-of-range index.
        tenant: u32,
        /// Number of declared tenants.
        declared: usize,
    },
    /// Serialization: a request's prefix index is outside the declared
    /// prefix list.
    PrefixIndexOutOfRange {
        /// The out-of-range index.
        prefix: u64,
        /// Number of declared prefixes.
        declared: usize,
    },
    /// Serialization: a request's prefix length is zero or exceeds the
    /// declared prefix length or the request's prompt — writing it would
    /// produce a file the reader rejects.
    PrefixLenOutOfRange {
        /// The referenced prefix index.
        prefix: u64,
        /// The out-of-range length.
        len: u64,
        /// Largest length the reader would accept for this request.
        max: u64,
    },
    /// Serialization: a declared prefix the line format cannot represent
    /// (unwritable name, duplicate name, or zero tokens).
    UnwritablePrefix {
        /// The offending prefix name.
        name: String,
    },
    /// Serialization: a workload or tenant name that the line format cannot
    /// represent (empty, containing whitespace, or starting with `#`) —
    /// writing it would produce a file the reader rejects.
    UnwritableName {
        /// Which directive the name belongs to (`"workload"` or `"tenant"`).
        field: &'static str,
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, message } => write!(f, "{path}: {message}"),
            TraceError::MissingHeader { line } => {
                write!(f, "line {line}: expected `{TRACE_MAGIC}` header")
            }
            TraceError::Directive { line, message } => write!(f, "line {line}: {message}"),
            TraceError::Truncated { line, found } => write!(
                f,
                "line {line}: truncated record ({found} of at least 3 fields)"
            ),
            TraceError::TooManyFields { line, found } => {
                write!(f, "line {line}: too many fields ({found}, at most 5)")
            }
            TraceError::BadTimestamp { line, value } => {
                write!(f, "line {line}: bad arrival timestamp `{value}`")
            }
            TraceError::NonMonotonic { line } => {
                write!(f, "line {line}: arrival earlier than the previous record")
            }
            TraceError::BadLength { line, field, value } => {
                write!(f, "line {line}: bad {field} length `{value}` (need ≥ 1)")
            }
            TraceError::UnknownTenant { line, name } => {
                write!(f, "line {line}: unknown tenant `{name}`")
            }
            TraceError::BadPriority { line, value } => {
                write!(f, "line {line}: bad priority `{value}` (need 0..=255)")
            }
            TraceError::BadPrefixId { line, value } => {
                write!(
                    f,
                    "line {line}: bad prefix id `{value}` (need an index or `-`)"
                )
            }
            TraceError::UnknownPrefix { line, id } => {
                write!(f, "line {line}: unknown prefix id {id}")
            }
            TraceError::BadPrefixLen { line, value } => write!(
                f,
                "line {line}: bad prefix length `{value}` (need 1 ≤ len ≤ \
                 min(declared tokens, prefill))"
            ),
            TraceError::TenantIndexOutOfRange { tenant, declared } => write!(
                f,
                "tenant index {tenant} out of range ({declared} declared)"
            ),
            TraceError::PrefixIndexOutOfRange { prefix, declared } => write!(
                f,
                "prefix index {prefix} out of range ({declared} declared)"
            ),
            TraceError::PrefixLenOutOfRange { prefix, len, max } => write!(
                f,
                "prefix {prefix} length {len} out of range (need 1..={max})"
            ),
            TraceError::UnwritablePrefix { name } => write!(
                f,
                "prefix `{name}` cannot be written (needs a unique \
                 non-empty whitespace-free name not starting with `#`, and \
                 ≥ 1 tokens)"
            ),
            TraceError::UnwritableName { field, name } => write!(
                f,
                "{field} name `{name}` cannot be written (must be a \
                 non-empty whitespace-free token not starting with `#`)"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a decimal-seconds timestamp (`secs[.frac]`, ≤ 9 fraction digits)
/// into exact nanoseconds. No float round-trip, so formatting and parsing
/// are mutually inverse for every representable [`SimTime`].
pub(crate) fn parse_timestamp(s: &str) -> Option<u64> {
    let (secs, frac) = match s.split_once('.') {
        Some((s, f)) => (s, f),
        None => (s, ""),
    };
    if secs.is_empty() || frac.len() > 9 {
        return None;
    }
    if !secs.bytes().all(|b| b.is_ascii_digit()) || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let secs: u64 = secs.parse().ok()?;
    let mut nanos: u64 = 0;
    for (i, b) in frac.bytes().enumerate() {
        nanos += (b - b'0') as u64 * 10u64.pow(8 - i as u32);
    }
    secs.checked_mul(1_000_000_000)?.checked_add(nanos)
}

/// Formats nanoseconds as decimal seconds, trailing zeros trimmed.
pub(crate) fn format_timestamp(nanos: u64) -> String {
    let secs = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        return secs.to_string();
    }
    let mut s = format!("{secs}.{frac:09}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

/// Streaming trace reader: parses the header eagerly, then yields one
/// [`TraceRequest`] per record line. Ids are assigned sequentially in file
/// order.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    workload_name: String,
    tenants: Vec<String>,
    prefixes: Vec<TracePrefix>,
    /// True for a v2 file ([`TRACE_MAGIC_V2`]): prefix directives and the
    /// two prefix record columns are accepted. The v1 parse path is
    /// byte-for-byte the pre-v2 behavior.
    v2: bool,
    /// The first record line, consumed while scanning past the directives.
    pending: Option<(usize, String)>,
    line: usize,
    next_id: u64,
    last_arrival: SimTime,
    /// Set after an error or EOF; the iterator then stays finished.
    done: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Opens a trace stream: validates the magic and consumes the directive
    /// block (everything up to the first record).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure, a missing header, or a
    /// malformed directive.
    pub fn new(mut reader: R) -> Result<Self, TraceError> {
        let mut line_no = 0usize;
        let mut saw_magic = false;
        let mut v2 = false;
        let mut workload_name = String::new();
        let mut tenants: Vec<String> = Vec::new();
        let mut prefixes: Vec<TracePrefix> = Vec::new();
        let mut pending = None;
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).map_err(|e| TraceError::Io {
                path: "<reader>".to_string(),
                message: e.to_string(),
            })?;
            if n == 0 {
                if !saw_magic {
                    return Err(TraceError::MissingHeader { line: line_no + 1 });
                }
                break;
            }
            line_no += 1;
            let trimmed = line.trim();
            if !saw_magic {
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed == TRACE_MAGIC_V2 {
                    v2 = true;
                } else if trimmed != TRACE_MAGIC {
                    return Err(TraceError::MissingHeader { line: line_no });
                }
                saw_magic = true;
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            match fields.next() {
                Some("workload") => {
                    let name: Vec<&str> = fields.collect();
                    if name.len() != 1 {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: "`workload` takes exactly one name".to_string(),
                        });
                    }
                    if !workload_name.is_empty() {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: "duplicate `workload` directive".to_string(),
                        });
                    }
                    workload_name = name[0].to_string();
                }
                Some("tenant") => {
                    let name: Vec<&str> = fields.collect();
                    if name.len() != 1 {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: "`tenant` takes exactly one name".to_string(),
                        });
                    }
                    if tenants.iter().any(|t| t == name[0]) {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: format!("duplicate tenant `{}`", name[0]),
                        });
                    }
                    tenants.push(name[0].to_string());
                }
                // Only v2 knows the `prefix` directive; in a v1 file the
                // line falls through to the record branch and fails there,
                // exactly as any unknown directive always has.
                Some("prefix") if v2 => {
                    let rest: Vec<&str> = fields.collect();
                    if rest.len() != 2 {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: "`prefix` takes a name and a token count".to_string(),
                        });
                    }
                    if prefixes.iter().any(|p| p.name == rest[0]) {
                        return Err(TraceError::Directive {
                            line: line_no,
                            message: format!("duplicate prefix `{}`", rest[0]),
                        });
                    }
                    let tokens = match rest[1].parse::<u64>() {
                        Ok(t) if t >= 1 => t,
                        _ => {
                            return Err(TraceError::Directive {
                                line: line_no,
                                message: format!(
                                    "prefix `{}` needs a token count ≥ 1, got `{}`",
                                    rest[0], rest[1]
                                ),
                            });
                        }
                    };
                    prefixes.push(TracePrefix {
                        name: rest[0].to_string(),
                        tokens,
                    });
                }
                Some(_) => {
                    // First record: the directive block ends here.
                    pending = Some((line_no, trimmed.to_string()));
                    break;
                }
                None => unreachable!("non-empty trimmed line has a token"),
            }
        }
        Ok(TraceReader {
            reader,
            workload_name,
            tenants,
            prefixes,
            v2,
            pending,
            line: line_no,
            next_id: 0,
            last_arrival: SimTime::ZERO,
            done: false,
        })
    }

    /// The `workload` directive's name (empty if absent).
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }

    /// Declared tenant names in declaration (= id) order.
    pub fn tenants(&self) -> &[String] {
        &self.tenants
    }

    /// Declared shared prefixes in declaration (= id) order (always empty
    /// for v1 files).
    pub fn prefixes(&self) -> &[TracePrefix] {
        &self.prefixes
    }

    fn parse_record(&mut self, line_no: usize, line: &str) -> Result<TraceRequest, TraceError> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if matches!(fields.first(), Some(&"workload") | Some(&"tenant"))
            || (self.v2 && matches!(fields.first(), Some(&"prefix")))
        {
            return Err(TraceError::Directive {
                line: line_no,
                message: format!("`{}` directive after the first record", fields[0]),
            });
        }
        if fields.len() < 3 {
            return Err(TraceError::Truncated {
                line: line_no,
                found: fields.len(),
            });
        }
        let max_fields = if self.v2 { 7 } else { 5 };
        if fields.len() > max_fields {
            return Err(TraceError::TooManyFields {
                line: line_no,
                found: fields.len(),
            });
        }
        let nanos = parse_timestamp(fields[0]).ok_or_else(|| TraceError::BadTimestamp {
            line: line_no,
            value: fields[0].to_string(),
        })?;
        let arrival = SimTime::from_nanos(nanos);
        if arrival < self.last_arrival {
            return Err(TraceError::NonMonotonic { line: line_no });
        }
        let length = |field: &'static str, raw: &str| -> Result<u64, TraceError> {
            match raw.parse::<u64>() {
                Ok(v) if v >= 1 => Ok(v),
                _ => Err(TraceError::BadLength {
                    line: line_no,
                    field,
                    value: raw.to_string(),
                }),
            }
        };
        let prefill_tokens = length("prefill", fields[1])?;
        let decode_tokens = length("decode", fields[2])?;
        let tenant = match fields.get(3) {
            None => 0,
            Some(&name) => self.tenants.iter().position(|t| t == name).ok_or_else(|| {
                TraceError::UnknownTenant {
                    line: line_no,
                    name: name.to_string(),
                }
            })? as u32,
        };
        let priority = match fields.get(4) {
            None => 0,
            Some(&raw) => raw.parse::<u8>().map_err(|_| TraceError::BadPriority {
                line: line_no,
                value: raw.to_string(),
            })?,
        };
        let (prefix_id, prefix_len) = match (fields.get(5), fields.get(6)) {
            (None, _) => (NO_PREFIX, 0),
            (Some(_), None) => {
                return Err(TraceError::BadPrefixLen {
                    line: line_no,
                    value: "<missing>".to_string(),
                });
            }
            (Some(&"-"), Some(&"-")) => (NO_PREFIX, 0),
            (Some(&"-"), Some(&raw)) | (Some(&raw), Some(&"-")) => {
                return Err(TraceError::BadPrefixLen {
                    line: line_no,
                    value: raw.to_string(),
                });
            }
            (Some(&raw_id), Some(&raw_len)) => {
                let pid = raw_id.parse::<u64>().map_err(|_| TraceError::BadPrefixId {
                    line: line_no,
                    value: raw_id.to_string(),
                })?;
                if pid as usize >= self.prefixes.len() {
                    return Err(TraceError::UnknownPrefix {
                        line: line_no,
                        id: pid,
                    });
                }
                let max_len = self.prefixes[pid as usize].tokens.min(prefill_tokens);
                let len = match raw_len.parse::<u64>() {
                    Ok(l) if l >= 1 && l <= max_len => l,
                    _ => {
                        return Err(TraceError::BadPrefixLen {
                            line: line_no,
                            value: raw_len.to_string(),
                        });
                    }
                };
                (pid, len)
            }
        };
        self.last_arrival = arrival;
        let id = self.next_id;
        self.next_id += 1;
        Ok(TraceRequest {
            id,
            arrival,
            prefill_tokens,
            decode_tokens,
            tenant,
            priority,
            prefix_id,
            prefix_len,
        })
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRequest, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let (line_no, line) = if let Some(pending) = self.pending.take() {
            pending
        } else {
            loop {
                let mut line = String::new();
                match self.reader.read_line(&mut line) {
                    Err(e) => {
                        self.done = true;
                        return Some(Err(TraceError::Io {
                            path: "<reader>".to_string(),
                            message: e.to_string(),
                        }));
                    }
                    Ok(0) => {
                        self.done = true;
                        return None;
                    }
                    Ok(_) => {
                        self.line += 1;
                        let trimmed = line.trim();
                        if trimmed.is_empty() || trimmed.starts_with('#') {
                            continue;
                        }
                        break (self.line, trimmed.to_string());
                    }
                }
            }
        };
        let parsed = self.parse_record(line_no, &line);
        if parsed.is_err() {
            self.done = true;
        }
        Some(parsed)
    }
}

impl Trace {
    /// Parses a trace from any buffered reader (see the module docs for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered.
    pub fn from_reader<R: BufRead>(reader: R) -> Result<Trace, TraceError> {
        let mut tr = TraceReader::new(reader)?;
        let mut requests = Vec::new();
        for record in &mut tr {
            requests.push(record?);
        }
        Ok(Trace {
            workload_name: tr.workload_name,
            tenants: tr.tenants,
            prefixes: tr.prefixes,
            requests,
        })
    }

    /// Parses a trace from an in-memory string.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        Trace::from_reader(text.as_bytes())
    }

    /// Loads a trace file (streaming; the file is read once, line by line).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failure or malformed input.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Trace, TraceError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Trace::from_reader(std::io::BufReader::new(file)).map_err(|e| match e {
            TraceError::Io { message, .. } => TraceError::Io {
                path: path.display().to_string(),
                message,
            },
            other => other,
        })
    }

    /// Serializes this trace in the line-oriented format. Single-tenant,
    /// all-priority-0 traces write compact three-field records; anything
    /// else declares tenants and writes full five-field records. A trace
    /// that uses tenant indices or priorities without declaring tenants
    /// gets synthesized `tenant-<id>` declarations — the one lossy-upward
    /// normalization: reloading such a file yields the synthesized names in
    /// [`Trace::tenants`] (everything else round-trips exactly).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TenantIndexOutOfRange`] if a request's tenant
    /// index exceeds the declared tenant list,
    /// [`TraceError::UnwritableName`] if the workload or a tenant name is
    /// not representable in the line format (empty, whitespace, leading
    /// `#`), or an I/O error.
    pub fn to_writer<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        let io_err = |e: std::io::Error| TraceError::Io {
            path: "<writer>".to_string(),
            message: e.to_string(),
        };
        // Refuse names the reader cannot parse back: directive names are
        // single whitespace-delimited tokens, and record tenant fields
        // split on whitespace too.
        let writable = |n: &str| {
            !n.is_empty()
                && !n.starts_with('#')
                && n.split_whitespace().count() == 1
                && n.trim() == n
        };
        if !self.workload_name.is_empty() && !writable(&self.workload_name) {
            return Err(TraceError::UnwritableName {
                field: "workload",
                name: self.workload_name.clone(),
            });
        }
        if let Some(bad) = self.tenants.iter().find(|t| !writable(t)) {
            return Err(TraceError::UnwritableName {
                field: "tenant",
                name: bad.clone(),
            });
        }
        // Prefix ids must stay in range regardless of format version: a v1
        // trace (no declared prefixes) carrying a stray prefix id would
        // silently drop sharing on reload, so refuse to write it.
        if let Some(r) = self
            .requests
            .iter()
            .find(|r| r.prefix_id != NO_PREFIX && r.prefix_id as usize >= self.prefixes.len())
        {
            return Err(TraceError::PrefixIndexOutOfRange {
                prefix: r.prefix_id,
                declared: self.prefixes.len(),
            });
        }
        let v2 = !self.prefixes.is_empty();
        if v2 {
            for p in &self.prefixes {
                if !writable(&p.name)
                    || p.tokens == 0
                    || self.prefixes.iter().filter(|q| q.name == p.name).count() > 1
                {
                    return Err(TraceError::UnwritablePrefix {
                        name: p.name.clone(),
                    });
                }
            }
            for r in &self.requests {
                if r.prefix_id == NO_PREFIX {
                    continue;
                }
                let max = self.prefixes[r.prefix_id as usize]
                    .tokens
                    .min(r.prefill_tokens);
                if r.prefix_len == 0 || r.prefix_len > max {
                    return Err(TraceError::PrefixLenOutOfRange {
                        prefix: r.prefix_id,
                        len: r.prefix_len,
                        max,
                    });
                }
            }
        }
        let mut tenants = self.tenants.clone();
        // v2 records always carry all seven fields, so tenant names must
        // exist even for a single-tenant, all-priority-0 trace.
        if tenants.is_empty()
            && (v2
                || self
                    .requests
                    .iter()
                    .any(|r| r.tenant != 0 || r.priority != 0))
        {
            let max = self.requests.iter().map(|r| r.tenant).max().unwrap_or(0);
            tenants = (0..=max).map(|i| format!("tenant-{i}")).collect();
        }
        if let Some(r) = self
            .requests
            .iter()
            .find(|r| !tenants.is_empty() && r.tenant as usize >= tenants.len())
        {
            return Err(TraceError::TenantIndexOutOfRange {
                tenant: r.tenant,
                declared: tenants.len(),
            });
        }
        if v2 {
            writeln!(w, "{TRACE_MAGIC_V2}").map_err(io_err)?;
        } else {
            writeln!(w, "{TRACE_MAGIC}").map_err(io_err)?;
        }
        if !self.workload_name.is_empty() {
            writeln!(w, "workload {}", self.workload_name).map_err(io_err)?;
        }
        for t in &tenants {
            writeln!(w, "tenant {t}").map_err(io_err)?;
        }
        if v2 {
            for p in &self.prefixes {
                writeln!(w, "prefix {} {}", p.name, p.tokens).map_err(io_err)?;
            }
        }
        for r in &self.requests {
            let ts = format_timestamp(r.arrival.as_nanos());
            if v2 {
                if r.prefix_id == NO_PREFIX {
                    writeln!(
                        w,
                        "{ts} {} {} {} {} - -",
                        r.prefill_tokens, r.decode_tokens, tenants[r.tenant as usize], r.priority
                    )
                    .map_err(io_err)?;
                } else {
                    writeln!(
                        w,
                        "{ts} {} {} {} {} {} {}",
                        r.prefill_tokens,
                        r.decode_tokens,
                        tenants[r.tenant as usize],
                        r.priority,
                        r.prefix_id,
                        r.prefix_len
                    )
                    .map_err(io_err)?;
                }
            } else if tenants.is_empty() {
                writeln!(w, "{ts} {} {}", r.prefill_tokens, r.decode_tokens).map_err(io_err)?;
            } else {
                writeln!(
                    w,
                    "{ts} {} {} {} {}",
                    r.prefill_tokens, r.decode_tokens, tenants[r.tenant as usize], r.priority
                )
                .map_err(io_err)?;
            }
        }
        Ok(())
    }

    /// Writes this trace to `path` in the line-oriented format.
    ///
    /// # Errors
    ///
    /// See [`Trace::to_writer`].
    pub fn to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        let file = std::fs::File::create(path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        self.to_writer(std::io::BufWriter::new(file))
            .map_err(|e| match e {
                TraceError::Io { message, .. } => TraceError::Io {
                    path: path.display().to_string(),
                    message,
                },
                other => other,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_parse_and_format_are_inverse() {
        for nanos in [
            0u64,
            1,
            999_999_999,
            1_000_000_000,
            1_500_000_000,
            86_400_000_000_123,
            u64::from(u32::MAX) * 1_000_000_000 + 42,
        ] {
            let s = format_timestamp(nanos);
            assert_eq!(parse_timestamp(&s), Some(nanos), "{s}");
        }
        assert_eq!(format_timestamp(1_500_000_000), "1.5");
        assert_eq!(format_timestamp(2_000_000_000), "2");
        assert_eq!(parse_timestamp("0.250"), Some(250_000_000));
    }

    #[test]
    fn bad_timestamps_rejected() {
        for s in ["", ".", "-1", "1.0000000001", "1e3", "1.2.3", "abc"] {
            assert_eq!(parse_timestamp(s), None, "{s}");
        }
    }
}
