//! Workload statistics — the columns of the paper's Table 1.

use crate::traces::Trace;
use serde::{Deserialize, Serialize};

/// Table 1 statistics for a trace: prefill/decode token moments and the
/// prefill:decode ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of requests summarized.
    pub num_requests: usize,
    /// Mean prompt length.
    pub prefill_mean: f64,
    /// Median prompt length.
    pub prefill_median: f64,
    /// 90th-percentile prompt length.
    pub prefill_p90: f64,
    /// Mean output length.
    pub decode_mean: f64,
    /// Median output length.
    pub decode_median: f64,
    /// 90th-percentile output length.
    pub decode_p90: f64,
    /// Median per-request prefill:decode ratio.
    pub pd_ratio_median: f64,
    /// Standard deviation of the per-request P:D ratio.
    pub pd_ratio_std: f64,
}

fn quantile_u64(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

fn quantile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl WorkloadStats {
    /// Computes Table 1 statistics for a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn compute(trace: &Trace) -> WorkloadStats {
        assert!(!trace.is_empty(), "cannot summarize an empty trace");
        let mut prefills: Vec<u64> = trace.requests.iter().map(|r| r.prefill_tokens).collect();
        let mut decodes: Vec<u64> = trace.requests.iter().map(|r| r.decode_tokens).collect();
        let mut ratios: Vec<f64> = trace
            .requests
            .iter()
            .map(|r| r.prefill_tokens as f64 / r.decode_tokens as f64)
            .collect();
        prefills.sort_unstable();
        decodes.sort_unstable();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = trace.len() as f64;
        let mean_u = |v: &[u64]| v.iter().sum::<u64>() as f64 / n;
        let ratio_mean = ratios.iter().sum::<f64>() / n;
        let ratio_var = ratios.iter().map(|r| (r - ratio_mean).powi(2)).sum::<f64>() / n;
        WorkloadStats {
            num_requests: trace.len(),
            prefill_mean: mean_u(&prefills),
            prefill_median: quantile_u64(&prefills, 0.5),
            prefill_p90: quantile_u64(&prefills, 0.9),
            decode_mean: mean_u(&decodes),
            decode_median: quantile_u64(&decodes, 0.5),
            decode_p90: quantile_u64(&decodes, 0.9),
            pd_ratio_median: quantile_f64(&ratios, 0.5),
            pd_ratio_std: ratio_var.sqrt(),
        }
    }
}

impl std::fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} prefill(mean={:.0} med={:.0} p90={:.0}) decode(mean={:.0} med={:.0} p90={:.0}) P:D(med={:.2} std={:.2})",
            self.num_requests,
            self.prefill_mean,
            self.prefill_median,
            self.prefill_p90,
            self.decode_mean,
            self.decode_median,
            self.decode_p90,
            self.pd_ratio_median,
            self.pd_ratio_std,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::traces::TraceWorkload;
    use vidur_core::rng::SimRng;

    fn stats_for(w: &TraceWorkload, n: usize, seed: u64) -> WorkloadStats {
        let mut rng = SimRng::new(seed);
        let trace = w.generate(n, &ArrivalProcess::Static, &mut rng);
        WorkloadStats::compute(&trace)
    }

    #[test]
    fn chat_stats_near_table1() {
        let s = stats_for(&TraceWorkload::chat_1m(), 50_000, 1);
        // Table 1 (Chat-1M row): prefill 686/417/1678, decode 197/139/484,
        // P:D median 2.3. Allow 15% tolerance (cap interactions).
        assert!((s.prefill_median / 417.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.prefill_p90 / 1678.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.decode_median / 139.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.pd_ratio_median / 2.3 - 1.0).abs() < 0.35, "{s}");
    }

    #[test]
    fn arxiv_stats_near_table1() {
        let s = stats_for(&TraceWorkload::arxiv_4k(), 50_000, 2);
        // Table 1 (Arxiv-4K row): prefill 2588/2730/3702, decode 291/167/372.
        assert!((s.prefill_median / 2730.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.decode_median / 167.0 - 1.0).abs() < 0.15, "{s}");
        assert!(s.pd_ratio_median > 8.0, "{s}");
    }

    #[test]
    fn bwb_stats_near_table1() {
        let s = stats_for(&TraceWorkload::bwb_4k(), 50_000, 3);
        // Table 1 (BWB-4K row): prefill 1067/1037/1453, decode 1612/1601/2149,
        // P:D 0.65.
        assert!((s.prefill_median / 1037.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.decode_median / 1601.0 - 1.0).abs() < 0.15, "{s}");
        assert!((s.pd_ratio_median / 0.65 - 1.0).abs() < 0.25, "{s}");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let t = Trace {
            workload_name: "x".to_string(),
            tenants: Vec::new(),
            prefixes: Vec::new(),
            requests: Vec::new(),
        };
        WorkloadStats::compute(&t);
    }

    #[test]
    fn display_contains_fields() {
        let s = stats_for(&TraceWorkload::chat_1m(), 1_000, 4);
        let text = s.to_string();
        assert!(text.contains("prefill"));
        assert!(text.contains("P:D"));
    }
}
