//! Fault schedules: a line-oriented on-disk format for replica fault
//! injection, plus a seeded random generator.
//!
//! A fault schedule is the workload-side twin of a trace: it says *what
//! happens to the fleet* while the trace says what happens to the queue.
//! Like traces, schedules are plain text so they can be produced from any
//! incident log and diffed in code review:
//!
//! ```text
//! #vidur-faults v1
//! # comments and blank lines are ignored
//! 120      crash   2
//! 180.5    recover 2
//! 300      slow    0 1.8
//! 420      restore 0
//! 900      drain   3
//! ```
//!
//! * The first non-blank line must be the `#vidur-faults v1` magic.
//! * Records are whitespace-separated:
//!   `<at-secs> <action> <replica> [<multiplier>]` — timestamps are decimal
//!   seconds with nanosecond precision (parsed exactly, no float
//!   round-trip) and must be non-decreasing.
//! * Actions: `crash` (hard failure: everything on the replica requeues),
//!   `recover` (begin warm-up; the replica becomes routable after the
//!   warm-up delay), `slow <mult>` (straggler episode: stage times scale by
//!   `mult` ≥ 1 until restored), `restore` (end a straggler episode), and
//!   `drain` (graceful: queued work migrates, running work finishes).
//!
//! Malformed input yields a typed [`FaultError`] carrying the 1-based line
//! number — the loader never panics, mirroring
//! [`replay`](crate::replay)'s contract for traces.

use crate::replay::{format_timestamp, parse_timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;

/// Magic first line of a fault-schedule file.
pub const FAULTS_MAGIC: &str = "#vidur-faults v1";

/// What a fault record does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Hard failure: in-flight and queued work requeues, KV blocks are
    /// reclaimed, and the replica leaves the routable set.
    Crash,
    /// Begin recovery: the replica warms up (model load + weight transfer)
    /// and becomes routable when warm-up completes.
    Recover,
    /// Straggler episode: the replica's stage times scale by the factor
    /// (≥ 1) until a [`FaultAction::Restore`].
    Slow(f64),
    /// End a straggler episode (stage-time multiplier back to 1).
    Restore,
    /// Graceful drain: queued work migrates through the routing tier,
    /// running work finishes, then the replica leaves the fleet.
    Drain,
}

/// One scheduled fault: at `at`, `action` happens to `replica`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// When the fault fires.
    pub at: SimTime,
    /// Global replica index the fault applies to.
    pub replica: u32,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, time-ordered list of replica faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Records in non-decreasing `at` order.
    pub records: Vec<FaultRecord>,
}

/// A typed fault-schedule error. Every parse variant carries the 1-based
/// line number of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// Underlying I/O failure.
    Io {
        /// File path (or `"<reader>"` for in-memory sources).
        path: String,
        /// The I/O error message.
        message: String,
    },
    /// The file does not start with [`FAULTS_MAGIC`].
    MissingHeader {
        /// Line that should have been the magic.
        line: usize,
    },
    /// A record with the wrong number of fields for its action.
    BadArity {
        /// Offending line.
        line: usize,
        /// Fields actually present.
        found: usize,
    },
    /// An unparseable or negative timestamp.
    BadTimestamp {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
    /// A timestamp earlier than the preceding record's.
    NonMonotonic {
        /// Offending line.
        line: usize,
    },
    /// An unknown action keyword.
    UnknownAction {
        /// Offending line.
        line: usize,
        /// The keyword as written.
        action: String,
    },
    /// An unparseable replica index.
    BadReplica {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
    /// An unparseable or < 1 straggler multiplier.
    BadMultiplier {
        /// Offending line.
        line: usize,
        /// The raw field.
        value: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Io { path, message } => write!(f, "{path}: {message}"),
            FaultError::MissingHeader { line } => {
                write!(f, "line {line}: expected `{FAULTS_MAGIC}` header")
            }
            FaultError::BadArity { line, found } => {
                write!(f, "line {line}: wrong field count ({found}) for record")
            }
            FaultError::BadTimestamp { line, value } => {
                write!(f, "line {line}: bad timestamp `{value}`")
            }
            FaultError::NonMonotonic { line } => {
                write!(f, "line {line}: timestamp earlier than the previous record")
            }
            FaultError::UnknownAction { line, action } => write!(
                f,
                "line {line}: unknown action `{action}` \
                 (expected crash/recover/slow/restore/drain)"
            ),
            FaultError::BadReplica { line, value } => {
                write!(f, "line {line}: bad replica index `{value}`")
            }
            FaultError::BadMultiplier { line, value } => {
                write!(f, "line {line}: bad multiplier `{value}` (need ≥ 1)")
            }
        }
    }
}

impl std::error::Error for FaultError {}

impl FaultSchedule {
    /// An empty schedule (no faults ever fire).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// True when the schedule contains no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Parses a schedule from a reader.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] on I/O failure or malformed input; see the
    /// module docs for the format.
    pub fn from_reader<R: BufRead>(mut reader: R) -> Result<Self, FaultError> {
        let mut line_no = 0usize;
        let mut saw_magic = false;
        let mut last_at = SimTime::ZERO;
        let mut records = Vec::new();
        loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).map_err(|e| FaultError::Io {
                path: "<reader>".to_string(),
                message: e.to_string(),
            })?;
            if n == 0 {
                if !saw_magic {
                    return Err(FaultError::MissingHeader { line: line_no + 1 });
                }
                return Ok(FaultSchedule { records });
            }
            line_no += 1;
            let trimmed = line.trim();
            if !saw_magic {
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed != FAULTS_MAGIC {
                    return Err(FaultError::MissingHeader { line: line_no });
                }
                saw_magic = true;
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() < 3 {
                return Err(FaultError::BadArity {
                    line: line_no,
                    found: fields.len(),
                });
            }
            let nanos = parse_timestamp(fields[0]).ok_or_else(|| FaultError::BadTimestamp {
                line: line_no,
                value: fields[0].to_string(),
            })?;
            let at = SimTime::from_nanos(nanos);
            if at < last_at {
                return Err(FaultError::NonMonotonic { line: line_no });
            }
            last_at = at;
            let replica: u32 = fields[2].parse().map_err(|_| FaultError::BadReplica {
                line: line_no,
                value: fields[2].to_string(),
            })?;
            let (action, arity) = match fields[1] {
                "crash" => (FaultAction::Crash, 3),
                "recover" => (FaultAction::Recover, 3),
                "restore" => (FaultAction::Restore, 3),
                "drain" => (FaultAction::Drain, 3),
                "slow" => {
                    if fields.len() != 4 {
                        return Err(FaultError::BadArity {
                            line: line_no,
                            found: fields.len(),
                        });
                    }
                    let mult: f64 = fields[3].parse().map_err(|_| FaultError::BadMultiplier {
                        line: line_no,
                        value: fields[3].to_string(),
                    })?;
                    if !mult.is_finite() || mult < 1.0 {
                        return Err(FaultError::BadMultiplier {
                            line: line_no,
                            value: fields[3].to_string(),
                        });
                    }
                    (FaultAction::Slow(mult), 4)
                }
                other => {
                    return Err(FaultError::UnknownAction {
                        line: line_no,
                        action: other.to_string(),
                    })
                }
            };
            if fields.len() != arity {
                return Err(FaultError::BadArity {
                    line: line_no,
                    found: fields.len(),
                });
            }
            records.push(FaultRecord {
                at,
                replica,
                action,
            });
        }
    }

    /// Parses a schedule from a string.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, FaultError> {
        Self::from_reader(text.as_bytes())
    }

    /// Loads a schedule from a file.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] on I/O failure or malformed input.
    pub fn from_file<P: AsRef<Path>>(path: P) -> Result<Self, FaultError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| FaultError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_reader(std::io::BufReader::new(file))
    }

    /// Writes the schedule in the line format; parsing the output yields an
    /// equal schedule.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError::Io`] on write failure.
    pub fn to_writer<W: Write>(&self, mut w: W) -> Result<(), FaultError> {
        let io_err = |e: std::io::Error| FaultError::Io {
            path: "<writer>".to_string(),
            message: e.to_string(),
        };
        writeln!(w, "{FAULTS_MAGIC}").map_err(io_err)?;
        for rec in &self.records {
            let at = format_timestamp(rec.at.as_nanos());
            match rec.action {
                FaultAction::Crash => writeln!(w, "{at} crash {}", rec.replica),
                FaultAction::Recover => writeln!(w, "{at} recover {}", rec.replica),
                FaultAction::Slow(mult) => writeln!(w, "{at} slow {} {mult}", rec.replica),
                FaultAction::Restore => writeln!(w, "{at} restore {}", rec.replica),
                FaultAction::Drain => writeln!(w, "{at} drain {}", rec.replica),
            }
            .map_err(io_err)?;
        }
        Ok(())
    }

    /// Generates a deterministic crash/recover schedule: each replica fails
    /// independently with exponential inter-failure times (mean
    /// `mtbf_secs`) and recovers after an exponential downtime (mean
    /// `mttr_secs`), truncated at `horizon_secs`. Replica RNG streams are
    /// forked from `seed`, so the schedule for replica `r` does not depend
    /// on how many other replicas exist.
    pub fn random_crashes(
        seed: u64,
        num_replicas: usize,
        horizon_secs: f64,
        mtbf_secs: f64,
        mttr_secs: f64,
    ) -> Self {
        assert!(mtbf_secs > 0.0 && mttr_secs > 0.0, "means must be positive");
        let mut root = SimRng::new(seed);
        let mut records = Vec::new();
        for replica in 0..num_replicas as u32 {
            let mut rng = root.fork(replica as u64);
            let mut t = exp_sample(&mut rng, mtbf_secs);
            while t < horizon_secs {
                records.push(FaultRecord {
                    at: SimTime::from_secs_f64(t),
                    replica,
                    action: FaultAction::Crash,
                });
                t += exp_sample(&mut rng, mttr_secs);
                if t >= horizon_secs {
                    break;
                }
                records.push(FaultRecord {
                    at: SimTime::from_secs_f64(t),
                    replica,
                    action: FaultAction::Recover,
                });
                t += exp_sample(&mut rng, mtbf_secs);
            }
        }
        // Stable ordering: time, then replica index for simultaneous faults.
        records.sort_by_key(|r| (r.at, r.replica));
        FaultSchedule { records }
    }
}

/// One exponential draw with the given mean (inverse-CDF on a (0, 1] draw).
fn exp_sample(rng: &mut SimRng, mean_secs: f64) -> f64 {
    let u = 1.0 - rng.next_f64(); // (0, 1]: ln never sees 0
    -mean_secs * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_actions() {
        let schedule = FaultSchedule::parse(
            "#vidur-faults v1\n\
             # a comment\n\
             10 crash 2\n\
             20.5 recover 2\n\
             30 slow 0 1.75\n\
             40 restore 0\n\
             50 drain 1\n",
        )
        .unwrap();
        assert_eq!(schedule.records.len(), 5);
        assert_eq!(schedule.records[0].action, FaultAction::Crash);
        assert_eq!(schedule.records[0].replica, 2);
        assert_eq!(schedule.records[1].at, SimTime::from_secs_f64(20.5));
        assert_eq!(schedule.records[2].action, FaultAction::Slow(1.75));
        assert_eq!(schedule.records[3].action, FaultAction::Restore);
        assert_eq!(schedule.records[4].action, FaultAction::Drain);
    }

    #[test]
    fn round_trips_through_writer() {
        let schedule = FaultSchedule::parse(
            "#vidur-faults v1\n\
             0.000000001 crash 0\n\
             1.5 slow 3 2\n\
             2 recover 0\n",
        )
        .unwrap();
        let mut buf = Vec::new();
        schedule.to_writer(&mut buf).unwrap();
        let reloaded = FaultSchedule::from_reader(&buf[..]).unwrap();
        assert_eq!(schedule, reloaded);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            FaultSchedule::parse("10 crash 0\n"),
            Err(FaultError::MissingHeader { line: 1 })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n10 crash\n"),
            Err(FaultError::BadArity { line: 2, found: 2 })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n10 explode 0\n"),
            Err(FaultError::UnknownAction {
                line: 2,
                action: "explode".to_string()
            })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n10 crash 0\n5 recover 0\n"),
            Err(FaultError::NonMonotonic { line: 3 })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n10 slow 0 0.5\n"),
            Err(FaultError::BadMultiplier {
                line: 2,
                value: "0.5".to_string()
            })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n1e3 crash 0\n"),
            Err(FaultError::BadTimestamp {
                line: 2,
                value: "1e3".to_string()
            })
        );
        assert_eq!(
            FaultSchedule::parse("#vidur-faults v1\n10 crash x\n"),
            Err(FaultError::BadReplica {
                line: 2,
                value: "x".to_string()
            })
        );
    }

    #[test]
    fn random_schedule_is_deterministic_and_alternates() {
        let a = FaultSchedule::random_crashes(7, 4, 3600.0, 600.0, 60.0);
        let b = FaultSchedule::random_crashes(7, 4, 3600.0, 600.0, 60.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "an hour at 10min MTBF should fault");
        // Per replica, the action stream must alternate crash/recover.
        for replica in 0..4u32 {
            let mut expect_crash = true;
            for rec in a.records.iter().filter(|r| r.replica == replica) {
                let want = if expect_crash {
                    FaultAction::Crash
                } else {
                    FaultAction::Recover
                };
                assert_eq!(rec.action, want);
                expect_crash = !expect_crash;
            }
        }
        // And the merged stream must be time-ordered.
        for pair in a.records.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        // Replica streams are forked: a different seed moves every stream.
        let c = FaultSchedule::random_crashes(8, 4, 3600.0, 600.0, 60.0);
        assert_ne!(a, c);
    }
}
