//! The three paper workloads and trace generation.
//!
//! Length marginals are log-normals fitted to Table 1's (median, P90) per
//! dataset, with the paper's 4096-token total cap applied the same way
//! (truncating the prompt so `prefill + decode ≤ 4096`, since the LLaMA2
//! context window binds).

use crate::arrival::ArrivalProcess;
use crate::distributions::LengthDistribution;
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;

/// Total-token cap matching the LLaMA2 context window.
pub const MAX_TOTAL_TOKENS: u64 = 4096;

/// A workload family: the joint distribution of request lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkload {
    /// Workload name (e.g. `"chat-1m"`).
    pub name: String,
    /// Prompt-length distribution.
    pub prefill: LengthDistribution,
    /// Output-length distribution.
    pub decode: LengthDistribution,
    /// Cap on `prefill + decode` (0 disables).
    pub max_total_tokens: u64,
}

impl TraceWorkload {
    /// LMSys-Chat-1M (4K-capped): conversational — moderate prompts, chatty
    /// decodes, high variance. Table 1: prefill median 417 / P90 1678,
    /// decode median 139 / P90 484.
    pub fn chat_1m() -> Self {
        TraceWorkload {
            name: "chat-1m".to_string(),
            prefill: LengthDistribution::log_normal(417.0, 1678.0),
            decode: LengthDistribution::log_normal(139.0, 484.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// Arxiv-Summarization (4K-capped): summarization — very long prompts,
    /// short outputs (P:D ≈ 15.7). Table 1: prefill median 2730 / P90 3702,
    /// decode median 167 / P90 372.
    pub fn arxiv_4k() -> Self {
        TraceWorkload {
            name: "arxiv-4k".to_string(),
            prefill: LengthDistribution::log_normal(2730.0, 3702.0),
            decode: LengthDistribution::log_normal(167.0, 372.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// Bilingual-Web-Book (4K-capped): document translation — decode-heavy
    /// (P:D ≈ 0.65), low variance. Table 1: prefill median 1037 / P90 1453,
    /// decode median 1601 / P90 2149.
    pub fn bwb_4k() -> Self {
        TraceWorkload {
            name: "bwb-4k".to_string(),
            prefill: LengthDistribution::log_normal(1037.0, 1453.0),
            decode: LengthDistribution::log_normal(1601.0, 2149.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// The three paper workloads.
    pub fn paper_workloads() -> Vec<TraceWorkload> {
        vec![Self::chat_1m(), Self::arxiv_4k(), Self::bwb_4k()]
    }

    /// Looks a paper workload up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<TraceWorkload> {
        Self::paper_workloads()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// Samples one `(prefill_tokens, decode_tokens)` pair, applying the
    /// total cap by truncating the prompt (decodes are preserved, matching
    /// how conversation turns get cut off by the context window).
    pub fn sample_lengths(&self, rng: &mut SimRng) -> (u64, u64) {
        let mut prefill = self.prefill.sample(rng);
        let mut decode = self.decode.sample(rng);
        if self.max_total_tokens > 0 {
            if decode >= self.max_total_tokens {
                decode = self.max_total_tokens - 1;
            }
            if prefill + decode > self.max_total_tokens {
                prefill = self.max_total_tokens - decode;
            }
        }
        (prefill.max(1), decode.max(1))
    }

    /// Generates a trace of `n` requests with the given arrival process.
    pub fn generate(&self, n: usize, arrivals: &ArrivalProcess, rng: &mut SimRng) -> Trace {
        let times = arrivals.generate(n, rng);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prefill_tokens, decode_tokens) = self.sample_lengths(rng);
                TraceRequest {
                    id: i as u64,
                    arrival,
                    prefill_tokens,
                    decode_tokens,
                }
            })
            .collect();
        Trace {
            workload_name: self.name.clone(),
            requests,
        }
    }
}

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Sequential id.
    pub id: u64,
    /// Arrival timestamp.
    pub arrival: SimTime,
    /// Prompt tokens.
    pub prefill_tokens: u64,
    /// Output tokens.
    pub decode_tokens: u64,
}

/// A generated (or loaded) request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the generating workload.
    pub workload_name: String,
    /// Requests ordered by arrival.
    pub requests: Vec<TraceRequest>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Re-times this trace's arrivals with a new process (used by capacity
    /// search to sweep QPS while holding lengths fixed).
    pub fn with_arrivals(&self, arrivals: &ArrivalProcess, rng: &mut SimRng) -> Trace {
        let times = arrivals.generate(self.requests.len(), rng);
        let requests = self
            .requests
            .iter()
            .zip(times)
            .map(|(r, arrival)| TraceRequest { arrival, ..*r })
            .collect();
        Trace {
            workload_name: self.workload_name.clone(),
            requests,
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_enforced() {
        let w = TraceWorkload::arxiv_4k();
        let mut rng = SimRng::new(1);
        for _ in 0..20_000 {
            let (p, d) = w.sample_lengths(&mut rng);
            assert!(p >= 1 && d >= 1);
            assert!(p + d <= MAX_TOTAL_TOKENS, "{p}+{d}");
        }
    }

    #[test]
    fn chat_medians_match_table1() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(2);
        let mut ps = Vec::new();
        let mut ds = Vec::new();
        for _ in 0..50_000 {
            let (p, d) = w.sample_lengths(&mut rng);
            ps.push(p);
            ds.push(d);
        }
        ps.sort_unstable();
        ds.sort_unstable();
        let p_med = ps[ps.len() / 2] as f64;
        let d_med = ds[ds.len() / 2] as f64;
        assert!((p_med / 417.0 - 1.0).abs() < 0.08, "prefill median {p_med}");
        assert!((d_med / 139.0 - 1.0).abs() < 0.08, "decode median {d_med}");
    }

    #[test]
    fn bwb_is_decode_heavy_and_arxiv_prefill_heavy() {
        let mut rng = SimRng::new(3);
        let ratio = |w: &TraceWorkload, rng: &mut SimRng| {
            let mut p_sum = 0u64;
            let mut d_sum = 0u64;
            for _ in 0..20_000 {
                let (p, d) = w.sample_lengths(rng);
                p_sum += p;
                d_sum += d;
            }
            p_sum as f64 / d_sum as f64
        };
        let bwb = ratio(&TraceWorkload::bwb_4k(), &mut rng);
        let arxiv = ratio(&TraceWorkload::arxiv_4k(), &mut rng);
        let chat = ratio(&TraceWorkload::chat_1m(), &mut rng);
        assert!(bwb < 1.0, "BWB P:D {bwb}");
        assert!(arxiv > 6.0, "Arxiv P:D {arxiv}");
        assert!(chat > 1.5 && chat < 6.0, "Chat P:D {chat}");
    }

    #[test]
    fn generate_assigns_ids_and_arrivals() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(4);
        let t = w.generate(100, &ArrivalProcess::Poisson { qps: 10.0 }, &mut rng);
        assert_eq!(t.len(), 100);
        assert_eq!(t.requests[0].id, 0);
        assert_eq!(t.requests[99].id, 99);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn retiming_preserves_lengths() {
        let w = TraceWorkload::bwb_4k();
        let mut rng = SimRng::new(5);
        let t = w.generate(50, &ArrivalProcess::Static, &mut rng);
        let t2 = t.with_arrivals(&ArrivalProcess::Poisson { qps: 1.0 }, &mut rng);
        for (a, b) in t.requests.iter().zip(&t2.requests) {
            assert_eq!(a.prefill_tokens, b.prefill_tokens);
            assert_eq!(a.decode_tokens, b.decode_tokens);
        }
        assert!(t2.requests.last().unwrap().arrival > SimTime::ZERO);
    }

    #[test]
    fn json_roundtrip() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(6);
        let t = w.generate(10, &ArrivalProcess::Static, &mut rng);
        let back = Trace::from_json(&t.to_json().unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn by_name_lookup() {
        assert!(TraceWorkload::by_name("Chat-1M").is_some());
        assert!(TraceWorkload::by_name("ARXIV-4K").is_some());
        assert!(TraceWorkload::by_name("unknown").is_none());
    }

    #[test]
    fn deterministic_generation() {
        let w = TraceWorkload::chat_1m();
        let t1 = w.generate(
            20,
            &ArrivalProcess::Poisson { qps: 5.0 },
            &mut SimRng::new(9),
        );
        let t2 = w.generate(
            20,
            &ArrivalProcess::Poisson { qps: 5.0 },
            &mut SimRng::new(9),
        );
        assert_eq!(t1, t2);
    }
}
