//! The three paper workloads and trace generation.
//!
//! Length marginals are log-normals fitted to Table 1's (median, P90) per
//! dataset, with the paper's 4096-token total cap applied the same way
//! (truncating the prompt so `prefill + decode ≤ 4096`, since the LLaMA2
//! context window binds).

use crate::arrival::ArrivalProcess;
use crate::distributions::LengthDistribution;
use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;

/// Total-token cap matching the LLaMA2 context window.
pub const MAX_TOTAL_TOKENS: u64 = 4096;

/// Sentinel prefix id for requests that share no prefix (the default).
/// Matches `vidur_scheduler::NO_PREFIX` bit-for-bit so trace prefix ids
/// flow into scheduler requests unchanged.
pub const NO_PREFIX: u64 = u64::MAX;

/// A workload family: the joint distribution of request lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkload {
    /// Workload name (e.g. `"chat-1m"`).
    pub name: String,
    /// Prompt-length distribution.
    pub prefill: LengthDistribution,
    /// Output-length distribution.
    pub decode: LengthDistribution,
    /// Cap on `prefill + decode` (0 disables).
    pub max_total_tokens: u64,
}

impl TraceWorkload {
    /// LMSys-Chat-1M (4K-capped): conversational — moderate prompts, chatty
    /// decodes, high variance. Table 1: prefill median 417 / P90 1678,
    /// decode median 139 / P90 484.
    pub fn chat_1m() -> Self {
        TraceWorkload {
            name: "chat-1m".to_string(),
            prefill: LengthDistribution::log_normal(417.0, 1678.0),
            decode: LengthDistribution::log_normal(139.0, 484.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// Arxiv-Summarization (4K-capped): summarization — very long prompts,
    /// short outputs (P:D ≈ 15.7). Table 1: prefill median 2730 / P90 3702,
    /// decode median 167 / P90 372.
    pub fn arxiv_4k() -> Self {
        TraceWorkload {
            name: "arxiv-4k".to_string(),
            prefill: LengthDistribution::log_normal(2730.0, 3702.0),
            decode: LengthDistribution::log_normal(167.0, 372.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// Bilingual-Web-Book (4K-capped): document translation — decode-heavy
    /// (P:D ≈ 0.65), low variance. Table 1: prefill median 1037 / P90 1453,
    /// decode median 1601 / P90 2149.
    pub fn bwb_4k() -> Self {
        TraceWorkload {
            name: "bwb-4k".to_string(),
            prefill: LengthDistribution::log_normal(1037.0, 1453.0),
            decode: LengthDistribution::log_normal(1601.0, 2149.0),
            max_total_tokens: MAX_TOTAL_TOKENS,
        }
    }

    /// The three paper workloads.
    pub fn paper_workloads() -> Vec<TraceWorkload> {
        vec![Self::chat_1m(), Self::arxiv_4k(), Self::bwb_4k()]
    }

    /// Looks a paper workload up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<TraceWorkload> {
        Self::paper_workloads()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }

    /// Samples one `(prefill_tokens, decode_tokens)` pair, applying the
    /// total cap by truncating the prompt (decodes are preserved, matching
    /// how conversation turns get cut off by the context window).
    pub fn sample_lengths(&self, rng: &mut SimRng) -> (u64, u64) {
        let mut prefill = self.prefill.sample(rng);
        let mut decode = self.decode.sample(rng);
        if self.max_total_tokens > 0 {
            if decode >= self.max_total_tokens {
                decode = self.max_total_tokens - 1;
            }
            if prefill + decode > self.max_total_tokens {
                prefill = self.max_total_tokens - decode;
            }
        }
        (prefill.max(1), decode.max(1))
    }

    /// Generates a trace of `n` requests with the given arrival process.
    pub fn generate(&self, n: usize, arrivals: &ArrivalProcess, rng: &mut SimRng) -> Trace {
        let times = arrivals.generate(n, rng);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let (prefill_tokens, decode_tokens) = self.sample_lengths(rng);
                TraceRequest {
                    id: i as u64,
                    arrival,
                    prefill_tokens,
                    decode_tokens,
                    tenant: 0,
                    priority: 0,
                    prefix_id: NO_PREFIX,
                    prefix_len: 0,
                }
            })
            .collect();
        Trace {
            workload_name: self.name.clone(),
            tenants: Vec::new(),
            prefixes: Vec::new(),
            requests,
        }
    }
}

/// Shared-prefix traffic shape for one tenant: what fraction of its
/// requests reuse one of `num_prefixes` tenant-private shared prefixes
/// (system prompts / templates) of `prefix_tokens` tokens each.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantPrefixConfig {
    /// Fraction of this tenant's requests (in `[0, 1]`) that carry a
    /// shared prefix.
    pub share_ratio: f64,
    /// Tokens in each shared prefix (≥ 1; capped at the request's prompt
    /// length when a sampled prompt is shorter).
    pub prefix_tokens: u64,
    /// Number of distinct prefixes this tenant draws from uniformly (≥ 1).
    pub num_prefixes: usize,
}

/// One tenant's traffic in a [`MultiTenantWorkload`]: its own length
/// distributions, arrival process, and priority class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStream {
    /// Tenant name (becomes an entry in [`Trace::tenants`]).
    pub tenant: String,
    /// Priority class for every request of this tenant (0 = most urgent).
    pub priority: u8,
    /// Length distributions for this tenant's requests.
    pub workload: TraceWorkload,
    /// This tenant's arrival process.
    pub arrivals: ArrivalProcess,
    /// Shared-prefix traffic shape, or `None` for prefix-free traffic.
    /// Arming prefixes never perturbs any tenant's arrival or length
    /// draws — the prefix RNG is derived from a fork of a *clone* of the
    /// stream's length RNG, so the existing streams are untouched.
    pub prefix: Option<TenantPrefixConfig>,
}

/// Several tenants sharing a cluster: each stream generates independently
/// (own forked RNG streams for arrivals and lengths, so adding a tenant
/// never perturbs another's draws) and the traces merge in arrival order.
///
/// # Example
///
/// ```
/// use vidur_core::rng::SimRng;
/// use vidur_workload::{ArrivalProcess, MultiTenantWorkload, TenantStream, TraceWorkload};
///
/// let mix = MultiTenantWorkload::new(
///     "prod-mix",
///     vec![
///         TenantStream {
///             tenant: "interactive".into(),
///             priority: 0,
///             workload: TraceWorkload::chat_1m(),
///             arrivals: ArrivalProcess::Poisson { qps: 2.0 },
///             prefix: None,
///         },
///         TenantStream {
///             tenant: "batch".into(),
///             priority: 2,
///             workload: TraceWorkload::arxiv_4k(),
///             arrivals: ArrivalProcess::Poisson { qps: 1.0 },
///             prefix: None,
///         },
///     ],
/// );
/// let trace = mix.generate(100, &mut SimRng::new(7));
/// assert_eq!(trace.tenants.len(), 2);
/// assert!(trace.requests.iter().any(|r| r.tenant == 1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantWorkload {
    /// Mix name (becomes [`Trace::workload_name`]).
    pub name: String,
    /// The tenant streams (index = tenant id in generated traces).
    pub streams: Vec<TenantStream>,
}

impl MultiTenantWorkload {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any stream uses
    /// [`ArrivalProcess::Static`] — a Static tenant emits infinitely many
    /// t=0 arrivals, so the merge would never yield any other tenant.
    pub fn new(name: impl Into<String>, streams: Vec<TenantStream>) -> Self {
        assert!(!streams.is_empty(), "multi-tenant mix needs streams");
        let mix = MultiTenantWorkload {
            name: name.into(),
            streams,
        };
        mix.validate();
        mix
    }

    fn validate(&self) {
        assert!(!self.streams.is_empty(), "multi-tenant mix needs streams");
        for s in &self.streams {
            assert!(
                !matches!(s.arrivals, ArrivalProcess::Static),
                "tenant `{}`: Static arrivals would starve every other \
                 tenant in the merge",
                s.tenant
            );
            if let Some(p) = s.prefix {
                assert!(
                    p.share_ratio.is_finite() && (0.0..=1.0).contains(&p.share_ratio),
                    "tenant `{}`: prefix share ratio {} outside [0, 1]",
                    s.tenant,
                    p.share_ratio
                );
                assert!(
                    p.prefix_tokens >= 1,
                    "tenant `{}`: shared prefixes need at least one token",
                    s.tenant
                );
                assert!(
                    p.num_prefixes >= 1,
                    "tenant `{}`: prefix sharing needs at least one prefix",
                    s.tenant
                );
            }
        }
    }

    /// Incremental request generator: an infinite stream of requests merged
    /// across tenants in arrival order (ties break toward the lower tenant
    /// id), with ids assigned sequentially in merged order. The first `n`
    /// items equal [`MultiTenantWorkload::generate`]`(n, rng).requests`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid mix (see [`MultiTenantWorkload::new`]; the
    /// fields are public, so the invariants are re-checked here).
    pub fn requests(&self, rng: &mut SimRng) -> MultiTenantIter {
        self.validate();
        let mut prefix_offset = 0u64;
        let streams = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut arrivals = s.arrivals.times(rng.fork(2 * i as u64));
                let lengths = rng.fork(2 * i as u64 + 1);
                let prefix = s.prefix.map(|cfg| {
                    // Forking mutates the parent, so fork a *clone* of the
                    // lengths RNG: the prefix stream is deterministic per
                    // tenant, yet arming it leaves every existing arrival
                    // and length draw (and the shared parent) untouched.
                    let state = PrefixState {
                        cfg,
                        rng: lengths.clone().fork(0x7072_6566),
                        id_offset: prefix_offset,
                    };
                    prefix_offset += cfg.num_prefixes as u64;
                    state
                });
                let next_arrival = arrivals.next().expect("arrival streams are infinite");
                StreamState {
                    arrivals,
                    lengths,
                    workload: s.workload.clone(),
                    priority: s.priority,
                    prefix,
                    next_arrival,
                }
            })
            .collect();
        MultiTenantIter {
            streams,
            next_id: 0,
        }
    }

    /// The shared prefixes a generated trace declares, in id order: each
    /// prefix-configured tenant contributes `num_prefixes` consecutive
    /// entries named `<tenant>-prefix-<k>`.
    pub fn prefixes(&self) -> Vec<TracePrefix> {
        let mut prefixes = Vec::new();
        for s in &self.streams {
            if let Some(cfg) = s.prefix {
                for k in 0..cfg.num_prefixes {
                    prefixes.push(TracePrefix {
                        name: format!("{}-prefix-{k}", s.tenant),
                        tokens: cfg.prefix_tokens,
                    });
                }
            }
        }
        prefixes
    }

    /// Generates a merged trace of `n` requests. Equivalent to collecting
    /// `n` items from [`MultiTenantWorkload::requests`].
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> Trace {
        let requests = self.requests(rng).take(n).collect();
        Trace {
            workload_name: self.name.clone(),
            tenants: self.streams.iter().map(|s| s.tenant.clone()).collect(),
            prefixes: self.prefixes(),
            requests,
        }
    }
}

/// Per-tenant shared-prefix generation state inside [`StreamState`].
#[derive(Debug)]
struct PrefixState {
    cfg: TenantPrefixConfig,
    rng: SimRng,
    /// Global prefix id of this tenant's prefix 0 (tenants own disjoint
    /// consecutive id ranges in declaration order).
    id_offset: u64,
}

/// Per-tenant generation state inside [`MultiTenantIter`].
#[derive(Debug)]
struct StreamState {
    arrivals: crate::arrival::ArrivalTimes,
    lengths: SimRng,
    workload: TraceWorkload,
    priority: u8,
    prefix: Option<PrefixState>,
    next_arrival: SimTime,
}

/// Infinite merged request iterator (see [`MultiTenantWorkload::requests`]).
#[derive(Debug)]
pub struct MultiTenantIter {
    streams: Vec<StreamState>,
    next_id: u64,
}

impl Iterator for MultiTenantIter {
    type Item = TraceRequest;

    fn next(&mut self) -> Option<TraceRequest> {
        let idx = self
            .streams
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.next_arrival.cmp(&b.next_arrival))
            .map(|(i, _)| i)?;
        let s = &mut self.streams[idx];
        let arrival = s.next_arrival;
        s.next_arrival = s.arrivals.next().expect("arrival streams are infinite");
        let (prefill_tokens, decode_tokens) = s.workload.sample_lengths(&mut s.lengths);
        let mut prefix_id = NO_PREFIX;
        let mut prefix_len = 0;
        if let Some(p) = &mut s.prefix {
            if p.rng.next_f64() < p.cfg.share_ratio {
                let k = p.rng.next_below(p.cfg.num_prefixes as u64);
                prefix_id = p.id_offset + k;
                prefix_len = p.cfg.prefix_tokens.min(prefill_tokens);
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        Some(TraceRequest {
            id,
            arrival,
            prefill_tokens,
            decode_tokens,
            tenant: idx as u32,
            priority: s.priority,
            prefix_id,
            prefix_len,
        })
    }
}

/// One request in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Sequential id.
    pub id: u64,
    /// Arrival timestamp.
    pub arrival: SimTime,
    /// Prompt tokens.
    pub prefill_tokens: u64,
    /// Output tokens.
    pub decode_tokens: u64,
    /// Tenant index into [`Trace::tenants`] (0 for single-tenant traces).
    pub tenant: u32,
    /// Priority class: 0 is the most urgent; schedulers admit lower values
    /// first and preempt higher values first.
    pub priority: u8,
    /// Shared-prefix index into [`Trace::prefixes`], or [`NO_PREFIX`] when
    /// this request shares nothing.
    pub prefix_id: u64,
    /// Leading prompt tokens shared under `prefix_id` (0 when `prefix_id`
    /// is [`NO_PREFIX`]; otherwise `1..=min(prefix tokens, prefill)`).
    pub prefix_len: u64,
}

/// One shared prefix declared by a trace (a system prompt / template):
/// requests whose [`TraceRequest::prefix_id`] indexes this entry share its
/// leading tokens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePrefix {
    /// Prefix name (written as a `prefix` directive in v2 trace files).
    pub name: String,
    /// Length of the shared prefix in tokens (≥ 1).
    pub tokens: u64,
}

/// A generated (or loaded) request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the generating workload.
    pub workload_name: String,
    /// Declared tenant names; [`TraceRequest::tenant`] indexes this list.
    /// Empty for single-tenant traces (all requests implicitly tenant 0).
    pub tenants: Vec<String>,
    /// Declared shared prefixes; [`TraceRequest::prefix_id`] indexes this
    /// list. Empty for prefix-free traces (written as format v1).
    pub prefixes: Vec<TracePrefix>,
    /// Requests ordered by arrival.
    pub requests: Vec<TraceRequest>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of declared tenants (0 for single-tenant traces).
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Name of tenant `id`, or `"tenant-<id>"` when undeclared.
    pub fn tenant_name(&self, id: u32) -> String {
        self.tenants
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| format!("tenant-{id}"))
    }

    /// Re-times this trace's arrivals with a new process (used by capacity
    /// search to sweep QPS while holding lengths fixed).
    pub fn with_arrivals(&self, arrivals: &ArrivalProcess, rng: &mut SimRng) -> Trace {
        let times = arrivals.generate(self.requests.len(), rng);
        let requests = self
            .requests
            .iter()
            .zip(times)
            .map(|(r, arrival)| TraceRequest { arrival, ..*r })
            .collect();
        Trace {
            workload_name: self.workload_name.clone(),
            tenants: self.tenants.clone(),
            prefixes: self.prefixes.clone(),
            requests,
        }
    }

    /// Fits an arrival process to this trace's empirical interarrival
    /// statistics: a [`ArrivalProcess::Gamma`] matching the observed mean
    /// rate and coefficient of variation (`Static` when the trace is too
    /// short or spans no time). Near-deterministic gaps keep a
    /// floored-tiny-cv Gamma — collapsing to Poisson would replace the
    /// measured CV ≈ 0 with CV = 1 and fabricate burstiness the trace
    /// never had.
    pub fn fit_arrivals(&self) -> ArrivalProcess {
        if self.requests.len() < 2 {
            return ArrivalProcess::Static;
        }
        let gaps: Vec<f64> = self
            .requests
            .windows(2)
            .map(|w| w[1].arrival.duration_since(w[0].arrival).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        if mean <= 0.0 {
            return ArrivalProcess::Static;
        }
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = (var.sqrt() / mean).max(1e-6);
        ArrivalProcess::Gamma {
            qps: 1.0 / mean,
            cv,
        }
    }

    /// Amplifies this trace to `n` requests by derived-stat resampling:
    /// arrivals come from [`Trace::fit_arrivals`]; each generated request
    /// bootstraps its `(prefill, decode, tenant, priority)` tuple from a
    /// uniformly-drawn source record, preserving the joint length/tenant
    /// mix. A 1k-line trace amplifies to millions of requests in O(n)
    /// output with O(original) working memory.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn amplify(&self, n: usize, rng: &mut SimRng) -> Trace {
        assert!(!self.is_empty(), "cannot amplify an empty trace");
        let arrivals = self.fit_arrivals();
        let times = arrivals.generate(n, rng);
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let src = &self.requests[rng.next_below(self.requests.len() as u64) as usize];
                TraceRequest {
                    id: i as u64,
                    arrival,
                    ..*src
                }
            })
            .collect();
        Trace {
            workload_name: format!("{}-amplified", self.workload_name),
            tenants: self.tenants.clone(),
            prefixes: self.prefixes.clone(),
            requests,
        }
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_enforced() {
        let w = TraceWorkload::arxiv_4k();
        let mut rng = SimRng::new(1);
        for _ in 0..20_000 {
            let (p, d) = w.sample_lengths(&mut rng);
            assert!(p >= 1 && d >= 1);
            assert!(p + d <= MAX_TOTAL_TOKENS, "{p}+{d}");
        }
    }

    #[test]
    fn chat_medians_match_table1() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(2);
        let mut ps = Vec::new();
        let mut ds = Vec::new();
        for _ in 0..50_000 {
            let (p, d) = w.sample_lengths(&mut rng);
            ps.push(p);
            ds.push(d);
        }
        ps.sort_unstable();
        ds.sort_unstable();
        let p_med = ps[ps.len() / 2] as f64;
        let d_med = ds[ds.len() / 2] as f64;
        assert!((p_med / 417.0 - 1.0).abs() < 0.08, "prefill median {p_med}");
        assert!((d_med / 139.0 - 1.0).abs() < 0.08, "decode median {d_med}");
    }

    #[test]
    fn bwb_is_decode_heavy_and_arxiv_prefill_heavy() {
        let mut rng = SimRng::new(3);
        let ratio = |w: &TraceWorkload, rng: &mut SimRng| {
            let mut p_sum = 0u64;
            let mut d_sum = 0u64;
            for _ in 0..20_000 {
                let (p, d) = w.sample_lengths(rng);
                p_sum += p;
                d_sum += d;
            }
            p_sum as f64 / d_sum as f64
        };
        let bwb = ratio(&TraceWorkload::bwb_4k(), &mut rng);
        let arxiv = ratio(&TraceWorkload::arxiv_4k(), &mut rng);
        let chat = ratio(&TraceWorkload::chat_1m(), &mut rng);
        assert!(bwb < 1.0, "BWB P:D {bwb}");
        assert!(arxiv > 6.0, "Arxiv P:D {arxiv}");
        assert!(chat > 1.5 && chat < 6.0, "Chat P:D {chat}");
    }

    #[test]
    fn generate_assigns_ids_and_arrivals() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(4);
        let t = w.generate(100, &ArrivalProcess::Poisson { qps: 10.0 }, &mut rng);
        assert_eq!(t.len(), 100);
        assert_eq!(t.requests[0].id, 0);
        assert_eq!(t.requests[99].id, 99);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn retiming_preserves_lengths() {
        let w = TraceWorkload::bwb_4k();
        let mut rng = SimRng::new(5);
        let t = w.generate(50, &ArrivalProcess::Static, &mut rng);
        let t2 = t.with_arrivals(&ArrivalProcess::Poisson { qps: 1.0 }, &mut rng);
        for (a, b) in t.requests.iter().zip(&t2.requests) {
            assert_eq!(a.prefill_tokens, b.prefill_tokens);
            assert_eq!(a.decode_tokens, b.decode_tokens);
        }
        assert!(t2.requests.last().unwrap().arrival > SimTime::ZERO);
    }

    #[test]
    fn json_roundtrip() {
        let w = TraceWorkload::chat_1m();
        let mut rng = SimRng::new(6);
        let t = w.generate(10, &ArrivalProcess::Static, &mut rng);
        let back = Trace::from_json(&t.to_json().unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn by_name_lookup() {
        assert!(TraceWorkload::by_name("Chat-1M").is_some());
        assert!(TraceWorkload::by_name("ARXIV-4K").is_some());
        assert!(TraceWorkload::by_name("unknown").is_none());
    }

    fn mix() -> MultiTenantWorkload {
        MultiTenantWorkload::new(
            "mix",
            vec![
                TenantStream {
                    tenant: "interactive".into(),
                    priority: 0,
                    workload: TraceWorkload::chat_1m(),
                    arrivals: ArrivalProcess::Poisson { qps: 4.0 },
                    prefix: None,
                },
                TenantStream {
                    tenant: "batch".into(),
                    priority: 2,
                    workload: TraceWorkload::arxiv_4k(),
                    arrivals: ArrivalProcess::Mmpp {
                        qps_base: 0.5,
                        qps_burst: 10.0,
                        mean_base_secs: 20.0,
                        mean_burst_secs: 5.0,
                    },
                    prefix: None,
                },
            ],
        )
    }

    #[test]
    fn multi_tenant_merges_in_arrival_order() {
        let t = mix().generate(500, &mut SimRng::new(21));
        assert_eq!(t.tenants, vec!["interactive", "batch"]);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.requests.iter().enumerate().all(|(i, r)| r.id == i as u64));
        assert!(t.requests.iter().any(|r| r.tenant == 0));
        assert!(t.requests.iter().any(|r| r.tenant == 1));
        for r in &t.requests {
            let expect = if r.tenant == 0 { 0 } else { 2 };
            assert_eq!(r.priority, expect);
        }
    }

    #[test]
    fn multi_tenant_iterator_matches_generate() {
        let m = mix();
        let batch = m.generate(300, &mut SimRng::new(22));
        let incremental: Vec<TraceRequest> = m.requests(&mut SimRng::new(22)).take(300).collect();
        assert_eq!(batch.requests, incremental);
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        // Forked per-stream RNGs: tenant 0's (arrival, lengths) subsequence
        // must be identical whether or not a third tenant joins the mix.
        let two = mix().generate(400, &mut SimRng::new(23));
        let mut three = mix();
        three.streams.push(TenantStream {
            tenant: "background".into(),
            priority: 3,
            workload: TraceWorkload::bwb_4k(),
            arrivals: ArrivalProcess::Poisson { qps: 2.0 },
            prefix: None,
        });
        let merged = three.generate(600, &mut SimRng::new(23));
        let a: Vec<(SimTime, u64, u64)> = two
            .requests
            .iter()
            .filter(|r| r.tenant == 0)
            .map(|r| (r.arrival, r.prefill_tokens, r.decode_tokens))
            .collect();
        let b: Vec<(SimTime, u64, u64)> = merged
            .requests
            .iter()
            .filter(|r| r.tenant == 0)
            .map(|r| (r.arrival, r.prefill_tokens, r.decode_tokens))
            .collect();
        let common = a.len().min(b.len());
        assert!(common > 50, "need a meaningful overlap");
        assert_eq!(a[..common], b[..common]);
    }

    #[test]
    #[should_panic(expected = "Static arrivals would starve")]
    fn static_tenant_stream_rejected() {
        MultiTenantWorkload::new(
            "bad",
            vec![
                TenantStream {
                    tenant: "offline".into(),
                    priority: 2,
                    workload: TraceWorkload::arxiv_4k(),
                    arrivals: ArrivalProcess::Static,
                    prefix: None,
                },
                TenantStream {
                    tenant: "online".into(),
                    priority: 0,
                    workload: TraceWorkload::chat_1m(),
                    arrivals: ArrivalProcess::Poisson { qps: 1.0 },
                    prefix: None,
                },
            ],
        );
    }

    fn prefixed_mix() -> MultiTenantWorkload {
        let mut m = mix();
        m.streams[0].prefix = Some(TenantPrefixConfig {
            share_ratio: 0.6,
            prefix_tokens: 128,
            num_prefixes: 3,
        });
        m.streams[1].prefix = Some(TenantPrefixConfig {
            share_ratio: 1.0,
            prefix_tokens: 4096,
            num_prefixes: 1,
        });
        m
    }

    #[test]
    fn shared_prefix_generation_is_well_formed() {
        let m = prefixed_mix();
        let t = m.generate(2_000, &mut SimRng::new(31));
        // Declared prefixes: 3 for tenant 0 (ids 0..3), 1 for tenant 1 (id 3).
        assert_eq!(t.prefixes.len(), 4);
        assert_eq!(t.prefixes[0].name, "interactive-prefix-0");
        assert_eq!(t.prefixes[3].name, "batch-prefix-0");
        assert_eq!(t.prefixes[3].tokens, 4096);
        let mut hits0 = 0usize;
        let mut total0 = 0usize;
        for r in &t.requests {
            if r.prefix_id == NO_PREFIX {
                assert_eq!(r.prefix_len, 0);
                continue;
            }
            if r.tenant == 0 {
                assert!(r.prefix_id < 3, "tenant 0 draws its own prefixes");
            } else {
                assert_eq!(r.prefix_id, 3, "tenant 1 has exactly one prefix");
            }
            let declared = t.prefixes[r.prefix_id as usize].tokens;
            assert_eq!(r.prefix_len, declared.min(r.prefill_tokens));
            assert!(r.prefix_len >= 1);
        }
        for r in t.requests.iter().filter(|r| r.tenant == 0) {
            total0 += 1;
            if r.prefix_id != NO_PREFIX {
                hits0 += 1;
            }
        }
        // share_ratio 0.6 for tenant 0; 1.0 for tenant 1.
        let share0 = hits0 as f64 / total0 as f64;
        assert!((share0 - 0.6).abs() < 0.05, "share {share0}");
        assert!(t
            .requests
            .iter()
            .filter(|r| r.tenant == 1)
            .all(|r| r.prefix_id == 3));
    }

    #[test]
    fn arming_prefixes_does_not_perturb_the_base_trace() {
        // The prefix draw runs on a fork of a *clone* of the length RNG, so
        // configuring prefixes must leave every (arrival, lengths, tenant,
        // priority) tuple bit-identical — only the prefix columns change.
        let plain = mix().generate(1_500, &mut SimRng::new(32));
        let shared = prefixed_mix().generate(1_500, &mut SimRng::new(32));
        let strip = |t: &Trace| -> Vec<(SimTime, u64, u64, u32, u8)> {
            t.requests
                .iter()
                .map(|r| {
                    (
                        r.arrival,
                        r.prefill_tokens,
                        r.decode_tokens,
                        r.tenant,
                        r.priority,
                    )
                })
                .collect()
        };
        assert_eq!(strip(&plain), strip(&shared));
        assert!(plain.requests.iter().all(|r| r.prefix_id == NO_PREFIX));
        assert!(shared.requests.iter().any(|r| r.prefix_id != NO_PREFIX));
    }

    #[test]
    fn fit_arrivals_recovers_rate_and_burstiness() {
        let w = TraceWorkload::chat_1m();
        let t = w.generate(
            20_000,
            &ArrivalProcess::Gamma { qps: 6.0, cv: 2.5 },
            &mut SimRng::new(24),
        );
        match t.fit_arrivals() {
            ArrivalProcess::Gamma { qps, cv } => {
                assert!((qps / 6.0 - 1.0).abs() < 0.1, "qps {qps}");
                assert!((cv / 2.5 - 1.0).abs() < 0.15, "cv {cv}");
            }
            other => panic!("expected Gamma, fitted {other:?}"),
        }
        let static_trace = w.generate(10, &ArrivalProcess::Static, &mut SimRng::new(25));
        assert_eq!(static_trace.fit_arrivals(), ArrivalProcess::Static);
        // Near-deterministic gaps (fixed-rate load generator) must keep
        // their tiny measured CV — not collapse to Poisson's CV of 1.
        let mut even = w.generate(100, &ArrivalProcess::Static, &mut SimRng::new(26));
        for (i, r) in even.requests.iter_mut().enumerate() {
            r.arrival = SimTime::from_secs_f64(i as f64);
        }
        match even.fit_arrivals() {
            ArrivalProcess::Gamma { qps, cv } => {
                assert!((qps - 1.0).abs() < 1e-9, "qps {qps}");
                assert!(cv <= 1e-3, "cv {cv} should stay near-deterministic");
            }
            other => panic!("expected tiny-cv Gamma, fitted {other:?}"),
        }
    }

    #[test]
    fn amplify_preserves_mix_and_rate() {
        let small = mix().generate(1_000, &mut SimRng::new(26));
        let big = small.amplify(50_000, &mut SimRng::new(27));
        assert_eq!(big.len(), 50_000);
        assert_eq!(big.tenants, small.tenants);
        assert!(big
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // Rate within 10% of the source.
        let rate = |t: &Trace| {
            (t.len() - 1) as f64
                / t.requests
                    .last()
                    .unwrap()
                    .arrival
                    .duration_since(t.requests[0].arrival)
                    .as_secs_f64()
        };
        assert!((rate(&big) / rate(&small) - 1.0).abs() < 0.1);
        // Tenant mix within a few points of the source.
        let frac =
            |t: &Trace| t.requests.iter().filter(|r| r.tenant == 0).count() as f64 / t.len() as f64;
        assert!((frac(&big) - frac(&small)).abs() < 0.05);
        // Bootstrapped tuples keep tenant↔priority pairing intact.
        for r in &big.requests {
            let expect = if r.tenant == 0 { 0 } else { 2 };
            assert_eq!(r.priority, expect);
        }
    }

    #[test]
    fn deterministic_generation() {
        let w = TraceWorkload::chat_1m();
        let t1 = w.generate(
            20,
            &ArrivalProcess::Poisson { qps: 5.0 },
            &mut SimRng::new(9),
        );
        let t2 = w.generate(
            20,
            &ArrivalProcess::Poisson { qps: 5.0 },
            &mut SimRng::new(9),
        );
        assert_eq!(t1, t2);
    }
}
