//! Request arrival processes.
//!
//! The paper evaluates static (offline) workloads — all requests present at
//! t=0 (Figure 3) — and dynamic workloads with Poisson arrivals at a rate
//! tied to system capacity (Figure 4, Appendix A). A Gamma-interarrival
//! process with a coefficient of variation > 1 adds burstiness for what-if
//! studies.

use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};

/// How requests arrive over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All requests arrive at time zero (offline / static workload).
    Static,
    /// Poisson arrivals at `qps` requests per second.
    Poisson {
        /// Mean arrival rate (requests per second).
        qps: f64,
    },
    /// Gamma-distributed interarrival times: mean rate `qps` with
    /// coefficient of variation `cv` (`cv = 1` is Poisson, `cv > 1` bursty).
    Gamma {
        /// Mean arrival rate (requests per second).
        qps: f64,
        /// Coefficient of variation of interarrival times.
        cv: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps (non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics if the rate or `cv` is non-positive for the stochastic
    /// variants.
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        match *self {
            ArrivalProcess::Static => vec![SimTime::ZERO; n],
            ArrivalProcess::Poisson { qps } => {
                assert!(qps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        t += rng.exponential(qps);
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
            ArrivalProcess::Gamma { qps, cv } => {
                assert!(qps > 0.0 && cv > 0.0, "Gamma parameters must be positive");
                // Interarrival mean 1/qps, std cv/qps: shape k = 1/cv^2,
                // scale theta = cv^2 / qps.
                let k = 1.0 / (cv * cv);
                let theta = cv * cv / qps;
                let mut t = 0.0f64;
                (0..n)
                    .map(|_| {
                        t += rng.gamma(k, theta);
                        SimTime::from_secs_f64(t)
                    })
                    .collect()
            }
        }
    }

    /// Nominal request rate (infinite for static workloads).
    pub fn qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Static => f64::INFINITY,
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Gamma { qps, .. } => qps,
        }
    }

    /// Expected makespan of the arrival phase for `n` requests.
    pub fn expected_span(&self, n: usize) -> SimDuration {
        match *self {
            ArrivalProcess::Static => SimDuration::ZERO,
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Gamma { qps, .. } => {
                SimDuration::from_secs_f64(n as f64 / qps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_all_at_zero() {
        let mut rng = SimRng::new(1);
        let times = ArrivalProcess::Static.generate(10, &mut rng);
        assert!(times.iter().all(|&t| t == SimTime::ZERO));
    }

    #[test]
    fn poisson_mean_rate() {
        let mut rng = SimRng::new(2);
        let qps = 5.0;
        let n = 50_000;
        let times = ArrivalProcess::Poisson { qps }.generate(n, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = n as f64 / span;
        assert!((rate / qps - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn gamma_cv_one_matches_poisson_rate() {
        let mut rng = SimRng::new(3);
        let times = ArrivalProcess::Gamma { qps: 10.0, cv: 1.0 }.generate(20_000, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate / 10.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn gamma_burstiness_increases_variance() {
        let inter = |cv: f64| {
            let mut rng = SimRng::new(4);
            let times = ArrivalProcess::Gamma { qps: 10.0, cv }.generate(20_000, &mut rng);
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let smooth = inter(0.5);
        let bursty = inter(3.0);
        assert!(bursty > 2.0 * smooth, "smooth {smooth} bursty {bursty}");
    }

    #[test]
    fn expected_span() {
        assert_eq!(
            ArrivalProcess::Poisson { qps: 2.0 }.expected_span(10),
            SimDuration::from_secs(5)
        );
        assert_eq!(ArrivalProcess::Static.expected_span(10), SimDuration::ZERO);
    }

    proptest! {
        #[test]
        fn arrivals_nondecreasing(seed in any::<u64>(), qps in 0.1f64..100.0) {
            let mut rng = SimRng::new(seed);
            let times = ArrivalProcess::Poisson { qps }.generate(100, &mut rng);
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }
}
