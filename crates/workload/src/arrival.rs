//! Request arrival processes.
//!
//! The paper evaluates static (offline) workloads — all requests present at
//! t=0 (Figure 3) — and dynamic workloads with Poisson arrivals at a rate
//! tied to system capacity (Figure 4, Appendix A). A Gamma-interarrival
//! process with a coefficient of variation > 1 adds burstiness for what-if
//! studies.
//!
//! Beyond the paper's processes, the production-traffic zoo adds:
//!
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process (quiet baseline punctuated by exponentially-distributed
//!   bursts), the classic model for flash-crowd traffic;
//! * [`ArrivalProcess::Diurnal`] — a sinusoidally-rate-modulated Poisson
//!   process for day/night load curves, sampled exactly by thinning;
//! * [`ArrivalProcess::Superposed`] — the superposition of independent
//!   component streams (e.g. several tenants sharing a cluster), merged in
//!   time order with per-stream forked RNGs so adding a component never
//!   perturbs the others' draws.
//!
//! All processes generate **incrementally** through [`ArrivalProcess::iter`]
//! / [`ArrivalProcess::times`]: million-request runs never materialize an
//! upfront `Vec` of timestamps beyond what the caller collects.
//! [`ArrivalProcess::generate`] is a `take(n).collect()` over the same
//! iterator, so the batch and incremental paths are sample-for-sample
//! identical under a fixed seed.

use serde::{Deserialize, Serialize};
use vidur_core::rng::SimRng;
use vidur_core::time::{SimDuration, SimTime};

/// How requests arrive over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// All requests arrive at time zero (offline / static workload).
    Static,
    /// Poisson arrivals at `qps` requests per second.
    Poisson {
        /// Mean arrival rate (requests per second).
        qps: f64,
    },
    /// Gamma-distributed interarrival times: mean rate `qps` with
    /// coefficient of variation `cv` (`cv = 1` is Poisson, `cv > 1` bursty).
    Gamma {
        /// Mean arrival rate (requests per second).
        qps: f64,
        /// Coefficient of variation of interarrival times.
        cv: f64,
    },
    /// Two-state Markov-modulated Poisson process: Poisson arrivals whose
    /// rate alternates between a quiet baseline and a burst rate, with
    /// exponentially-distributed sojourn times in each state. Starts in the
    /// baseline state.
    Mmpp {
        /// Arrival rate in the baseline (quiet) state, requests per second
        /// (may be zero for pure on/off bursts).
        qps_base: f64,
        /// Arrival rate in the burst state, requests per second.
        qps_burst: f64,
        /// Mean sojourn time in the baseline state, seconds.
        mean_base_secs: f64,
        /// Mean sojourn time in the burst state, seconds.
        mean_burst_secs: f64,
    },
    /// Sinusoidally rate-modulated Poisson process:
    /// `rate(t) = mean_qps * (1 + amplitude * sin(2πt / period_secs))`.
    /// Sampled exactly by thinning against the peak rate.
    Diurnal {
        /// Mean arrival rate over a full period, requests per second.
        mean_qps: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
        /// Length of one day/night cycle, seconds.
        period_secs: f64,
    },
    /// Superposition of independent component streams (e.g. one per
    /// tenant): the merged stream contains every component arrival in time
    /// order. Each component draws from its own forked RNG stream.
    /// Components must be dynamic — a `Static` component (infinitely many
    /// arrivals at t=0) would starve every other stream and is rejected.
    Superposed {
        /// The component processes (must be non-empty, none `Static`).
        streams: Vec<ArrivalProcess>,
    },
}

impl ArrivalProcess {
    /// Panics on invalid parameters (the stochastic variants need positive
    /// rates / sojourns, `Diurnal` a sane amplitude, `Superposed` at least
    /// one component).
    fn validate(&self) {
        match *self {
            ArrivalProcess::Static => {}
            ArrivalProcess::Poisson { qps } => {
                assert!(qps > 0.0, "Poisson rate must be positive");
            }
            ArrivalProcess::Gamma { qps, cv } => {
                assert!(qps > 0.0 && cv > 0.0, "Gamma parameters must be positive");
            }
            ArrivalProcess::Mmpp {
                qps_base,
                qps_burst,
                mean_base_secs,
                mean_burst_secs,
            } => {
                assert!(qps_base >= 0.0, "MMPP baseline rate must be non-negative");
                assert!(qps_burst > 0.0, "MMPP burst rate must be positive");
                assert!(
                    mean_base_secs > 0.0 && mean_burst_secs > 0.0,
                    "MMPP sojourn means must be positive"
                );
            }
            ArrivalProcess::Diurnal {
                mean_qps,
                amplitude,
                period_secs,
            } => {
                assert!(mean_qps > 0.0, "diurnal mean rate must be positive");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "diurnal amplitude must be in [0, 1]"
                );
                assert!(period_secs > 0.0, "diurnal period must be positive");
            }
            ArrivalProcess::Superposed { ref streams } => {
                assert!(!streams.is_empty(), "superposition needs components");
                for s in streams {
                    // A Static component yields t=0 forever, so it would win
                    // every merge step and silently starve the other
                    // streams — reject it instead.
                    assert!(
                        !matches!(s, ArrivalProcess::Static),
                        "superposition components must be dynamic \
                         (a Static stream would starve all others)"
                    );
                    s.validate();
                }
            }
        }
    }

    /// Incremental arrival-time generator borrowing the caller's RNG: an
    /// infinite, non-decreasing stream of timestamps. The first `n` items
    /// equal [`ArrivalProcess::generate`]`(n, rng)` exactly.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see the variant docs).
    pub fn iter<'a>(&self, rng: &'a mut SimRng) -> ArrivalIter<'a> {
        self.validate();
        ArrivalIter {
            state: ArrivalState::new(self, rng),
            rng,
        }
    }

    /// Incremental arrival-time generator that owns its RNG — the building
    /// block for merging independent streams (each component forks its own
    /// RNG, so draws never interleave).
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see the variant docs).
    pub fn times(&self, mut rng: SimRng) -> ArrivalTimes {
        self.validate();
        let state = ArrivalState::new(self, &mut rng);
        ArrivalTimes { rng, state }
    }

    /// Generates `n` arrival timestamps (non-decreasing). Equivalent to
    /// collecting `n` items from [`ArrivalProcess::iter`].
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters for the stochastic variants.
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        self.iter(rng).take(n).collect()
    }

    /// Nominal mean request rate (infinite for static workloads). For MMPP
    /// this is the stationary mean; for diurnal, the mean over full periods;
    /// for superpositions, the sum of component rates.
    pub fn qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Static => f64::INFINITY,
            ArrivalProcess::Poisson { qps } | ArrivalProcess::Gamma { qps, .. } => qps,
            ArrivalProcess::Mmpp {
                qps_base,
                qps_burst,
                mean_base_secs,
                mean_burst_secs,
            } => {
                let total = mean_base_secs + mean_burst_secs;
                (qps_base * mean_base_secs + qps_burst * mean_burst_secs) / total
            }
            ArrivalProcess::Diurnal { mean_qps, .. } => mean_qps,
            ArrivalProcess::Superposed { ref streams } => {
                streams.iter().map(ArrivalProcess::qps).sum()
            }
        }
    }

    /// Expected makespan of the arrival phase for `n` requests.
    pub fn expected_span(&self, n: usize) -> SimDuration {
        let qps = self.qps();
        if qps.is_infinite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(n as f64 / qps)
        }
    }
}

/// Per-process iteration state. Time is tracked in `f64` seconds, exactly
/// like the original batch generators, so draws and rounding match.
#[derive(Debug)]
enum ArrivalState {
    Static,
    /// Exponential interarrivals at rate `qps` (stored as the rate itself so
    /// the draw stream matches the historical batch generator bit-for-bit).
    Poisson {
        t: f64,
        qps: f64,
    },
    /// Gamma interarrivals with shape `k`, scale `theta`.
    Gamma {
        t: f64,
        k: f64,
        theta: f64,
    },
    Mmpp {
        t: f64,
        in_burst: bool,
        /// Absolute time at which the current state's sojourn ends.
        switch_at: f64,
        qps_base: f64,
        qps_burst: f64,
        mean_base_secs: f64,
        mean_burst_secs: f64,
    },
    Diurnal {
        t: f64,
        mean_qps: f64,
        amplitude: f64,
        period_secs: f64,
    },
    /// Merge of component streams, each with its own RNG. `next[i]` is the
    /// component's pending arrival; ties break toward the lowest index.
    Superposed {
        streams: Vec<ArrivalTimes>,
        next: Vec<SimTime>,
    },
}

impl ArrivalState {
    fn new(process: &ArrivalProcess, rng: &mut SimRng) -> Self {
        match *process {
            ArrivalProcess::Static => ArrivalState::Static,
            ArrivalProcess::Poisson { qps } => ArrivalState::Poisson { t: 0.0, qps },
            ArrivalProcess::Gamma { qps, cv } => ArrivalState::Gamma {
                t: 0.0,
                // Interarrival mean 1/qps, std cv/qps: shape k = 1/cv^2,
                // scale theta = cv^2 / qps.
                k: 1.0 / (cv * cv),
                theta: cv * cv / qps,
            },
            ArrivalProcess::Mmpp {
                qps_base,
                qps_burst,
                mean_base_secs,
                mean_burst_secs,
            } => ArrivalState::Mmpp {
                t: 0.0,
                in_burst: false,
                switch_at: rng.exponential(1.0 / mean_base_secs),
                qps_base,
                qps_burst,
                mean_base_secs,
                mean_burst_secs,
            },
            ArrivalProcess::Diurnal {
                mean_qps,
                amplitude,
                period_secs,
            } => ArrivalState::Diurnal {
                t: 0.0,
                mean_qps,
                amplitude,
                period_secs,
            },
            ArrivalProcess::Superposed { ref streams } => {
                let mut components: Vec<ArrivalTimes> = streams
                    .iter()
                    .enumerate()
                    .map(|(i, s)| s.times(rng.fork(i as u64)))
                    .collect();
                let next = components
                    .iter_mut()
                    .map(|c| c.next().expect("arrival streams are infinite"))
                    .collect();
                ArrivalState::Superposed {
                    streams: components,
                    next,
                }
            }
        }
    }

    /// Draws the next arrival. Streams are infinite; this never ends.
    fn step(&mut self, rng: &mut SimRng) -> SimTime {
        match self {
            ArrivalState::Static => SimTime::ZERO,
            ArrivalState::Poisson { t, qps } => {
                *t += rng.exponential(*qps);
                SimTime::from_secs_f64(*t)
            }
            ArrivalState::Gamma { t, k, theta } => {
                *t += rng.gamma(*k, *theta);
                SimTime::from_secs_f64(*t)
            }
            ArrivalState::Mmpp {
                t,
                in_burst,
                switch_at,
                qps_base,
                qps_burst,
                mean_base_secs,
                mean_burst_secs,
            } => loop {
                let rate = if *in_burst { *qps_burst } else { *qps_base };
                // With a zero baseline rate no arrival can happen before the
                // burst starts; jump straight to the switch.
                let candidate = if rate > 0.0 {
                    *t + rng.exponential(rate)
                } else {
                    f64::INFINITY
                };
                if candidate <= *switch_at {
                    *t = candidate;
                    return SimTime::from_secs_f64(*t);
                }
                // Sojourn expired first: switch state and redraw (valid by
                // memorylessness of the exponential).
                *t = *switch_at;
                *in_burst = !*in_burst;
                let mean = if *in_burst {
                    *mean_burst_secs
                } else {
                    *mean_base_secs
                };
                *switch_at = *t + rng.exponential(1.0 / mean);
            },
            ArrivalState::Diurnal {
                t,
                mean_qps,
                amplitude,
                period_secs,
            } => {
                let peak = *mean_qps * (1.0 + *amplitude);
                loop {
                    *t += rng.exponential(peak);
                    let phase = std::f64::consts::TAU * *t / *period_secs;
                    let rate = *mean_qps * (1.0 + *amplitude * phase.sin());
                    // Thinning: accept with probability rate/peak.
                    if rng.next_f64() * peak <= rate {
                        return SimTime::from_secs_f64(*t);
                    }
                }
            }
            ArrivalState::Superposed { streams, next } => {
                let (idx, &at) = next
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.cmp(b))
                    .expect("superposition has components");
                next[idx] = streams[idx].next().expect("arrival streams are infinite");
                at
            }
        }
    }
}

/// Infinite arrival-time iterator borrowing the caller's RNG (see
/// [`ArrivalProcess::iter`]).
#[derive(Debug)]
pub struct ArrivalIter<'a> {
    rng: &'a mut SimRng,
    state: ArrivalState,
}

impl Iterator for ArrivalIter<'_> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        Some(self.state.step(self.rng))
    }
}

/// Infinite arrival-time iterator owning its RNG (see
/// [`ArrivalProcess::times`]).
#[derive(Debug)]
pub struct ArrivalTimes {
    rng: SimRng,
    state: ArrivalState,
}

impl Iterator for ArrivalTimes {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        Some(self.state.step(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_all_at_zero() {
        let mut rng = SimRng::new(1);
        let times = ArrivalProcess::Static.generate(10, &mut rng);
        assert!(times.iter().all(|&t| t == SimTime::ZERO));
    }

    #[test]
    fn poisson_mean_rate() {
        let mut rng = SimRng::new(2);
        let qps = 5.0;
        let n = 50_000;
        let times = ArrivalProcess::Poisson { qps }.generate(n, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = n as f64 / span;
        assert!((rate / qps - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn gamma_cv_one_matches_poisson_rate() {
        let mut rng = SimRng::new(3);
        let times = ArrivalProcess::Gamma { qps: 10.0, cv: 1.0 }.generate(20_000, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate / 10.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn gamma_burstiness_increases_variance() {
        let inter = |cv: f64| {
            let mut rng = SimRng::new(4);
            let times = ArrivalProcess::Gamma { qps: 10.0, cv }.generate(20_000, &mut rng);
            let gaps: Vec<f64> = times
                .windows(2)
                .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let smooth = inter(0.5);
        let bursty = inter(3.0);
        assert!(bursty > 2.0 * smooth, "smooth {smooth} bursty {bursty}");
    }

    #[test]
    fn expected_span() {
        assert_eq!(
            ArrivalProcess::Poisson { qps: 2.0 }.expected_span(10),
            SimDuration::from_secs(5)
        );
        assert_eq!(ArrivalProcess::Static.expected_span(10), SimDuration::ZERO);
    }

    fn mmpp() -> ArrivalProcess {
        // Short sojourns keep the chain fast-mixing so empirical-rate tests
        // converge tightly at moderate sample sizes.
        ArrivalProcess::Mmpp {
            qps_base: 2.0,
            qps_burst: 40.0,
            mean_base_secs: 3.0,
            mean_burst_secs: 0.5,
        }
    }

    fn diurnal() -> ArrivalProcess {
        ArrivalProcess::Diurnal {
            mean_qps: 8.0,
            amplitude: 0.8,
            period_secs: 600.0,
        }
    }

    #[test]
    fn mmpp_empirical_rate_converges_to_stationary_mean() {
        let p = mmpp();
        // Stationary mean: (2·3 + 40·0.5) / 3.5 ≈ 7.43 QPS.
        let expect = p.qps();
        assert!((expect - 26.0 / 3.5).abs() < 1e-12);
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let times = p.generate(n, &mut rng);
        let rate = n as f64 / times.last().unwrap().as_secs_f64();
        assert!(
            (rate / expect - 1.0).abs() < 0.05,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn mmpp_bursts_are_burstier_than_poisson() {
        // Interarrival CV of the MMPP must clearly exceed Poisson's 1.
        let mut rng = SimRng::new(6);
        let times = mmpp().generate(100_000, &mut rng);
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.5, "MMPP interarrival CV {cv} not bursty");
    }

    #[test]
    fn diurnal_empirical_rate_converges_to_mean() {
        let p = diurnal();
        let mut rng = SimRng::new(7);
        let n = 200_000;
        let times = p.generate(n, &mut rng);
        let span = times.last().unwrap().as_secs_f64();
        // Measure over whole periods to avoid phase bias.
        let whole = (span / 600.0).floor() * 600.0;
        let count = times.iter().filter(|t| t.as_secs_f64() <= whole).count();
        let rate = count as f64 / whole;
        assert!((rate / 8.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn diurnal_peak_and_trough_rates_differ() {
        let mut rng = SimRng::new(8);
        let times = diurnal().generate(100_000, &mut rng);
        // First quarter of each period is near-peak, third quarter trough.
        let (mut peak, mut trough) = (0usize, 0usize);
        for t in &times {
            let pos = t.as_secs_f64() % 600.0;
            if pos < 150.0 {
                peak += 1;
            } else if (300.0..450.0).contains(&pos) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn superposed_rate_is_sum_of_components() {
        let p = ArrivalProcess::Superposed {
            streams: vec![
                ArrivalProcess::Poisson { qps: 3.0 },
                ArrivalProcess::Poisson { qps: 5.0 },
                ArrivalProcess::Gamma { qps: 2.0, cv: 2.0 },
            ],
        };
        assert!((p.qps() - 10.0).abs() < 1e-12);
        let mut rng = SimRng::new(9);
        let n = 100_000;
        let times = p.generate(n, &mut rng);
        let rate = n as f64 / times.last().unwrap().as_secs_f64();
        assert!((rate / 10.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn superposed_interleaves_component_streams_exactly() {
        // The merged stream must be the time-ordered union of each
        // component generated alone with the same forked RNG.
        let a = ArrivalProcess::Poisson { qps: 4.0 };
        let b = ArrivalProcess::Gamma { qps: 6.0, cv: 1.5 };
        let sup = ArrivalProcess::Superposed {
            streams: vec![a.clone(), b.clone()],
        };
        let mut rng = SimRng::new(10);
        let merged = sup.generate(2_000, &mut rng);

        let mut rng2 = SimRng::new(10);
        let fork_a = rng2.fork(0);
        let fork_b = rng2.fork(1);
        let mut manual: Vec<SimTime> = a
            .times(fork_a)
            .take(2_000)
            .chain(b.times(fork_b).take(2_000))
            .collect();
        manual.sort();
        manual.truncate(2_000);
        assert_eq!(merged, manual);
    }

    #[test]
    fn iterator_matches_generate_sample_for_sample() {
        let processes = vec![
            ArrivalProcess::Static,
            ArrivalProcess::Poisson { qps: 3.0 },
            ArrivalProcess::Gamma { qps: 5.0, cv: 2.0 },
            mmpp(),
            diurnal(),
            ArrivalProcess::Superposed {
                streams: vec![ArrivalProcess::Poisson { qps: 1.0 }, mmpp()],
            },
        ];
        for p in processes {
            let mut rng_batch = SimRng::new(11);
            let batch = p.generate(500, &mut rng_batch);
            let mut rng_iter = SimRng::new(11);
            let incremental: Vec<SimTime> = p.iter(&mut rng_iter).take(500).collect();
            assert_eq!(batch, incremental, "{p:?}");
            let owned: Vec<SimTime> = p.times(SimRng::new(11)).take(500).collect();
            assert_eq!(batch, owned, "{p:?} (owned)");
        }
    }

    #[test]
    #[should_panic(expected = "superposition needs components")]
    fn empty_superposition_rejected() {
        let p = ArrivalProcess::Superposed { streams: vec![] };
        p.generate(1, &mut SimRng::new(1));
    }

    #[test]
    #[should_panic(expected = "starve all others")]
    fn static_component_in_superposition_rejected() {
        // Static yields t=0 forever, so it would win every merge step and
        // the Poisson stream would never surface.
        let p = ArrivalProcess::Superposed {
            streams: vec![ArrivalProcess::Static, ArrivalProcess::Poisson { qps: 5.0 }],
        };
        p.generate(1, &mut SimRng::new(1));
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn bad_diurnal_amplitude_rejected() {
        let p = ArrivalProcess::Diurnal {
            mean_qps: 1.0,
            amplitude: 1.5,
            period_secs: 60.0,
        };
        p.generate(1, &mut SimRng::new(1));
    }

    proptest! {
        #[test]
        fn arrivals_nondecreasing(seed in any::<u64>(), qps in 0.1f64..100.0) {
            let mut rng = SimRng::new(seed);
            let times = ArrivalProcess::Poisson { qps }.generate(100, &mut rng);
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn new_processes_nondecreasing(
            seed in any::<u64>(),
            qps_base in 0.0f64..20.0,
            qps_burst in 1.0f64..200.0,
            amplitude in 0.0f64..1.0,
        ) {
            let processes = vec![
                ArrivalProcess::Mmpp {
                    qps_base,
                    qps_burst,
                    mean_base_secs: 10.0,
                    mean_burst_secs: 2.0,
                },
                ArrivalProcess::Diurnal {
                    mean_qps: qps_burst,
                    amplitude,
                    period_secs: 120.0,
                },
                ArrivalProcess::Superposed {
                    streams: vec![
                        ArrivalProcess::Poisson { qps: qps_burst },
                        ArrivalProcess::Mmpp {
                            qps_base,
                            qps_burst,
                            mean_base_secs: 5.0,
                            mean_burst_secs: 1.0,
                        },
                    ],
                },
            ];
            for p in processes {
                let mut rng = SimRng::new(seed);
                let times = p.generate(200, &mut rng);
                for w in times.windows(2) {
                    prop_assert!(w[0] <= w[1], "{p:?}");
                }
            }
        }
    }
}
