//! Trace-format robustness: exact `from_file`/`to_file` round-trips, typed
//! errors with line numbers for every malformed-input class (never a
//! panic), and streaming-loader parity with the batch loader.

use vidur_core::rng::SimRng;
use vidur_core::time::SimTime;
use vidur_workload::{
    ArrivalProcess, MultiTenantWorkload, TenantPrefixConfig, TenantStream, Trace, TraceError,
    TracePrefix, TraceReader, TraceWorkload, NO_PREFIX,
};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sample.vtrace")
}

fn fixture_v2_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sample_v2.vtrace")
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vidur-trace-{tag}-{}", std::process::id()))
}

#[test]
fn fixture_parses() {
    let t = Trace::from_file(fixture_path()).expect("fixture parses");
    assert_eq!(t.workload_name, "fixture-mix");
    assert_eq!(t.tenants, vec!["interactive", "standard", "batch"]);
    assert_eq!(t.len(), 6);
    assert!(t.requests.iter().enumerate().all(|(i, r)| r.id == i as u64));
    // Defaulted tenant/priority on the four-field-free line.
    assert_eq!(t.requests[3].tenant, 0);
    assert_eq!(t.requests[3].priority, 0);
    assert_eq!(t.requests[1].tenant, 2);
    assert_eq!(t.requests[1].priority, 2);
    // Nanosecond-precision timestamp survives exactly.
    assert_eq!(t.requests[5].arrival, SimTime::from_nanos(10_000_000_001));
    assert_eq!(t.requests[1].arrival, SimTime::from_nanos(250_000_000));
}

#[test]
fn fixture_roundtrips_exactly() {
    let t = Trace::from_file(fixture_path()).expect("fixture parses");
    let path = temp_path("roundtrip");
    t.to_file(&path).expect("write");
    let back = Trace::from_file(&path).expect("reparse");
    assert_eq!(t, back);
    // Serialization is deterministic: writing the reparse reproduces the
    // same bytes.
    let path2 = temp_path("roundtrip2");
    back.to_file(&path2).expect("rewrite");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap()
    );
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path2);
}

#[test]
fn generated_traces_roundtrip() {
    // Multi-tenant with priorities (five-field records).
    let mix = MultiTenantWorkload::new(
        "mix",
        vec![
            TenantStream {
                tenant: "a".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 3.0 },
                prefix: None,
            },
            TenantStream {
                tenant: "b".into(),
                priority: 2,
                workload: TraceWorkload::bwb_4k(),
                arrivals: ArrivalProcess::Gamma { qps: 2.0, cv: 2.0 },
                prefix: None,
            },
        ],
    );
    let t = mix.generate(400, &mut SimRng::new(1));
    let path = temp_path("mt");
    t.to_file(&path).expect("write");
    assert_eq!(Trace::from_file(&path).expect("reparse"), t);
    let _ = std::fs::remove_file(path);

    // Single-tenant (compact three-field records).
    let t = TraceWorkload::chat_1m().generate(
        200,
        &ArrivalProcess::Poisson { qps: 5.0 },
        &mut SimRng::new(2),
    );
    let path = temp_path("st");
    t.to_file(&path).expect("write");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        !text.contains("tenant"),
        "single-tenant traces stay compact"
    );
    assert_eq!(Trace::from_file(&path).expect("reparse"), t);
    let _ = std::fs::remove_file(path);
}

#[test]
fn streaming_reader_matches_batch_loader() {
    let text = std::fs::read_to_string(fixture_path()).unwrap();
    let mut reader = TraceReader::new(text.as_bytes()).expect("header");
    assert_eq!(reader.workload_name(), "fixture-mix");
    assert_eq!(reader.tenants().len(), 3);
    let streamed: Vec<_> = (&mut reader).map(|r| r.expect("record")).collect();
    let batch = Trace::parse(&text).expect("parse");
    assert_eq!(streamed, batch.requests);
    // Exhausted reader stays exhausted.
    assert!(reader.next().is_none());
}

#[test]
fn missing_header_rejected() {
    assert_eq!(
        Trace::parse("1.0 10 10\n"),
        Err(TraceError::MissingHeader { line: 1 })
    );
    assert_eq!(Trace::parse(""), Err(TraceError::MissingHeader { line: 1 }));
    assert_eq!(
        Trace::parse("\n\n# not the magic\n"),
        Err(TraceError::MissingHeader { line: 3 })
    );
}

/// Every malformed-record class yields its typed error with the right line
/// number — never a panic.
#[test]
fn malformed_records_yield_typed_errors_with_line_numbers() {
    let header = "#vidur-trace v1\ntenant a\ntenant b\n";
    let cases: Vec<(&str, TraceError)> = vec![
        (
            "not-a-time 10 10\n",
            TraceError::BadTimestamp {
                line: 4,
                value: "not-a-time".into(),
            },
        ),
        (
            "-1.0 10 10\n",
            TraceError::BadTimestamp {
                line: 4,
                value: "-1.0".into(),
            },
        ),
        (
            "1.0000000001 10 10\n",
            TraceError::BadTimestamp {
                line: 4,
                value: "1.0000000001".into(),
            },
        ),
        (
            "5.0 10 10\n1.0 10 10\n",
            TraceError::NonMonotonic { line: 5 },
        ),
        (
            "1.0 -5 10\n",
            TraceError::BadLength {
                line: 4,
                field: "prefill",
                value: "-5".into(),
            },
        ),
        (
            "1.0 10 0\n",
            TraceError::BadLength {
                line: 4,
                field: "decode",
                value: "0".into(),
            },
        ),
        (
            "1.0 10 10 ghost\n",
            TraceError::UnknownTenant {
                line: 4,
                name: "ghost".into(),
            },
        ),
        (
            "1.0 10 10 a 300\n",
            TraceError::BadPriority {
                line: 4,
                value: "300".into(),
            },
        ),
        ("1.0 10\n", TraceError::Truncated { line: 4, found: 2 }),
        (
            "1.0 10 10 a 1 extra\n",
            TraceError::TooManyFields { line: 4, found: 6 },
        ),
    ];
    for (body, expect) in cases {
        let input = format!("{header}{body}");
        assert_eq!(Trace::parse(&input), Err(expect.clone()), "input: {body:?}");
        // Errors render with their line number.
        let line = match &expect {
            TraceError::BadTimestamp { line, .. }
            | TraceError::NonMonotonic { line }
            | TraceError::BadLength { line, .. }
            | TraceError::UnknownTenant { line, .. }
            | TraceError::BadPriority { line, .. }
            | TraceError::Truncated { line, .. }
            | TraceError::TooManyFields { line, .. } => *line,
            other => panic!("unexpected variant {other:?}"),
        };
        assert!(
            expect.to_string().contains(&format!("line {line}")),
            "{expect}"
        );
    }
}

#[test]
fn malformed_directives_rejected() {
    let dup = "#vidur-trace v1\ntenant a\ntenant a\n";
    assert!(matches!(
        Trace::parse(dup),
        Err(TraceError::Directive { line: 3, .. })
    ));
    let late = "#vidur-trace v1\n1.0 10 10\ntenant a\n";
    assert!(matches!(
        Trace::parse(late),
        Err(TraceError::Directive { line: 3, .. })
    ));
    let two_names = "#vidur-trace v1\nworkload a b\n";
    assert!(matches!(
        Trace::parse(two_names),
        Err(TraceError::Directive { line: 2, .. })
    ));
    let dup_workload = "#vidur-trace v1\nworkload a\nworkload b\n";
    assert!(matches!(
        Trace::parse(dup_workload),
        Err(TraceError::Directive { line: 3, .. })
    ));
}

#[test]
fn streaming_reader_stops_after_first_error() {
    let input = "#vidur-trace v1\n1.0 10 10\nbogus 1 1\n2.0 10 10\n";
    let mut reader = TraceReader::new(input.as_bytes()).expect("header");
    assert!(reader.next().unwrap().is_ok());
    assert!(matches!(
        reader.next(),
        Some(Err(TraceError::BadTimestamp { line: 3, .. }))
    ));
    assert!(reader.next().is_none(), "reader latches after an error");
}

#[test]
fn missing_file_is_io_error_not_panic() {
    match Trace::from_file("/nonexistent/vidur-trace") {
        Err(TraceError::Io { path, .. }) => assert!(path.contains("nonexistent")),
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn out_of_range_tenant_index_rejected_on_write() {
    let mut t = TraceWorkload::chat_1m().generate(3, &ArrivalProcess::Static, &mut SimRng::new(3));
    t.tenants = vec!["only".to_string()];
    t.requests[2].tenant = 7;
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::TenantIndexOutOfRange {
            tenant: 7,
            declared: 1
        })
    );
}

#[test]
fn unwritable_names_rejected_on_write() {
    // Names the reader could never parse back (whitespace splits directive
    // and record fields) must be refused at write time, not written as a
    // permanently unloadable file.
    let mut t = TraceWorkload::chat_1m().generate(2, &ArrivalProcess::Static, &mut SimRng::new(5));
    t.workload_name = "prod mix".to_string();
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::UnwritableName {
            field: "workload",
            name: "prod mix".to_string()
        })
    );
    t.workload_name = "prod-mix".to_string();
    t.tenants = vec!["has space".to_string()];
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::UnwritableName {
            field: "tenant",
            name: "has space".to_string()
        })
    );
    t.tenants = vec!["fixed".to_string()];
    let mut out = Vec::new();
    t.to_writer(&mut out).expect("sane names write fine");
    assert!(Trace::parse(std::str::from_utf8(&out).unwrap()).is_ok());
}

#[test]
fn v2_fixture_parses() {
    let t = Trace::from_file(fixture_v2_path()).expect("v2 fixture parses");
    assert_eq!(t.workload_name, "fixture-prefix-mix");
    assert_eq!(t.tenants, vec!["interactive", "batch"]);
    assert_eq!(
        t.prefixes,
        vec![
            TracePrefix {
                name: "system-prompt".to_string(),
                tokens: 256
            },
            TracePrefix {
                name: "rag-context".to_string(),
                tokens: 1024
            },
        ]
    );
    assert_eq!(t.len(), 5);
    assert_eq!(
        (t.requests[0].prefix_id, t.requests[0].prefix_len),
        (0, 256)
    );
    assert_eq!(
        (t.requests[1].prefix_id, t.requests[1].prefix_len),
        (1, 1024)
    );
    // `- -` marks a prefix-free request.
    assert_eq!(
        (t.requests[2].prefix_id, t.requests[2].prefix_len),
        (NO_PREFIX, 0)
    );
    // A hit shorter than the declared prefix (prefill-capped) is legal.
    assert_eq!((t.requests[4].prefix_id, t.requests[4].prefix_len), (1, 64));
}

#[test]
fn v2_fixture_roundtrips_exactly() {
    let t = Trace::from_file(fixture_v2_path()).expect("v2 fixture parses");
    let path = temp_path("v2-roundtrip");
    t.to_file(&path).expect("write");
    let back = Trace::from_file(&path).expect("reparse");
    assert_eq!(t, back);
    let path2 = temp_path("v2-roundtrip2");
    back.to_file(&path2).expect("rewrite");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap()
    );
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path2);
}

#[test]
fn generated_prefixed_traces_roundtrip() {
    let mix = MultiTenantWorkload::new(
        "shared",
        vec![
            TenantStream {
                tenant: "a".into(),
                priority: 0,
                workload: TraceWorkload::chat_1m(),
                arrivals: ArrivalProcess::Poisson { qps: 3.0 },
                prefix: Some(TenantPrefixConfig {
                    share_ratio: 0.5,
                    prefix_tokens: 200,
                    num_prefixes: 2,
                }),
            },
            TenantStream {
                tenant: "b".into(),
                priority: 2,
                workload: TraceWorkload::bwb_4k(),
                arrivals: ArrivalProcess::Gamma { qps: 2.0, cv: 2.0 },
                prefix: None,
            },
        ],
    );
    let t = mix.generate(400, &mut SimRng::new(6));
    assert!(t.requests.iter().any(|r| r.prefix_id != NO_PREFIX));
    let path = temp_path("v2-mt");
    t.to_file(&path).expect("write");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("#vidur-trace v2\n"));
    assert_eq!(Trace::from_file(&path).expect("reparse"), t);
    let _ = std::fs::remove_file(path);
}

#[test]
fn v1_reader_and_writer_paths_untouched_by_v2() {
    // v1 parses carry the no-prefix sentinel on every record.
    let t = Trace::from_file(fixture_path()).expect("v1 fixture parses");
    assert!(t.prefixes.is_empty());
    assert!(t
        .requests
        .iter()
        .all(|r| r.prefix_id == NO_PREFIX && r.prefix_len == 0));
    // A prefix-free trace still writes the v1 magic — byte-identical to the
    // pre-v2 writer.
    let mut out = Vec::new();
    t.to_writer(&mut out).expect("write");
    assert!(std::str::from_utf8(&out)
        .unwrap()
        .starts_with("#vidur-trace v1\n"));
    // A `prefix` directive in a v1 file is rejected exactly as any unknown
    // directive: it falls through to record parsing and fails there.
    let v1_with_prefix = "#vidur-trace v1\ntenant a\nprefix p 64\n";
    assert_eq!(
        Trace::parse(v1_with_prefix),
        Err(TraceError::BadTimestamp {
            line: 3,
            value: "prefix".into()
        })
    );
    // Six v1 fields stay TooManyFields — the v1 limit did not widen.
    let six = "#vidur-trace v1\ntenant a\n1.0 10 10 a 1 extra\n";
    assert_eq!(
        Trace::parse(six),
        Err(TraceError::TooManyFields { line: 3, found: 6 })
    );
}

/// Every malformed prefix-column class yields its typed error with the
/// right line number — never a panic.
#[test]
fn malformed_v2_prefix_records_yield_typed_errors() {
    let header = "#vidur-trace v2\ntenant a\nprefix p 100\n";
    let cases: Vec<(&str, TraceError)> = vec![
        (
            // Six fields: a prefix id without a length.
            "1.0 200 10 a 0 0\n",
            TraceError::BadPrefixLen {
                line: 4,
                value: "<missing>".into(),
            },
        ),
        (
            "1.0 200 10 a 0 x 50\n",
            TraceError::BadPrefixId {
                line: 4,
                value: "x".into(),
            },
        ),
        (
            "1.0 200 10 a 0 7 50\n",
            TraceError::UnknownPrefix { line: 4, id: 7 },
        ),
        (
            // Zero length.
            "1.0 200 10 a 0 0 0\n",
            TraceError::BadPrefixLen {
                line: 4,
                value: "0".into(),
            },
        ),
        (
            // Longer than the declared prefix.
            "1.0 200 10 a 0 0 101\n",
            TraceError::BadPrefixLen {
                line: 4,
                value: "101".into(),
            },
        ),
        (
            // Longer than the prefill.
            "1.0 50 10 a 0 0 60\n",
            TraceError::BadPrefixLen {
                line: 4,
                value: "60".into(),
            },
        ),
        (
            // A `-` must pair with a `-`.
            "1.0 200 10 a 0 - 50\n",
            TraceError::BadPrefixLen {
                line: 4,
                value: "50".into(),
            },
        ),
        (
            "1.0 200 10 a 0 0 50 extra\n",
            TraceError::TooManyFields { line: 4, found: 8 },
        ),
    ];
    for (body, expect) in cases {
        let input = format!("{header}{body}");
        assert_eq!(Trace::parse(&input), Err(expect.clone()), "input: {body:?}");
        assert!(
            expect.to_string().contains("line 4"),
            "error renders its line number: {expect}"
        );
    }
}

#[test]
fn malformed_v2_prefix_directives_rejected() {
    let dup = "#vidur-trace v2\nprefix p 10\nprefix p 20\n";
    assert!(matches!(
        Trace::parse(dup),
        Err(TraceError::Directive { line: 3, .. })
    ));
    let zero = "#vidur-trace v2\nprefix p 0\n";
    assert!(matches!(
        Trace::parse(zero),
        Err(TraceError::Directive { line: 2, .. })
    ));
    let arity = "#vidur-trace v2\nprefix p\n";
    assert!(matches!(
        Trace::parse(arity),
        Err(TraceError::Directive { line: 2, .. })
    ));
    let late = "#vidur-trace v2\n1.0 10 10\nprefix p 10\n";
    assert!(matches!(
        Trace::parse(late),
        Err(TraceError::Directive { line: 3, .. })
    ));
}

#[test]
fn invalid_prefix_metadata_rejected_on_write() {
    let base = |n: usize| {
        TraceWorkload::chat_1m().generate(n, &ArrivalProcess::Static, &mut SimRng::new(7))
    };
    // A stray prefix id with no declared prefixes must not silently write a
    // v1 file that drops the sharing on reload.
    let mut t = base(2);
    t.requests[1].prefix_id = 3;
    t.requests[1].prefix_len = 10;
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::PrefixIndexOutOfRange {
            prefix: 3,
            declared: 0
        })
    );
    // Out-of-range length.
    let mut t = base(2);
    t.prefixes = vec![TracePrefix {
        name: "p".to_string(),
        tokens: 8,
    }];
    t.requests[0].prefix_id = 0;
    t.requests[0].prefix_len = 9;
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::PrefixLenOutOfRange {
            prefix: 0,
            len: 9,
            max: 8
        })
    );
    // Unparseable prefix name.
    let mut t = base(2);
    t.prefixes = vec![TracePrefix {
        name: "has space".to_string(),
        tokens: 8,
    }];
    let mut out = Vec::new();
    assert_eq!(
        t.to_writer(&mut out),
        Err(TraceError::UnwritablePrefix {
            name: "has space".to_string()
        })
    );
}

#[test]
fn undeclared_tenants_are_synthesized_on_write() {
    // Priorities without declared tenants force five-field records; the
    // writer synthesizes tenant names so the file stays self-describing.
    let mut t = TraceWorkload::chat_1m().generate(4, &ArrivalProcess::Static, &mut SimRng::new(4));
    t.requests[1].priority = 2;
    t.requests[3].tenant = 1;
    let mut out = Vec::new();
    t.to_writer(&mut out).expect("write");
    let back = Trace::parse(std::str::from_utf8(&out).unwrap()).expect("reparse");
    assert_eq!(back.tenants, vec!["tenant-0", "tenant-1"]);
    assert_eq!(back.requests[1].priority, 2);
    assert_eq!(back.requests[3].tenant, 1);
}
