//! Differential pin for the prefix-cache tier (ISSUE 9).
//!
//! Three guarantees, each proptest-driven:
//!
//! 1. **Arming is free when nothing shares.** A scheduler with the prefix
//!    cache armed but fed only prefix-free requests makes byte-identical
//!    decisions to a disarmed one, across every batch policy and driver
//!    interleaving — and its prefix counters stay at zero.
//! 2. **The fast scheduler matches the reference on prefixed streams.**
//!    Requests carrying shared prefixes drive `ReplicaScheduler` and
//!    `ReferenceScheduler` in lockstep: identical batches, completion
//!    events, preemption/completion counters, block accounting, and
//!    prefix-hit/tokens-saved statistics (including per-tenant splits).
//! 3. **The prefix tier never corrupts block accounting.** Random
//!    admit/grow/release/evict interleavings on the raw `BlockManager`
//!    never free a referenced prefix block, never leak, and always
//!    conserve `held + cached == used ≤ total`.

use proptest::prelude::*;
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_scheduler::{
    BatchPolicyKind, BlockManager, ReferenceScheduler, ReplicaScheduler, Request, SchedulerConfig,
    NO_PREFIX,
};

const POLICIES: [BatchPolicyKind; 6] = [
    BatchPolicyKind::Vllm,
    BatchPolicyKind::OrcaPlus,
    BatchPolicyKind::SarathiServe { chunk_size: 128 },
    BatchPolicyKind::SarathiServe { chunk_size: 512 },
    BatchPolicyKind::FasterTransformer,
    BatchPolicyKind::LightLlm,
];

/// A generated request: prefill, decode, tenant, and an optional prefix
/// drawn from a small universe (`prefix_choice >= NUM_PREFIXES` = none;
/// `len_pct` scales the declared prefix length within the prompt).
type GenReq = (u64, u64, u32, u8, u8);

const NUM_PREFIXES: u8 = 3;

fn materialize(id: u64, (prefill, decode, tenant, prefix_choice, len_pct): GenReq) -> Request {
    let prefill = prefill.max(1);
    let mut req = Request::new(id, SimTime::ZERO, prefill, decode.max(1)).with_tenant(tenant);
    if prefix_choice < NUM_PREFIXES {
        // Prefixes model shared system prompts: every request carrying the
        // same id declares the same leading-token count, clamped into its
        // own prompt as the trace reader does.
        let declared = 16 + prefix_choice as u64 * 48;
        let len = (declared * (1 + len_pct as u64 % 4) / 4).clamp(1, prefill);
        req = req.with_prefix(prefix_choice as u64, len);
    }
    req
}

/// Four schedulers in lockstep: the fast and reference implementations,
/// each armed and disarmed. Used by the zero-share pin, where all four
/// must agree byte-for-byte.
struct Quad {
    fast_armed: ReplicaScheduler,
    fast_plain: ReplicaScheduler,
    ref_armed: ReferenceScheduler,
    ref_plain: ReferenceScheduler,
}

impl Quad {
    fn new(policy: BatchPolicyKind, max_batch: usize, blocks: u64) -> Self {
        let config = SchedulerConfig::new(policy, max_batch);
        let mut fast_armed = ReplicaScheduler::new(config, blocks, 16);
        let mut ref_armed = ReferenceScheduler::new(config, blocks, 16);
        fast_armed.arm_prefix_cache();
        ref_armed.arm_prefix_cache();
        Quad {
            fast_armed,
            fast_plain: ReplicaScheduler::new(config, blocks, 16),
            ref_armed,
            ref_plain: ReferenceScheduler::new(config, blocks, 16),
        }
    }

    fn add(&mut self, req: Request) {
        self.fast_armed.add_request(req);
        self.fast_plain.add_request(req);
        self.ref_armed.add_request(req);
        self.ref_plain.add_request(req);
    }

    fn form(&mut self) -> Option<BatchComposition> {
        let a = self.fast_armed.next_batch();
        let b = self.fast_plain.next_batch();
        let c = self.ref_armed.next_batch();
        let d = self.ref_plain.next_batch();
        assert_eq!(a, b, "arming the cache changed fast-path formation");
        assert_eq!(a, c, "fast diverged from armed reference");
        assert_eq!(a, d, "fast diverged from plain reference");
        a
    }

    fn complete(&mut self, batch: &BatchComposition) {
        let a = self.fast_armed.complete_batch(batch);
        let b = self.fast_plain.complete_batch(batch);
        let c = self.ref_armed.complete_batch(batch);
        let d = self.ref_plain.complete_batch(batch);
        assert_eq!(a, b, "arming the cache changed completion events");
        assert_eq!(a, c, "fast completions diverged from armed reference");
        assert_eq!(a, d, "fast completions diverged from plain reference");
    }

    fn assert_state_matches(&self) {
        let f = &self.fast_armed;
        assert_eq!(f.num_waiting(), self.fast_plain.num_waiting());
        assert_eq!(f.num_running(), self.fast_plain.num_running());
        assert_eq!(f.preemptions(), self.fast_plain.preemptions());
        assert_eq!(f.completed(), self.fast_plain.completed());
        assert_eq!(
            f.blocks().used_blocks(),
            self.fast_plain.blocks().used_blocks()
        );
        assert_eq!(
            f.blocks().used_blocks(),
            self.ref_armed.blocks().used_blocks()
        );
        assert_eq!(
            f.blocks().used_blocks(),
            self.ref_plain.blocks().used_blocks()
        );
        assert_eq!(
            f.blocks().num_holders(),
            self.fast_plain.blocks().num_holders()
        );
        // No shared prefixes ⇒ the armed tier never records a hit, never
        // caches a block, never saves a token.
        for (hits, saved, cached) in [
            (
                f.prefix_hit_requests(),
                f.prefix_tokens_saved(),
                f.blocks().prefix_cached_blocks(),
            ),
            (
                self.ref_armed.prefix_hit_requests(),
                self.ref_armed.prefix_tokens_saved(),
                self.ref_armed.blocks().prefix_cached_blocks(),
            ),
        ] {
            assert_eq!(hits, 0, "zero-share run recorded a prefix hit");
            assert_eq!(saved, 0, "zero-share run saved tokens");
            assert_eq!(cached, 0, "zero-share run cached prefix blocks");
        }
    }
}

/// Drives the quad through arrivals, formations, and delayed completions,
/// then drains to empty — the armed schedulers must shadow the plain ones
/// byte-for-byte throughout.
fn drive_zero_share(
    policy: BatchPolicyKind,
    max_batch: usize,
    blocks: u64,
    requests: &[(u64, u64)],
    ops: &[u8],
) {
    let mut quad = Quad::new(policy, max_batch, blocks);
    let mut next_req = 0usize;
    let mut inflight: Vec<BatchComposition> = Vec::new();
    let add_next = |quad: &mut Quad, next_req: &mut usize| {
        if *next_req < requests.len() {
            let (p, d) = requests[*next_req];
            let id = *next_req as u64;
            quad.add(Request::new(id, SimTime::ZERO, p.max(1), d.max(1)));
            *next_req += 1;
        }
    };
    for &op in ops {
        match op % 6 {
            0 | 1 => add_next(&mut quad, &mut next_req),
            2 | 3 => {
                if inflight.len() < 3 {
                    if let Some(b) = quad.form() {
                        inflight.push(b);
                    }
                } else {
                    let b = inflight.remove(0);
                    quad.complete(&b);
                }
            }
            _ => {
                if !inflight.is_empty() {
                    let b = inflight.remove(0);
                    quad.complete(&b);
                }
            }
        }
        quad.assert_state_matches();
    }
    while next_req < requests.len() {
        add_next(&mut quad, &mut next_req);
    }
    for b in inflight.drain(..) {
        quad.complete(&b);
    }
    let mut guard = 0;
    while quad.fast_armed.outstanding() > 0 {
        guard += 1;
        assert!(guard < 200_000, "no convergence");
        match quad.form() {
            Some(b) => quad.complete(&b),
            None => panic!("stuck: outstanding but no batch forms"),
        }
        quad.assert_state_matches();
    }
    assert_eq!(quad.fast_plain.outstanding(), 0);
    assert_eq!(quad.fast_armed.blocks().used_blocks(), 0);
    quad.assert_state_matches();
}

proptest! {
    /// Satellite 1a: an armed cache with zero prefix sharing is invisible —
    /// every policy, every interleaving, tight and ample memory.
    #[test]
    fn armed_cache_with_zero_sharing_is_byte_identical(
        policy_idx in 0usize..6,
        max_batch in 1usize..24,
        tight_mem in proptest::bool::ANY,
        requests in proptest::collection::vec((1u64..400, 1u64..30), 1..30),
        ops in proptest::collection::vec(0u8..6, 0..100),
    ) {
        let blocks = if tight_mem { 40 } else { 4000 };
        let r = std::panic::catch_unwind(|| {
            drive_zero_share(POLICIES[policy_idx], max_batch, blocks, &requests, &ops)
        });
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "FAILING CASE ({msg}): policy={policy_idx} max_batch={max_batch} \
                 blocks={blocks}\nrequests={requests:?}\nops={ops:?}"
            );
        }
    }
}

/// Fast and reference schedulers, both armed, driven over prefixed streams.
struct Pair {
    fast: ReplicaScheduler,
    refr: ReferenceScheduler,
}

impl Pair {
    fn new(policy: BatchPolicyKind, max_batch: usize, blocks: u64) -> Self {
        let config = SchedulerConfig::new(policy, max_batch);
        let mut fast = ReplicaScheduler::new(config, blocks, 16);
        let mut refr = ReferenceScheduler::new(config, blocks, 16);
        fast.arm_prefix_cache();
        refr.arm_prefix_cache();
        Pair { fast, refr }
    }

    fn add(&mut self, req: Request) {
        self.fast.add_request(req);
        self.refr.add_request(req);
    }

    fn form(&mut self) -> Option<BatchComposition> {
        let a = self.fast.next_batch();
        let b = self.refr.next_batch();
        assert_eq!(a, b, "prefixed batch formation diverged");
        a
    }

    fn complete(&mut self, batch: &BatchComposition) {
        let a = self.fast.complete_batch(batch);
        let b = self.refr.complete_batch(batch);
        assert_eq!(a, b, "prefixed completion events diverged");
    }

    fn assert_state_matches(&self) {
        assert_eq!(self.fast.num_waiting(), self.refr.num_waiting());
        assert_eq!(self.fast.num_running(), self.refr.num_running());
        assert_eq!(self.fast.preemptions(), self.refr.preemptions());
        assert_eq!(self.fast.completed(), self.refr.completed());
        assert_eq!(
            self.fast.blocks().used_blocks(),
            self.refr.blocks().used_blocks()
        );
        assert_eq!(
            self.fast.blocks().num_holders(),
            self.refr.blocks().num_holders()
        );
        assert_eq!(
            self.fast.blocks().prefix_cached_blocks(),
            self.refr.blocks().prefix_cached_blocks()
        );
        assert_eq!(
            self.fast.blocks().num_prefix_entries(),
            self.refr.blocks().num_prefix_entries()
        );
        assert_eq!(
            self.fast.prefix_hit_requests(),
            self.refr.prefix_hit_requests()
        );
        assert_eq!(
            self.fast.prefix_tokens_saved(),
            self.refr.prefix_tokens_saved()
        );
        assert_eq!(
            self.fast.tenant_prefix_hits(),
            self.refr.tenant_prefix_hits()
        );
        assert_eq!(
            self.fast.tenant_prefix_saved(),
            self.refr.tenant_prefix_saved()
        );
    }
}

/// Drives the armed pair over a prefixed request stream.
fn drive_prefixed(
    policy: BatchPolicyKind,
    max_batch: usize,
    blocks: u64,
    requests: &[GenReq],
    ops: &[u8],
) {
    let mut pair = Pair::new(policy, max_batch, blocks);
    let mut next_req = 0usize;
    let mut inflight: Vec<BatchComposition> = Vec::new();
    let add_next = |pair: &mut Pair, next_req: &mut usize| {
        if *next_req < requests.len() {
            pair.add(materialize(*next_req as u64, requests[*next_req]));
            *next_req += 1;
        }
    };
    for &op in ops {
        match op % 6 {
            0 | 1 => add_next(&mut pair, &mut next_req),
            2 | 3 => {
                if inflight.len() < 3 {
                    if let Some(b) = pair.form() {
                        inflight.push(b);
                    }
                } else {
                    let b = inflight.remove(0);
                    pair.complete(&b);
                }
            }
            _ => {
                if !inflight.is_empty() {
                    let b = inflight.remove(0);
                    pair.complete(&b);
                }
            }
        }
        pair.assert_state_matches();
    }
    while next_req < requests.len() {
        add_next(&mut pair, &mut next_req);
    }
    for b in inflight.drain(..) {
        pair.complete(&b);
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 200_000, "no convergence");
        match pair.form() {
            Some(b) => pair.complete(&b),
            None => panic!("stuck: outstanding but no batch forms"),
        }
        pair.assert_state_matches();
    }
    assert_eq!(pair.refr.outstanding(), 0);
    // With everything released, the only used blocks are the resident
    // cached prefixes — and crash-evicting them must zero the manager.
    assert_eq!(
        pair.fast.blocks().used_blocks(),
        pair.fast.blocks().prefix_cached_blocks()
    );
    pair.assert_state_matches();
}

proptest! {
    /// Satellite 1b: the optimized scheduler matches the reference over
    /// prefixed multi-tenant streams — batches, events, and prefix stats.
    #[test]
    fn prefixed_streams_match_reference(
        policy_idx in 0usize..6,
        max_batch in 1usize..24,
        tight_mem in proptest::bool::ANY,
        requests in proptest::collection::vec(
            (1u64..400, 1u64..30, 0u32..3, 0u8..5, 0u8..8),
            1..30,
        ),
        ops in proptest::collection::vec(0u8..6, 0..100),
    ) {
        let blocks = if tight_mem { 40 } else { 4000 };
        let r = std::panic::catch_unwind(|| {
            drive_prefixed(POLICIES[policy_idx], max_batch, blocks, &requests, &ops)
        });
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "FAILING CASE ({msg}): policy={policy_idx} max_batch={max_batch} \
                 blocks={blocks}\nrequests={requests:?}\nops={ops:?}"
            );
        }
    }

    /// Satellite 3: random admit/grow/release/evict interleavings on the raw
    /// block manager never free a referenced prefix block, never leak, and
    /// always conserve blocks: `Σ held + cached == used ≤ total`.
    #[test]
    fn prefix_tier_never_corrupts_block_accounting(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..24, 1u64..500, 0u64..4, 0u8..8),
            0..250,
        ),
    ) {
        const IDS: u64 = 24;
        let mut m = BlockManager::new(60, 16, 0.05);
        m.arm_prefix_cache();
        // What each live holder borrowed at admission, to re-check that the
        // entry it reads stays resident.
        let mut borrowed: Vec<Option<(u64, u64)>> = vec![None; IDS as usize];
        for (op, id, tokens, key_choice, len_pct) in ops {
            match op {
                // Admit with an optional prefix.
                0 => {
                    if m.held_by(id) == 0 && borrowed[id as usize].is_none() {
                        let key = if key_choice < 3 { key_choice } else { NO_PREFIX };
                        let prefill = tokens.max(2);
                        let len = (prefill * (1 + len_pct as u64 % 4) / 4).max(1);
                        if let Some(hit) =
                            m.try_reserve_prefixed(id, prefill + 8, key, prefill, len)
                        {
                            prop_assert!(hit < prefill, "hit must leave prefill work");
                            prop_assert_eq!(hit % 16, 0, "hits are whole blocks");
                            if key != NO_PREFIX {
                                borrowed[id as usize] = Some((key, m.borrowed_blocks(id)));
                            }
                        }
                    }
                }
                // Decode growth.
                1 => {
                    if m.held_by(id) > 0 || borrowed[id as usize].is_some() {
                        m.try_grow(id, tokens + 64);
                    }
                }
                // Finish / preempt: release and drop the borrow.
                2 => {
                    m.release(id);
                    borrowed[id as usize] = None;
                }
                // Crash-path eviction of unreferenced cached prefixes.
                _ => m.evict_cached_prefixes(),
            }
            prop_assert!(m.used_blocks() <= m.total_blocks());
            let held_sum: u64 = (0..IDS).map(|i| m.held_by(i)).sum();
            prop_assert_eq!(
                held_sum + m.prefix_cached_blocks(),
                m.used_blocks(),
                "held + cached must equal used"
            );
            // Every live borrower's entry must still be resident with at
            // least the blocks it borrowed (borrowed_blocks panics inside
            // the manager if a referenced entry were evicted).
            for (i, b) in borrowed.iter().enumerate() {
                if let Some((_, blocks)) = b {
                    prop_assert_eq!(m.borrowed_blocks(i as u64), *blocks);
                }
            }
        }
        // Drain: release everything, then evict — nothing may leak.
        for id in 0..IDS {
            m.release(id);
        }
        m.evict_cached_prefixes();
        prop_assert_eq!(m.used_blocks(), 0, "blocks leaked");
        prop_assert_eq!(m.num_prefix_entries(), 0, "entries leaked");
        prop_assert_eq!(m.num_holders(), 0, "holders leaked");
    }
}

/// Deterministic pin: a hot shared prefix actually hits, saves whole-block
/// prefill tokens, splits per tenant, and survives `evict_all`.
#[test]
fn shared_prefix_hits_and_crash_eviction_reclaims() {
    let mut s = ReplicaScheduler::new(SchedulerConfig::new(BatchPolicyKind::Vllm, 32), 10_000, 16);
    s.arm_prefix_cache();
    // Ten requests over two tenants, all sharing a 128-token prefix.
    for i in 0..10u64 {
        s.add_request(
            Request::new(i, SimTime::ZERO, 256, 4)
                .with_tenant((i % 2) as u32)
                .with_prefix(7, 128),
        );
    }
    let mut guard = 0;
    while s.outstanding() > 0 {
        guard += 1;
        assert!(guard < 10_000, "no convergence");
        let b = s.next_batch().expect("work outstanding but no batch");
        s.complete_batch(&b);
    }
    // The first request misses (donating the entry); the other nine hit.
    assert_eq!(s.prefix_hit_requests(), 9);
    assert_eq!(s.prefix_tokens_saved(), 9 * 128);
    let hits: u64 = s.tenant_prefix_hits().iter().sum();
    let saved: u64 = s.tenant_prefix_saved().iter().sum();
    assert_eq!(hits, 9, "tenant hit split must account for every hit");
    assert_eq!(saved, 9 * 128, "tenant saved split must balance");
    assert!(s.tenant_prefix_hits().iter().filter(|&&h| h > 0).count() == 2);
    // The entry stays resident for future arrivals…
    assert_eq!(s.blocks().num_prefix_entries(), 1);
    assert_eq!(s.blocks().prefix_cached_blocks(), 128 / 16);
    assert_eq!(s.blocks().used_blocks(), 128 / 16);
    // …and a crash eviction reclaims every block.
    let mut evicted = Vec::new();
    s.evict_all(&mut evicted);
    assert!(evicted.is_empty(), "nothing was queued or running");
    assert_eq!(s.blocks().used_blocks(), 0);
    assert_eq!(s.blocks().num_prefix_entries(), 0);
}

/// Deterministic pin: LRU eviction under memory pressure drops the coldest
/// unreferenced entry first and never a referenced one.
#[test]
fn lru_eviction_prefers_cold_unreferenced_entries() {
    let mut m = BlockManager::new(20, 16, 0.0);
    m.arm_prefix_cache();
    // Two cached prefixes (4 blocks each), both released ⇒ unreferenced.
    assert_eq!(m.try_reserve_prefixed(0, 64, 100, 64, 64), Some(0));
    assert_eq!(m.try_reserve_prefixed(1, 64, 200, 64, 64), Some(0));
    m.release(0);
    m.release(1);
    assert_eq!(m.used_blocks(), 8);
    // Touch key 100 via a live borrower so key 200 is the LRU victim.
    assert_eq!(m.try_reserve_prefixed(2, 80, 100, 64, 64), Some(48));
    // 20 total, 8 cached + holder-2's own blocks; demand the rest so the
    // manager must evict. Key 200 (unreferenced, coldest) goes; key 100 is
    // referenced and must survive even though memory stays tight.
    let free = m.free_blocks();
    assert!(m.try_reserve(3, (free + 4) * 16));
    assert_eq!(m.num_prefix_entries(), 1, "one entry evicted");
    assert_eq!(m.prefix_cached_tokens(100, 64), 48, "hot entry survived");
    assert_eq!(m.prefix_cached_tokens(200, 64), 0, "cold entry evicted");
    // Asking for more than eviction can supply fails cleanly.
    assert!(!m.try_reserve(4, 10_000 * 16));
    m.release(2);
    m.release(3);
    m.evict_cached_prefixes();
    assert_eq!(m.used_blocks(), 0);
}
