//! Differential pin for the multi-tenant priority extension: the optimized
//! `ReplicaScheduler`'s tiered admission (strict priority classes, FIFO
//! within a class) and priority-aware preemption must make byte-identical
//! decisions to the priority-extended `ReferenceScheduler` for every
//! policy, tenant/priority mix, and driver interleaving — including
//! preemption churn under tight KV memory and pipeline-style overlap.
//! Mirrors `formation_equivalence.rs`, which pins the single-priority path.

use proptest::prelude::*;
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_scheduler::{
    BatchPolicyKind, ReferenceScheduler, ReplicaScheduler, Request, SchedulerConfig,
};

const POLICIES: [BatchPolicyKind; 6] = [
    BatchPolicyKind::Vllm,
    BatchPolicyKind::OrcaPlus,
    BatchPolicyKind::SarathiServe { chunk_size: 128 },
    BatchPolicyKind::SarathiServe { chunk_size: 512 },
    BatchPolicyKind::FasterTransformer,
    BatchPolicyKind::LightLlm,
];

struct Pair {
    fast: ReplicaScheduler,
    refr: ReferenceScheduler,
}

impl Pair {
    fn new(policy: BatchPolicyKind, max_batch: usize, blocks: u64) -> Self {
        let config = SchedulerConfig::new(policy, max_batch);
        Pair {
            fast: ReplicaScheduler::new(config, blocks, 16),
            refr: ReferenceScheduler::new(config, blocks, 16),
        }
    }

    fn add(&mut self, req: Request) {
        self.fast.add_request(req);
        self.refr.add_request(req);
    }

    fn form(&mut self) -> Option<BatchComposition> {
        let a = self.fast.next_batch();
        let b = self.refr.next_batch();
        assert_eq!(a, b, "batch formation diverged");
        a
    }

    fn complete(&mut self, batch: &BatchComposition) {
        let a = self.fast.complete_batch(batch);
        let b = self.refr.complete_batch(batch);
        assert_eq!(a, b, "completion events diverged");
    }

    fn assert_state_matches(&self) {
        assert_eq!(self.fast.num_waiting(), self.refr.num_waiting());
        assert_eq!(self.fast.num_running(), self.refr.num_running());
        assert_eq!(self.fast.preemptions(), self.refr.preemptions());
        assert_eq!(self.fast.completed(), self.refr.completed());
        assert_eq!(
            self.fast.blocks().used_blocks(),
            self.refr.blocks().used_blocks()
        );
        assert_eq!(
            self.fast.blocks().num_holders(),
            self.refr.blocks().num_holders()
        );
    }
}

/// `(prefill, decode, tenant, priority)` request tuples.
type Mix = (u64, u64, u32, u8);

fn req(id: u64, mix: Mix) -> Request {
    let (p, d, tenant, priority) = mix;
    Request::new(id, SimTime::ZERO, p.max(1), d.max(1))
        .with_tenant(tenant)
        .with_priority(priority)
}

/// Drives the pair through a schedule: ops interleave arrivals, batch
/// formation, and (possibly delayed) completions, then drain to empty.
fn drive(policy: BatchPolicyKind, max_batch: usize, blocks: u64, requests: &[Mix], ops: &[u8]) {
    let mut pair = Pair::new(policy, max_batch, blocks);
    let mut next_req = 0usize;
    let mut inflight: Vec<BatchComposition> = Vec::new();
    let add_next = |pair: &mut Pair, next_req: &mut usize| {
        if *next_req < requests.len() {
            pair.add(req(*next_req as u64, requests[*next_req]));
            *next_req += 1;
        }
    };
    for &op in ops {
        match op % 6 {
            0 | 1 => add_next(&mut pair, &mut next_req),
            2 | 3 => {
                // Allow up to 3 overlapping batches (pipeline parallelism).
                if inflight.len() < 3 {
                    if let Some(b) = pair.form() {
                        inflight.push(b);
                    }
                } else if let Some(b) = inflight.first().cloned() {
                    inflight.remove(0);
                    pair.complete(&b);
                }
            }
            _ => {
                if !inflight.is_empty() {
                    let b = inflight.remove(0);
                    pair.complete(&b);
                }
            }
        }
        pair.assert_state_matches();
    }
    while next_req < requests.len() {
        add_next(&mut pair, &mut next_req);
    }
    for b in inflight.drain(..) {
        pair.complete(&b);
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 200_000, "no convergence");
        match pair.form() {
            Some(b) => pair.complete(&b),
            None => panic!("stuck: outstanding but no batch forms"),
        }
        pair.assert_state_matches();
    }
    assert_eq!(pair.refr.outstanding(), 0);
    assert_eq!(pair.fast.blocks().used_blocks(), 0);
    pair.assert_state_matches();
}

proptest! {
    #[test]
    fn priority_formation_matches_reference(
        policy_idx in 0usize..6,
        max_batch in 1usize..24,
        tight_mem in proptest::bool::ANY,
        requests in proptest::collection::vec(
            (1u64..400, 1u64..30, 0u32..4, 0u8..4), 1..40),
        ops in proptest::collection::vec(0u8..6, 0..120),
    ) {
        // Tight memory forces priority-aware preemption churn; ample memory
        // exercises tiered admission on the steady decode path.
        let blocks = if tight_mem { 40 } else { 4000 };
        let r = std::panic::catch_unwind(|| {
            drive(POLICIES[policy_idx], max_batch, blocks, &requests, &ops)
        });
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "FAILING CASE ({msg}): policy={policy_idx} max_batch={max_batch} \
                 blocks={blocks}\nrequests={requests:?}\nops={ops:?}"
            );
        }
    }
}

/// Deterministic preemption-churn pin: tiny KV memory, long decodes, three
/// interleaved priority classes — the priority-aware victim walk (full
/// merged scan in the optimized scheduler vs the naive `max_by_key` in the
/// reference) must pick byte-identical victims throughout.
#[test]
fn priority_churn_matches_reference() {
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 256 },
        BatchPolicyKind::LightLlm,
    ] {
        let mut pair = Pair::new(policy, 16, 14);
        for i in 0..15u64 {
            pair.add(req(i, (25 + i * 7, 40, (i % 3) as u32, (i % 3) as u8)));
        }
        let mut guard = 0;
        while pair.fast.outstanding() > 0 {
            guard += 1;
            assert!(guard < 100_000, "{policy}: no convergence");
            match pair.form() {
                Some(b) => pair.complete(&b),
                None => panic!("{policy}: stuck"),
            }
            pair.assert_state_matches();
        }
        assert_eq!(pair.fast.completed(), 15, "{policy}");
    }
    // At least the vLLM run must actually churn for this pin to mean
    // anything; re-run it standalone and check.
    let mut pair = Pair::new(BatchPolicyKind::Vllm, 16, 14);
    for i in 0..15u64 {
        pair.add(req(i, (25 + i * 7, 40, (i % 3) as u32, (i % 3) as u8)));
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 100_000);
        if let Some(b) = pair.form() {
            pair.complete(&b);
        }
    }
    assert!(
        pair.fast.preemptions() > 0,
        "scenario must actually preempt"
    );
}

/// Mid-run priority flips: a stream that starts uniform-priority (the fast
/// FIFO path) and then receives prioritized arrivals must stay in lockstep
/// across the latch-over.
#[test]
fn late_priority_arrivals_match_reference() {
    let mut pair = Pair::new(BatchPolicyKind::SarathiServe { chunk_size: 128 }, 8, 200);
    for i in 0..6u64 {
        pair.add(req(i, (100 + i * 31, 12, 0, 0)));
    }
    for _ in 0..4 {
        if let Some(b) = pair.form() {
            pair.complete(&b);
        }
        pair.assert_state_matches();
    }
    // Now urgent and bulk classes arrive mid-run.
    for i in 6..14u64 {
        pair.add(req(
            i,
            (
                80 + i * 17,
                8,
                (i % 2) as u32,
                if i % 2 == 0 { 0 } else { 3 },
            ),
        ));
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 100_000, "no convergence");
        match pair.form() {
            Some(b) => pair.complete(&b),
            None => panic!("stuck"),
        }
        pair.assert_state_matches();
    }
    assert_eq!(pair.fast.completed(), 14);
}
