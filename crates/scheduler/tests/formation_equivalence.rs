//! Differential pin: the optimized `ReplicaScheduler` (phase-partitioned
//! intrusive lists, incremental counters, pooled slice buffers) must make
//! byte-identical decisions to the seed's straightforward
//! `ReferenceScheduler` for every policy, request mix, and driver
//! interleaving — including pipeline-style overlap where several batches are
//! in flight before the first completes.

use proptest::prelude::*;
use vidur_core::time::SimTime;
use vidur_model::batch::BatchComposition;
use vidur_scheduler::{
    BatchPolicyKind, ReferenceScheduler, ReplicaScheduler, Request, SchedulerConfig,
};

const POLICIES: [BatchPolicyKind; 6] = [
    BatchPolicyKind::Vllm,
    BatchPolicyKind::OrcaPlus,
    BatchPolicyKind::SarathiServe { chunk_size: 128 },
    BatchPolicyKind::SarathiServe { chunk_size: 512 },
    BatchPolicyKind::FasterTransformer,
    BatchPolicyKind::LightLlm,
];

struct Pair {
    fast: ReplicaScheduler,
    refr: ReferenceScheduler,
}

impl Pair {
    fn new(policy: BatchPolicyKind, max_batch: usize, blocks: u64) -> Self {
        let config = SchedulerConfig::new(policy, max_batch);
        Pair {
            fast: ReplicaScheduler::new(config, blocks, 16),
            refr: ReferenceScheduler::new(config, blocks, 16),
        }
    }

    fn add(&mut self, req: Request) {
        self.fast.add_request(req);
        self.refr.add_request(req);
    }

    fn add_remote(&mut self, req: Request, decoded: u64) {
        self.fast.add_remote_prefilled(req, decoded);
        self.refr.add_remote_prefilled(req, decoded);
    }

    /// Forms one batch on both schedulers, asserting identical slices.
    fn form(&mut self) -> Option<BatchComposition> {
        let a = self.fast.next_batch();
        let b = self.refr.next_batch();
        assert_eq!(a, b, "batch formation diverged");
        a
    }

    /// Completes a batch on both schedulers, asserting identical events.
    fn complete(&mut self, batch: &BatchComposition) {
        let a = self.fast.complete_batch(batch);
        let b = self.refr.complete_batch(batch);
        assert_eq!(a, b, "completion events diverged");
    }

    fn assert_state_matches(&self) {
        assert_eq!(self.fast.num_waiting(), self.refr.num_waiting());
        assert_eq!(self.fast.num_running(), self.refr.num_running());
        assert_eq!(self.fast.preemptions(), self.refr.preemptions());
        assert_eq!(self.fast.completed(), self.refr.completed());
        assert_eq!(
            self.fast.blocks().used_blocks(),
            self.refr.blocks().used_blocks()
        );
        assert_eq!(
            self.fast.blocks().num_holders(),
            self.refr.blocks().num_holders()
        );
    }
}

fn req(id: u64, prefill: u64, decode: u64) -> Request {
    Request::new(id, SimTime::ZERO, prefill.max(1), decode.max(1))
}

/// Drives the pair through a schedule: ops interleave arrivals, batch
/// formation, and (possibly delayed) completions, then drain to empty.
fn drive(
    policy: BatchPolicyKind,
    max_batch: usize,
    blocks: u64,
    requests: &[(u64, u64)],
    ops: &[u8],
    all_remote: bool,
) {
    let mut pair = Pair::new(policy, max_batch, blocks);
    let mut next_req = 0usize;
    let mut inflight: Vec<BatchComposition> = Vec::new();
    // Remote-prefilled and locally-arriving requests are never mixed in one
    // scheduler (matching real drivers: a disaggregated decode pool is
    // all-remote, everything else all-local) — a remote request queued
    // behind a local one would be re-prefilled by the policy admission
    // loops, a state no simulator reaches.
    let add_next = |pair: &mut Pair, next_req: &mut usize| {
        if *next_req < requests.len() {
            let (p, d) = requests[*next_req];
            let id = *next_req as u64;
            if all_remote {
                // Disagg only hands off requests with more tokens to produce
                // (single-token requests finish on the prefill pool).
                pair.add_remote(req(id, p, d.max(2)), 1);
            } else {
                pair.add(req(id, p, d));
            }
            *next_req += 1;
        }
    };
    for &op in ops {
        match op % 6 {
            0 | 1 => add_next(&mut pair, &mut next_req),
            2 | 3 => {
                // Allow up to 3 overlapping batches (pipeline parallelism).
                if inflight.len() < 3 {
                    if let Some(b) = pair.form() {
                        inflight.push(b);
                    }
                } else if let Some(b) = inflight.first().cloned() {
                    inflight.remove(0);
                    pair.complete(&b);
                }
            }
            _ => {
                if !inflight.is_empty() {
                    let b = inflight.remove(0);
                    pair.complete(&b);
                }
            }
        }
        pair.assert_state_matches();
    }
    // Drain: add the rest, then run to completion.
    while next_req < requests.len() {
        add_next(&mut pair, &mut next_req);
    }
    for b in inflight.drain(..) {
        pair.complete(&b);
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 200_000, "no convergence");
        match pair.form() {
            Some(b) => pair.complete(&b),
            None => panic!("stuck: outstanding but no batch forms"),
        }
        pair.assert_state_matches();
    }
    assert_eq!(pair.refr.outstanding(), 0);
    assert_eq!(pair.fast.blocks().used_blocks(), 0);
    pair.assert_state_matches();
}

proptest! {
    #[test]
    fn formation_matches_reference(
        policy_idx in 0usize..6,
        max_batch in 1usize..24,
        tight_mem in proptest::bool::ANY,
        requests in proptest::collection::vec((1u64..400, 1u64..30), 1..40),
        ops in proptest::collection::vec(0u8..6, 0..120),
        all_remote in proptest::bool::ANY,
    ) {
        // Tight memory forces preemption churn; ample memory exercises the
        // steady decode path.
        let blocks = if tight_mem { 40 } else { 4000 };
        let r = std::panic::catch_unwind(|| {
            drive(
                POLICIES[policy_idx],
                max_batch,
                blocks,
                &requests,
                &ops,
                all_remote,
            )
        });
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "FAILING CASE ({msg}): policy={policy_idx} max_batch={max_batch} \
                 blocks={blocks} all_remote={all_remote}\nrequests={requests:?}\nops={ops:?}"
            );
        }
    }
}

/// Deterministic long-run pin: a decode-heavy drain on every policy, large
/// enough that any ordering bug in the phase lists would surface.
#[test]
fn long_drain_matches_reference_all_policies() {
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        let mut pair = Pair::new(policy, 64, 50_000);
        for i in 0..300u64 {
            pair.add(req(i, 100 + (i % 700), 1 + (i % 50)));
        }
        let mut guard = 0;
        while pair.fast.outstanding() > 0 {
            guard += 1;
            assert!(guard < 100_000, "{policy}: no convergence");
            match pair.form() {
                Some(b) => pair.complete(&b),
                None => panic!("{policy}: stuck"),
            }
        }
        pair.assert_state_matches();
        assert_eq!(pair.fast.completed(), 300, "{policy}");
    }
}

/// Preemption-churn pin: tiny KV memory, long decodes — the vLLM recompute
/// path must pick byte-identical victims.
#[test]
fn preemption_churn_matches_reference() {
    let mut pair = Pair::new(BatchPolicyKind::Vllm, 16, 12);
    for i in 0..12u64 {
        pair.add(req(i, 30 + i * 7, 40));
    }
    let mut guard = 0;
    while pair.fast.outstanding() > 0 {
        guard += 1;
        assert!(guard < 100_000, "no convergence");
        match pair.form() {
            Some(b) => pair.complete(&b),
            None => panic!("stuck"),
        }
        pair.assert_state_matches();
    }
    assert!(
        pair.fast.preemptions() > 0,
        "scenario must actually preempt"
    );
}
