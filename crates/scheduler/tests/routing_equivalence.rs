//! Differential pin: the [`RoutingTier`] re-expression of the four seed
//! routing policies must make **byte-identical decisions** to the legacy
//! [`GlobalPolicy`] spec router, for every policy, replica count, and
//! arrival/completion interleaving — including the deferred-queue drain
//! order the cluster simulator used to hand-roll.
//!
//! The legacy side of the harness replays exactly what the pre-tier
//! `ClusterSimulator` did: rebuild an outstanding vector per arrival, call
//! `try_route`, push deferrals into a FIFO, and re-offer the queue front
//! after every completion.

use proptest::prelude::*;
use std::collections::VecDeque;
use vidur_scheduler::{GlobalPolicy, GlobalPolicyKind, RouteRequest, RoutingTier};

const LEGACY_POLICIES: [GlobalPolicyKind; 4] = [
    GlobalPolicyKind::RoundRobin,
    GlobalPolicyKind::LeastOutstanding,
    GlobalPolicyKind::Random,
    GlobalPolicyKind::Deferred { max_outstanding: 3 },
];

/// One dispatched request awaiting completion.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    tenant: u32,
    tokens: u64,
}

/// The seed's routing layer, verbatim: a stateless-per-call spec router, an
/// explicit outstanding vector, and a FIFO deferred queue drained after
/// completions.
struct LegacyTier {
    router: GlobalPolicy,
    outstanding: Vec<usize>,
    deferred: VecDeque<RouteRequest>,
}

impl LegacyTier {
    fn new(kind: GlobalPolicyKind, replicas: usize, seed: u64) -> Self {
        LegacyTier {
            router: GlobalPolicy::new(kind, replicas, seed),
            outstanding: vec![0; replicas],
            deferred: VecDeque::new(),
        }
    }

    fn route(&mut self, req: RouteRequest) -> Option<usize> {
        match self.router.try_route(&self.outstanding) {
            Some(target) => {
                self.outstanding[target] += 1;
                Some(target)
            }
            None => {
                self.deferred.push_back(req);
                None
            }
        }
    }

    fn on_finished(&mut self, replica: usize) {
        self.outstanding[replica] -= 1;
    }

    fn drain(&mut self) -> Vec<(u64, usize)> {
        let mut bound = Vec::new();
        while let Some(&front) = self.deferred.front() {
            match self.router.try_route(&self.outstanding) {
                Some(target) => {
                    self.deferred.pop_front();
                    self.outstanding[target] += 1;
                    bound.push((front.key, target));
                }
                None => break,
            }
        }
        bound
    }
}

/// Drives both tiers through the same arrival/completion schedule, asserting
/// every placement, deferral, and drain decision matches.
fn drive(
    kind: GlobalPolicyKind,
    replicas: usize,
    seed: u64,
    requests: &[(u32, u8, u64)],
    ops: &[u8],
) {
    let mut legacy = LegacyTier::new(kind, replicas, seed);
    let mut tier = RoutingTier::new(kind, replicas, seed, &[]);
    let mut queues: Vec<VecDeque<Inflight>> = vec![VecDeque::new(); replicas];
    let mut next_req = 0usize;

    let arrive = |legacy: &mut LegacyTier,
                  tier: &mut RoutingTier,
                  queues: &mut Vec<VecDeque<Inflight>>,
                  next_req: &mut usize| {
        if *next_req >= requests.len() {
            return;
        }
        let (tenant, priority, tokens) = requests[*next_req];
        let req = RouteRequest {
            key: *next_req as u64,
            tenant,
            priority,
            tokens,
        };
        *next_req += 1;
        let a = legacy.route(req);
        let b = tier.route(req);
        assert_eq!(a, b, "placement diverged for request {req:?}");
        if let Some(target) = a {
            queues[target].push_back(Inflight { tenant, tokens });
        }
    };

    for &op in ops {
        if op < 6 {
            arrive(&mut legacy, &mut tier, &mut queues, &mut next_req);
        } else {
            // Completion: first nonempty replica queue scanning from the
            // op-selected index (same deterministic driver on both sides).
            let start = (op as usize - 6) % replicas;
            let Some(r) = (0..replicas)
                .map(|i| (start + i) % replicas)
                .find(|&r| !queues[r].is_empty())
            else {
                continue;
            };
            let done = queues[r].pop_front().expect("nonempty");
            legacy.on_finished(r);
            tier.on_finished(r, done.tenant, done.tokens);
            let expect = legacy.drain();
            let mut got = Vec::new();
            while let Some((req, target)) = tier.next_ready() {
                got.push((req.key, target));
                queues[target].push_back(Inflight {
                    tenant: req.tenant,
                    tokens: req.tokens,
                });
            }
            assert_eq!(expect, got, "deferred drain diverged");
        }
        // The incremental view must always mirror the legacy vector.
        for r in 0..replicas {
            assert_eq!(
                tier.view().outstanding(r),
                legacy.outstanding[r],
                "outstanding count diverged on replica {r}"
            );
        }
        assert_eq!(tier.deferred_len(), legacy.deferred.len());
    }
}

proptest! {
    #[test]
    fn tier_matches_legacy_global_policy(
        policy_idx in 0usize..4,
        replicas in 1usize..6,
        seed in 0u64..1_000,
        requests in proptest::collection::vec((0u32..4, 0u8..4, 1u64..500), 1..60),
        ops in proptest::collection::vec(0u8..12, 0..240),
    ) {
        let r = std::panic::catch_unwind(|| {
            drive(LEGACY_POLICIES[policy_idx], replicas, seed, &requests, &ops)
        });
        if let Err(payload) = r {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "FAILING CASE ({msg}): policy={policy_idx} replicas={replicas} \
                 seed={seed}\nrequests={requests:?}\nops={ops:?}"
            );
        }
    }
}

/// Deterministic pin: a `multi_tenant_burst`-shaped schedule — four tenants
/// with interleaved priority classes, bursty arrivals, and staggered
/// completions — routes identically through the legacy router and the tier
/// for every seed policy. Complements the bit-exact simulator fingerprints
/// in `tests/engine_regression.rs` at the routing layer itself.
#[test]
fn multi_tenant_burst_schedule_routes_identically() {
    // 4 tenants × 4 priority classes; arrival bursts of 5 then 2
    // completions, over 3 replicas (the bench scenario's shape).
    let requests: Vec<(u32, u8, u64)> = (0..160u64)
        .map(|i| ((i % 4) as u32, (i % 4) as u8, 60 + (i * 131) % 200))
        .collect();
    let mut ops = Vec::new();
    for round in 0..40u8 {
        ops.extend(std::iter::repeat_n(0, 5)); // arrivals
        ops.push(6 + (round % 3)); // two completions, rotating replicas
        ops.push(6 + ((round + 1) % 3));
    }
    for kind in LEGACY_POLICIES {
        drive(kind, 3, 17, &requests, &ops);
    }
    // A deferring config tight enough that the burst actually defers.
    drive(
        GlobalPolicyKind::Deferred { max_outstanding: 2 },
        3,
        17,
        &requests,
        &ops,
    );
}

/// The legacy-policy arm of the tier and the spec router agree on the
/// `Display`-visible configuration too (guards the search-label seam).
#[test]
fn tier_reports_its_kind() {
    for kind in LEGACY_POLICIES {
        let tier = RoutingTier::new(kind, 2, 0, &[]);
        assert_eq!(tier.kind(), kind);
    }
}
