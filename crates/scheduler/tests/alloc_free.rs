//! Pins the allocation-free steady state of the batch-formation hot loop:
//! once scratch buffers and the slice pool have warmed up, a
//! `next_batch` / `complete_batch_into` / `recycle_batch` cycle must not
//! touch the heap.
//!
//! The counting allocator wraps the system allocator and counts **per
//! thread**, so the test-harness helper threads (output capture, the
//! main-thread waiter) cannot pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use vidur_core::time::SimTime;
use vidur_scheduler::{BatchPolicyKind, ReplicaScheduler, Request, SchedulerConfig};

struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: TLS may be unavailable during thread teardown; those
    // allocations are not ours to count anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// One decode iteration over every policy's steady state allocates nothing.
#[test]
fn steady_state_decode_loop_is_allocation_free() {
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        let mut s = ReplicaScheduler::new(SchedulerConfig::new(policy, 64), 100_000, 16);
        // Long decodes keep every request in the decode phase for the whole
        // measured window (finishing would hit slab/bookkeeping paths that
        // only matter at request exit).
        for i in 0..64u64 {
            s.add_request(Request::new(i, SimTime::ZERO, 64 + i, 5_000));
        }
        let mut events = Vec::new();
        // Warm-up: admissions, prefills, first decode rounds. This grows the
        // scratch buffers, the slice pool, and the event buffer to steady
        // capacity.
        for _ in 0..80 {
            let Some(batch) = s.next_batch() else { break };
            s.complete_batch_into(&batch, &mut events);
            s.recycle_batch(batch);
        }
        // Measured window: pure decode iterations.
        let before = allocations();
        for _ in 0..200 {
            let batch = s.next_batch().expect("decode batch");
            assert!(
                batch.slices().iter().all(|sl| !sl.is_prefill),
                "{policy}: warm-up must reach the decode phase"
            );
            s.complete_batch_into(&batch, &mut events);
            s.recycle_batch(batch);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "{policy}: {delta} heap allocations in 200 steady-state iterations"
        );
    }
}
