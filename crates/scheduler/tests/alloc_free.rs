//! Pins the allocation-free steady state of the batch-formation hot loop:
//! once scratch buffers and the slice pool have warmed up, a
//! `next_batch` / `complete_batch_into` / `recycle_batch` cycle must not
//! touch the heap.
//!
//! The counting allocator wraps the system allocator and counts **per
//! thread**, so the test-harness helper threads (output capture, the
//! main-thread waiter) cannot pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use vidur_core::time::SimTime;
use vidur_scheduler::{
    BatchPolicyKind, GlobalPolicyKind, ReplicaScheduler, Request, RouteRequest, RoutingTier,
    SchedulerConfig,
};

struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: TLS may be unavailable during thread teardown; those
    // allocations are not ours to count anyway.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// One decode iteration over every policy's steady state allocates nothing.
#[test]
fn steady_state_decode_loop_is_allocation_free() {
    for policy in [
        BatchPolicyKind::Vllm,
        BatchPolicyKind::OrcaPlus,
        BatchPolicyKind::SarathiServe { chunk_size: 512 },
        BatchPolicyKind::FasterTransformer,
        BatchPolicyKind::LightLlm,
    ] {
        let mut s = ReplicaScheduler::new(SchedulerConfig::new(policy, 64), 100_000, 16);
        // Long decodes keep every request in the decode phase for the whole
        // measured window (finishing would hit slab/bookkeeping paths that
        // only matter at request exit).
        for i in 0..64u64 {
            s.add_request(Request::new(i, SimTime::ZERO, 64 + i, 5_000));
        }
        let mut events = Vec::new();
        // Warm-up: admissions, prefills, first decode rounds. This grows the
        // scratch buffers, the slice pool, and the event buffer to steady
        // capacity.
        for _ in 0..80 {
            let Some(batch) = s.next_batch() else { break };
            s.complete_batch_into(&batch, &mut events);
            s.recycle_batch(batch);
        }
        // Measured window: pure decode iterations.
        let before = allocations();
        for _ in 0..200 {
            let batch = s.next_batch().expect("decode batch");
            assert!(
                batch.slices().iter().all(|sl| !sl.is_prefill),
                "{policy}: warm-up must reach the decode phase"
            );
            s.complete_batch_into(&batch, &mut events);
            s.recycle_batch(batch);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "{policy}: {delta} heap allocations in 200 steady-state iterations"
        );
    }
}

/// The steady-state routing path is allocation-free: once the tier's view,
/// stats table, and deferred ring have warmed up, a
/// `route` / `on_finished` / `next_ready` cycle must not touch the heap —
/// the `RouterView` replaced the seed's per-arrival outstanding-`Vec`
/// rebuild, and this pins it.
#[test]
fn steady_state_routing_is_allocation_free() {
    for kind in [
        GlobalPolicyKind::RoundRobin,
        GlobalPolicyKind::LeastOutstanding,
        GlobalPolicyKind::Random,
        GlobalPolicyKind::Deferred { max_outstanding: 3 },
        GlobalPolicyKind::PriorityAware { max_outstanding: 3 },
        GlobalPolicyKind::FairShare { max_outstanding: 3 },
        GlobalPolicyKind::Affinity { spill_margin: 2 },
    ] {
        let mut tier = RoutingTier::new(kind, 4, 7, &[2.0, 1.0, 1.0, 1.0]);
        let req = |key: u64| RouteRequest {
            key,
            tenant: (key % 4) as u32,
            priority: (key % 3) as u8,
            tokens: 100 + key % 50,
        };
        // Warm-up: grow the tenant tables and the deferred ring past their
        // steady sizes (deferring policies hold up to ~8 entries here).
        let mut key = 0u64;
        let mut inflight: Vec<(usize, u32, u64)> = Vec::with_capacity(64);
        let pump =
            |tier: &mut RoutingTier, key: &mut u64, inflight: &mut Vec<(usize, u32, u64)>| {
                for _ in 0..4 {
                    let r = req(*key);
                    *key += 1;
                    if let Some(target) = tier.route(r) {
                        inflight.push((target, r.tenant, r.tokens));
                    }
                }
                while inflight.len() > 8 {
                    let (replica, tenant, tokens) = inflight.remove(0);
                    tier.on_finished(replica, tenant, tokens);
                    while let Some((r, target)) = tier.next_ready() {
                        inflight.push((target, r.tenant, r.tokens));
                    }
                }
            };
        for _ in 0..50 {
            pump(&mut tier, &mut key, &mut inflight);
        }
        // Measured window: pure route/finish/drain cycles.
        let before = allocations();
        for _ in 0..200 {
            pump(&mut tier, &mut key, &mut inflight);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "{kind}: {delta} heap allocations in 200 steady-state routing cycles"
        );
    }
}
