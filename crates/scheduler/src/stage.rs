//! Replica stage scheduler: synchronous pipeline-parallel execution
//! tracking (paper §4.5, third tier).
//!
//! With PP degree `k`, a batch flows through `k` stages in order; a stage
//! can start a batch only after (a) the previous stage of the *same* batch
//! finished and (b) its own previous batch departed. The tracker computes
//! entry/exit times under both constraints and exposes pipeline-bubble
//! statistics (idle time while work exists upstream).

use serde::{Deserialize, Serialize};
use vidur_core::time::{SimDuration, SimTime};

/// Per-stage occupancy tracker for one replica's pipeline.
///
/// # Example
///
/// ```
/// use vidur_core::time::{SimDuration, SimTime};
/// use vidur_scheduler::PipelineTracker;
///
/// let mut p = PipelineTracker::new(2);
/// let d = SimDuration::from_millis(10);
/// let done1 = p.schedule(SimTime::ZERO, &[d, d]);
/// assert_eq!(done1.as_secs_f64(), 0.020);
/// // Second batch enters stage 0 at t=10ms (stage 0 frees), finishes 30ms.
/// let done2 = p.schedule(SimTime::ZERO + d, &[d, d]);
/// assert_eq!(done2.as_secs_f64(), 0.030);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTracker {
    busy_until: Vec<SimTime>,
    busy_time: Vec<SimDuration>,
    last_exit: Vec<SimTime>,
    bubble_time: SimDuration,
    batches: u64,
}

impl PipelineTracker {
    /// Creates a tracker for `num_stages` pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics if `num_stages == 0`.
    pub fn new(num_stages: usize) -> Self {
        assert!(num_stages > 0, "pipeline needs at least one stage");
        PipelineTracker {
            busy_until: vec![SimTime::ZERO; num_stages],
            busy_time: vec![SimDuration::ZERO; num_stages],
            last_exit: vec![SimTime::ZERO; num_stages],
            bubble_time: SimDuration::ZERO,
            batches: 0,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.busy_until.len()
    }

    /// Schedules a batch entering the pipeline at `start` with the given
    /// per-stage execution times; returns its final completion time.
    ///
    /// # Panics
    ///
    /// Panics if `stage_times.len()` does not match the stage count.
    pub fn schedule(&mut self, start: SimTime, stage_times: &[SimDuration]) -> SimTime {
        assert_eq!(
            stage_times.len(),
            self.num_stages(),
            "stage time vector length mismatch"
        );
        let mut t = start;
        for (s, &dur) in stage_times.iter().enumerate() {
            let enter = t.max(self.busy_until[s]);
            // Bubble: the stage sat idle between its last batch and this one
            // even though this batch existed upstream (only counted when the
            // stall came from waiting on upstream, i.e. enter > busy_until).
            if self.batches > 0 && enter > self.busy_until[s] && self.busy_until[s] > SimTime::ZERO
            {
                self.bubble_time += enter.duration_since(self.busy_until[s]);
            }
            let exit = enter + dur;
            self.busy_until[s] = exit;
            self.busy_time[s] += dur;
            self.last_exit[s] = exit;
            t = exit;
        }
        self.batches += 1;
        t
    }

    /// When stage 0 can next accept a batch.
    pub fn stage0_free_at(&self) -> SimTime {
        self.busy_until[0]
    }

    /// When the whole pipeline drains.
    pub fn drained_at(&self) -> SimTime {
        *self.busy_until.iter().max().expect("non-empty")
    }

    /// Cumulative busy time of stage `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn stage_busy_time(&self, s: usize) -> SimDuration {
        self.busy_time[s]
    }

    /// Total pipeline bubble (inter-batch stall) time accumulated across
    /// stages.
    pub fn bubble_time(&self) -> SimDuration {
        self.bubble_time
    }

    /// Batches scheduled so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_stage_serializes() {
        let mut p = PipelineTracker::new(1);
        let d1 = p.schedule(SimTime::ZERO, &[ms(10)]);
        assert_eq!(d1, SimTime::from_secs_f64(0.010));
        // Even if requested earlier, the stage is busy until 10ms.
        let d2 = p.schedule(SimTime::ZERO, &[ms(5)]);
        assert_eq!(d2, SimTime::from_secs_f64(0.015));
    }

    #[test]
    fn pipeline_overlaps_batches() {
        let mut p = PipelineTracker::new(2);
        let d1 = p.schedule(SimTime::ZERO, &[ms(10), ms(10)]);
        let d2 = p.schedule(SimTime::from_secs_f64(0.010), &[ms(10), ms(10)]);
        assert_eq!(d1, SimTime::from_secs_f64(0.020));
        // Batch 2 overlaps batch 1's stage-1 execution.
        assert_eq!(d2, SimTime::from_secs_f64(0.030));
    }

    #[test]
    fn imbalanced_stages_create_bubbles() {
        let mut p = PipelineTracker::new(2);
        // Stage 1 is 3x slower: stage 0 finishes batches faster than stage 1
        // accepts them — and stage 1 never stalls; stage-0-bound case is the
        // reverse. Use slow stage 0 so stage 1 stalls waiting for input.
        p.schedule(SimTime::ZERO, &[ms(30), ms(10)]);
        p.schedule(SimTime::from_secs_f64(0.030), &[ms(30), ms(10)]);
        // Stage 1 idle from t=40 to t=60 waiting on stage 0 => 20ms bubble.
        assert_eq!(p.bubble_time(), ms(20));
    }

    #[test]
    fn balanced_pipeline_has_no_bubbles() {
        let mut p = PipelineTracker::new(4);
        let times = [ms(10), ms(10), ms(10), ms(10)];
        let mut start = SimTime::ZERO;
        for _ in 0..10 {
            p.schedule(start, &times);
            start = p.stage0_free_at();
        }
        assert_eq!(p.bubble_time(), SimDuration::ZERO);
        assert_eq!(p.batches(), 10);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = PipelineTracker::new(2);
        p.schedule(SimTime::ZERO, &[ms(10), ms(20)]);
        p.schedule(SimTime::ZERO, &[ms(10), ms(20)]);
        assert_eq!(p.stage_busy_time(0), ms(20));
        assert_eq!(p.stage_busy_time(1), ms(40));
    }

    #[test]
    fn drained_at_is_max_stage() {
        let mut p = PipelineTracker::new(3);
        p.schedule(SimTime::ZERO, &[ms(5), ms(50), ms(5)]);
        assert_eq!(p.drained_at(), SimTime::from_secs_f64(0.060));
    }

    proptest! {
        #[test]
        fn completion_monotone_in_submission(
            times in proptest::collection::vec(1u64..50, 1..4),
            batches in proptest::collection::vec(0u64..100, 1..20),
        ) {
            let stage_times: Vec<SimDuration> = times.iter().map(|&t| ms(t)).collect();
            let mut p = PipelineTracker::new(stage_times.len());
            let mut starts: Vec<u64> = batches;
            starts.sort_unstable();
            let mut last_done = SimTime::ZERO;
            for s in starts {
                let done = p.schedule(SimTime::from_nanos(s * 1_000_000), &stage_times);
                prop_assert!(done >= last_done, "FIFO pipeline preserves order");
                last_done = done;
            }
        }

        #[test]
        fn throughput_bounded_by_slowest_stage(
            bottleneck in 10u64..50,
            n in 2u64..20,
        ) {
            let stage_times = [ms(5), ms(bottleneck), ms(5)];
            let mut p = PipelineTracker::new(3);
            let mut start = SimTime::ZERO;
            let mut done = SimTime::ZERO;
            for _ in 0..n {
                done = p.schedule(start, &stage_times);
                start = p.stage0_free_at();
            }
            // Steady-state: completion >= n * bottleneck.
            let min_total = ms(bottleneck) * n;
            prop_assert!(done.as_nanos() >= min_total.as_nanos());
        }
    }
}
