//! Executable specification of batch formation: the seed's straightforward
//! `ReplicaScheduler` implementation, kept in lockstep as a differential
//! oracle (extended, like the optimized scheduler, with priority-tiered
//! admission and priority-aware preemption — implemented here as naive
//! scans).
//!
//! [`ReferenceScheduler`] stores the running set as one admission-ordered
//! vector and re-derives everything per call — `Vec` allocations for each
//! phase filter, `contains`/`rposition`/`retain` scans, and a full re-sum of
//! the projected KV footprint — exactly like the pre-optimization scheduler.
//! It exists for two reasons:
//!
//! 1. **Differential testing**: `tests/formation_equivalence.rs` drives this
//!    and the optimized [`ReplicaScheduler`](crate::ReplicaScheduler) with
//!    identical inputs across all five policies and asserts byte-identical
//!    slice sequences, preemption counts, and block-manager state.
//! 2. **Benchmark baseline**: `vidur-bench`'s scheduler suite measures the
//!    optimized scheduler against this implementation in the same process,
//!    making the speedup claim hardware-independent and re-checkable in CI.
//!
//! Keep this module boring. Do not optimize it.

use crate::config::{BatchPolicyKind, SchedulerConfig};
use crate::memory::BlockManager;
use crate::replica::CompletionEvent;
use crate::request::{Request, RequestId, RequestPhase, TrackedRequest};
use crate::slab::IdSlab;
use std::collections::VecDeque;
use vidur_model::batch::{BatchComposition, RequestSlice};

/// The seed's replica scheduler: same policies, same decisions, naive data
/// structures. See the module docs.
#[derive(Debug, Clone)]
pub struct ReferenceScheduler {
    config: SchedulerConfig,
    blocks: BlockManager,
    requests: IdSlab<TrackedRequest>,
    waiting: VecDeque<RequestId>,
    /// Admitted requests in admission order (vLLM preempts from the back).
    running: Vec<RequestId>,
    preemptions: u64,
    completed: u64,
    /// Admissions that hit the prefix cache.
    prefix_hit_requests: u64,
    /// Prefill tokens skipped by prefix-cache hits.
    prefix_tokens_saved: u64,
    /// Per-tenant hit counts (index = tenant id; grows on demand).
    tenant_prefix_hits: Vec<u64>,
    /// Per-tenant tokens saved (index = tenant id; grows on demand).
    tenant_prefix_saved: Vec<u64>,
}

impl ReferenceScheduler {
    /// Creates a scheduler over `total_blocks` KV blocks of `block_size`
    /// tokens.
    pub fn new(config: SchedulerConfig, total_blocks: u64, block_size: u32) -> Self {
        ReferenceScheduler {
            blocks: BlockManager::new(total_blocks, block_size, config.watermark_frac),
            config,
            requests: IdSlab::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            preemptions: 0,
            completed: 0,
            prefix_hit_requests: 0,
            prefix_tokens_saved: 0,
            tenant_prefix_hits: Vec::new(),
            tenant_prefix_saved: Vec::new(),
        }
    }

    /// The KV block manager (read access for state comparison).
    pub fn blocks(&self) -> &BlockManager {
        &self.blocks
    }

    /// Arms the prefix-cache tier, mirroring
    /// [`ReplicaScheduler::arm_prefix_cache`](crate::ReplicaScheduler::arm_prefix_cache).
    ///
    /// # Panics
    ///
    /// Panics if any request was already added.
    pub fn arm_prefix_cache(&mut self) {
        assert!(
            self.requests.is_empty(),
            "prefix cache must be armed before any request is added"
        );
        self.blocks.arm_prefix_cache();
    }

    /// Admissions that hit the prefix cache so far.
    pub fn prefix_hit_requests(&self) -> u64 {
        self.prefix_hit_requests
    }

    /// Prefill tokens skipped by prefix-cache hits so far.
    pub fn prefix_tokens_saved(&self) -> u64 {
        self.prefix_tokens_saved
    }

    /// Per-tenant prefix-hit counts (index = tenant id; may be shorter than
    /// the tenant count — missing entries are zero).
    pub fn tenant_prefix_hits(&self) -> &[u64] {
        &self.tenant_prefix_hits
    }

    /// Per-tenant prefill tokens saved (index = tenant id; may be shorter
    /// than the tenant count — missing entries are zero).
    pub fn tenant_prefix_saved(&self) -> &[u64] {
        &self.tenant_prefix_saved
    }

    /// Enqueues an arriving request at the back of its priority tier
    /// (strict classes, FIFO within a class; plain FIFO when every request
    /// is priority 0).
    ///
    /// # Panics
    ///
    /// Panics if a request with the same id was already added.
    pub fn add_request(&mut self, req: Request) {
        let prev = self.requests.insert(req.id, TrackedRequest::new(req));
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.enqueue_waiting_back(req.id);
    }

    /// Enqueues a remotely-prefilled request (disaggregation handoff).
    ///
    /// # Panics
    ///
    /// Panics on duplicate ids or `already_decoded` out of range.
    pub fn add_remote_prefilled(&mut self, req: Request, already_decoded: u64) {
        assert!(
            already_decoded >= 1 && already_decoded <= req.decode_tokens,
            "remote prefill must have produced 1..=decode_tokens tokens"
        );
        let mut tracked = TrackedRequest::new(req);
        tracked.prefilled = req.prefill_tokens;
        tracked.decoded = already_decoded;
        let prev = self.requests.insert(req.id, tracked);
        assert!(prev.is_none(), "duplicate request id {}", req.id);
        self.enqueue_waiting_back(req.id);
    }

    /// Tier-ordered enqueue: insert at the back of the new request's own
    /// tier — after the last waiting request of the same or a more urgent
    /// class. Scanning from the rear keeps the uniform-priority case O(1)
    /// (a front scan would make deep-backlog setups quadratic and skew the
    /// benchmark baseline this scheduler provides); the position is
    /// identical either way on a tier-sorted queue.
    fn enqueue_waiting_back(&mut self, id: RequestId) {
        let p = self.requests[&id].spec.priority;
        let pos = self
            .waiting
            .iter()
            .rposition(|w| self.requests[w].spec.priority <= p)
            .map_or(0, |i| i + 1);
        self.waiting.insert(pos, id);
    }

    /// Naive preemption requeue: insert before the first waiting request of
    /// the same or a less urgent class (the front of the victim's own
    /// tier). Reduces to `push_front` when priorities are uniform.
    fn enqueue_waiting_front(&mut self, id: RequestId) {
        let p = self.requests[&id].spec.priority;
        let pos = self
            .waiting
            .iter()
            .position(|w| self.requests[w].spec.priority >= p)
            .unwrap_or(self.waiting.len());
        self.waiting.insert(pos, id);
    }

    fn admit_prefetched(&mut self) {
        while self.running.len() < self.config.max_batch_size {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let r = &self.requests[&id];
            if r.remaining_prefill() > 0 {
                break;
            }
            let need = r.cached_tokens() + 1;
            if !self.blocks.try_reserve(id, need) {
                break;
            }
            self.waiting.pop_front();
            self.running.push(id);
            self.requests.get_mut(&id).expect("tracked").phase = RequestPhase::Decoding;
        }
    }

    /// Requests waiting for admission.
    pub fn num_waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Requests admitted and unfinished.
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// All unfinished requests on this replica.
    pub fn outstanding(&self) -> usize {
        self.waiting.len() + self.running.len()
    }

    /// Total preemption-restarts so far.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Requests fully completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Forms the next batch, or `None` when nothing can run.
    pub fn next_batch(&mut self) -> Option<BatchComposition> {
        self.admit_prefetched();
        let slices = match self.config.policy {
            BatchPolicyKind::Vllm => self.vllm_batch(),
            BatchPolicyKind::OrcaPlus => self.orca_batch(),
            BatchPolicyKind::SarathiServe { chunk_size } => self.sarathi_batch(chunk_size),
            BatchPolicyKind::FasterTransformer => self.ft_batch(),
            BatchPolicyKind::LightLlm => self.lightllm_batch(),
        };
        if slices.is_empty() {
            None
        } else {
            Some(BatchComposition::new(slices))
        }
    }

    /// Applies the effects of a finished batch, returning per-request events.
    ///
    /// # Panics
    ///
    /// Panics if the batch references unknown requests.
    pub fn complete_batch(&mut self, batch: &BatchComposition) -> Vec<CompletionEvent> {
        let mut events = Vec::with_capacity(batch.num_requests());
        for slice in batch.slices() {
            let id = slice.request_id;
            let Some(req) = self.requests.get_mut(&id) else {
                panic!("batch completion for unknown request {id}");
            };
            req.inflight_tokens = 0;
            let mut ev = CompletionEvent {
                id,
                prefill_completed: false,
                produced_token: false,
                finished: false,
            };
            if slice.is_prefill {
                req.prefilled += slice.query_tokens;
                if req.prefill_complete() {
                    req.phase = RequestPhase::Decoding;
                    if req.decoded == 0 {
                        req.decoded = 1;
                        ev.prefill_completed = true;
                        ev.produced_token = true;
                    }
                    if req.finished() {
                        ev.finished = true;
                        self.finish(id);
                    }
                }
            } else {
                req.decoded += 1;
                ev.produced_token = true;
                if req.finished() {
                    ev.finished = true;
                    self.finish(id);
                }
            }
            events.push(ev);
        }
        events
    }

    fn finish(&mut self, id: RequestId) {
        self.blocks.release(id);
        self.running.retain(|&r| r != id);
        self.requests.remove(&id);
        self.completed += 1;
    }

    // The one deliberate deviation from the seed: requests needing no
    // prefill are refused (they belong to `admit_prefetched`), fixing the
    // seed's prefill-accounting underflow when a mid-call preemption frees
    // memory. `ReplicaScheduler::admit_front` documents the bug; the
    // optimized scheduler carries the same guard, so the two still agree.
    fn admit_front(&mut self, reserve_tokens: u64) -> Option<RequestId> {
        let &id = self.waiting.front()?;
        if self.requests[&id].remaining_prefill() == 0 {
            return None;
        }
        let spec = self.requests[&id].spec;
        let hit = self.blocks.try_reserve_prefixed(
            id,
            reserve_tokens,
            spec.prefix_id,
            spec.prefill_tokens,
            spec.prefix_len,
        )?;
        self.waiting.pop_front();
        self.running.push(id);
        let req = self.requests.get_mut(&id).expect("tracked");
        req.phase = RequestPhase::Prefilling;
        if hit > 0 {
            debug_assert!(hit < spec.prefill_tokens, "a hit leaves prefill work");
            req.prefilled = hit;
            self.prefix_hit_requests += 1;
            self.prefix_tokens_saved += hit;
            let idx = spec.tenant as usize;
            if idx >= self.tenant_prefix_hits.len() {
                self.tenant_prefix_hits.resize(idx + 1, 0);
                self.tenant_prefix_saved.resize(idx + 1, 0);
            }
            self.tenant_prefix_hits[idx] += 1;
            self.tenant_prefix_saved[idx] += hit;
        }
        Some(id)
    }

    fn preempt_one(&mut self, protect: RequestId) -> bool {
        // Victim choice: the least urgent (numerically highest) priority
        // class first, latest-admitted within the class. `running` is in
        // admission order, so `max_by_key` over (priority, position) — with
        // uniform priorities this is exactly the seed's `rposition`.
        let victim_pos = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, &id)| id != protect && self.requests[&id].inflight_tokens == 0)
            .max_by_key(|(pos, &id)| (self.requests[&id].spec.priority, *pos))
            .map(|(pos, _)| pos);
        let Some(pos) = victim_pos else {
            return false;
        };
        let victim = self.running.remove(pos);
        self.blocks.release(victim);
        let req = self.requests.get_mut(&victim).expect("tracked");
        req.restart();
        self.enqueue_waiting_front(victim);
        self.preemptions += 1;
        true
    }

    fn grow_or_preempt(&mut self, id: RequestId) -> bool {
        let target = self.requests[&id].cached_tokens() + 1;
        loop {
            if self.blocks.try_grow(id, target) {
                return true;
            }
            if !self.preempt_one(id) {
                self.running.retain(|&r| r != id);
                self.blocks.release(id);
                let req = self.requests.get_mut(&id).expect("tracked");
                req.restart();
                self.enqueue_waiting_front(id);
                self.preemptions += 1;
                return false;
            }
        }
    }

    fn mark_inflight(&mut self, id: RequestId, tokens: u64) {
        self.requests.get_mut(&id).expect("tracked").inflight_tokens = tokens;
    }

    fn schedulable_decodes(&self) -> Vec<RequestId> {
        self.running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Decoding && r.inflight_tokens == 0 && !r.finished()
            })
            .collect()
    }

    fn collect_decodes(&mut self, limit: usize, slices: &mut Vec<RequestSlice>) {
        for id in self.schedulable_decodes() {
            if slices.len() >= limit {
                break;
            }
            if !self.running.contains(&id) {
                continue;
            }
            if !self.grow_or_preempt(id) {
                continue;
            }
            let cached = self.requests[&id].cached_tokens();
            slices.push(RequestSlice::decode(id, cached));
            self.mark_inflight(id, 1);
        }
    }

    fn vllm_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let mut slices = Vec::new();
        let mut tokens = 0u64;
        while self.running.len() < self.config.max_batch_size {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            // Re-read after admission: a prefix-cache hit set `prefilled`,
            // so only the un-cached prompt tail is computed (with no hit
            // this is exactly the `prefill(id, prompt, 0)` slice of old).
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += prompt;
        }
        if !slices.is_empty() {
            return slices;
        }
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        slices
    }

    fn orca_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut tokens = slices.len() as u64;
        while self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&id].spec.prefill_tokens;
            if tokens + prompt > budget {
                break;
            }
            if self.admit_front(prompt).is_none() {
                break;
            }
            // Post-admission re-read: prefix-cache hits shrink the slice.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += prompt;
        }
        slices
    }

    fn sarathi_batch(&mut self, chunk_size: u64) -> Vec<RequestSlice> {
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut budget = chunk_size.saturating_sub(slices.len() as u64);
        let partial: Vec<RequestId> = self
            .running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Prefilling && r.inflight_tokens == 0
            })
            .collect();
        for id in partial {
            if budget == 0 || slices.len() >= self.config.max_batch_size {
                break;
            }
            let r = &self.requests[&id];
            let take = r.remaining_prefill().min(budget);
            if take == 0 {
                continue;
            }
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            budget -= take;
        }
        while budget > 0
            && self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&front) = self.waiting.front() else {
                break;
            };
            let prompt = self.requests[&front].spec.prefill_tokens;
            let Some(id) = self.admit_front(prompt) else {
                break;
            };
            // Post-admission re-read: a prefix-cache hit starts the chunked
            // prefill at `prefilled` instead of 0.
            let r = &self.requests[&id];
            let take = r.remaining_prefill().min(budget);
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            budget -= take;
        }
        slices
    }

    fn ft_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        if self.running.is_empty() {
            while self.running.len() < self.config.max_batch_size {
                let Some(&id) = self.waiting.front() else {
                    break;
                };
                let total = self.requests[&id].spec.total_tokens();
                if self.admit_front(total).is_none() {
                    break;
                }
                let _ = id;
            }
        }
        let mut slices = Vec::new();
        let mut tokens = 0u64;
        let pending_prefill: Vec<RequestId> = self
            .running
            .iter()
            .copied()
            .filter(|id| {
                let r = &self.requests[id];
                r.phase == RequestPhase::Prefilling && r.inflight_tokens == 0
            })
            .collect();
        for id in pending_prefill {
            // `remaining_prefill` equals the full prompt unless a prefix-
            // cache hit pre-filled the shared head at cohort admission.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            let cached = r.prefilled;
            if tokens + take > budget && tokens > 0 {
                break;
            }
            slices.push(RequestSlice::prefill(id, take, cached));
            self.mark_inflight(id, take);
            tokens += take;
        }
        if !slices.is_empty() {
            return slices;
        }
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        slices
    }

    fn lightllm_batch(&mut self) -> Vec<RequestSlice> {
        let budget = self.config.token_budget();
        let capacity_tokens = self.blocks.total_blocks() * self.blocks.block_size() as u64;
        let mut slices = Vec::new();
        self.collect_decodes(self.config.max_batch_size, &mut slices);
        let mut tokens = slices.len() as u64;
        let mut projected: u64 = self
            .running
            .iter()
            .map(|id| self.requests[id].spec.total_tokens())
            .sum();
        while self.running.len() < self.config.max_batch_size
            && slices.len() < self.config.max_batch_size
        {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let spec = self.requests[&id].spec;
            if tokens + spec.prefill_tokens > budget {
                break;
            }
            if projected + spec.total_tokens() > capacity_tokens {
                break;
            }
            if self.admit_front(spec.prefill_tokens).is_none() {
                break;
            }
            // Post-admission re-read: prefix-cache hits shrink the slice.
            let r = &self.requests[&id];
            let take = r.remaining_prefill();
            slices.push(RequestSlice::prefill(id, take, r.prefilled));
            self.mark_inflight(id, take);
            tokens += spec.prefill_tokens;
            projected += spec.total_tokens();
        }
        slices
    }
}
