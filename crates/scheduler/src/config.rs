//! Replica-scheduler configuration.

use serde::{Deserialize, Serialize};

/// The iteration-level batching policy (paper §4.5 lists exactly these five;
/// §7.3 evaluates vLLM, Orca+ and Sarathi-Serve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchPolicyKind {
    /// vLLM: prefill-prioritizing — eagerly schedules prefills (pausing
    /// decodes) to maximize batch size; preempts by recompute on OOM.
    Vllm,
    /// Orca+: iteration-level continuous batching over vLLM's paged
    /// attention; mixes full prefills with ongoing decodes.
    OrcaPlus,
    /// Sarathi-Serve: hybrid batches with *chunked* prefills under a strict
    /// per-iteration token budget, so decodes are never paused.
    SarathiServe {
        /// Token budget per iteration (the paper sweeps 512 / 1024 / 2048).
        chunk_size: u64,
    },
    /// FasterTransformer: request-level (cohort) batching, decode
    /// prioritizing — a batch runs to completion before new admissions.
    FasterTransformer,
    /// LightLLM: continuous batching with token-level admission control
    /// (admission bounded by projected total KV footprint).
    LightLlm,
}

impl BatchPolicyKind {
    /// Short stable identifier for reports.
    pub fn id(&self) -> &'static str {
        match self {
            BatchPolicyKind::Vllm => "vllm",
            BatchPolicyKind::OrcaPlus => "orca+",
            BatchPolicyKind::SarathiServe { .. } => "sarathi-serve",
            BatchPolicyKind::FasterTransformer => "faster-transformer",
            BatchPolicyKind::LightLlm => "lightllm",
        }
    }
}

impl std::fmt::Display for BatchPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchPolicyKind::SarathiServe { chunk_size } => {
                write!(f, "sarathi-serve(chunk={chunk_size})")
            }
            other => f.write_str(other.id()),
        }
    }
}

/// Default per-iteration token cap for vLLM/Orca+ (paper §7.3: "vLLM and
/// Orca+ have a limit of maximum 4096 tokens per iteration").
pub const DEFAULT_MAX_TOKENS_PER_ITER: u64 = 4096;

/// Default KV watermark fraction (vLLM's `watermark` default).
pub const DEFAULT_WATERMARK_FRAC: f64 = 0.01;

/// Complete replica-scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Batching policy.
    pub policy: BatchPolicyKind,
    /// Maximum sequences per batch (paper sweeps 32..512).
    pub max_batch_size: usize,
    /// Maximum tokens per iteration for prefill-admitting policies.
    pub max_tokens_per_iter: u64,
    /// KV watermark fraction kept free during admission.
    pub watermark_frac: f64,
}

impl SchedulerConfig {
    /// Creates a configuration with paper-default token caps.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_size == 0`.
    pub fn new(policy: BatchPolicyKind, max_batch_size: usize) -> Self {
        assert!(max_batch_size > 0, "batch size must be positive");
        SchedulerConfig {
            policy,
            max_batch_size,
            max_tokens_per_iter: DEFAULT_MAX_TOKENS_PER_ITER,
            watermark_frac: DEFAULT_WATERMARK_FRAC,
        }
    }

    /// The per-iteration token budget this policy enforces: the chunk size
    /// for Sarathi-Serve, the global cap otherwise.
    pub fn token_budget(&self) -> u64 {
        match self.policy {
            BatchPolicyKind::SarathiServe { chunk_size } => chunk_size,
            _ => self.max_tokens_per_iter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_budget_follows_policy() {
        let s = SchedulerConfig::new(BatchPolicyKind::SarathiServe { chunk_size: 512 }, 64);
        assert_eq!(s.token_budget(), 512);
        let v = SchedulerConfig::new(BatchPolicyKind::Vllm, 64);
        assert_eq!(v.token_budget(), 4096);
    }

    #[test]
    fn display_ids() {
        assert_eq!(BatchPolicyKind::Vllm.to_string(), "vllm");
        assert_eq!(
            BatchPolicyKind::SarathiServe { chunk_size: 1024 }.to_string(),
            "sarathi-serve(chunk=1024)"
        );
        assert_eq!(BatchPolicyKind::OrcaPlus.id(), "orca+");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        SchedulerConfig::new(BatchPolicyKind::Vllm, 0);
    }
}
