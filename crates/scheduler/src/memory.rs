//! Paged KV-cache block manager (paper §4.5 "memory planner ... memory
//! manager" — the PagedAttention allocation model of vLLM).
//!
//! Tokens are stored in fixed-size blocks; a request holds
//! `ceil(cached_tokens / block_size)` blocks. The manager enforces a
//! watermark: admissions must leave a configurable fraction of blocks free
//! so in-flight decodes can grow without immediate preemption.

use crate::request::{RequestId, NO_PREFIX};
use serde::{Deserialize, Serialize};

/// One reference-counted cached prefix: the first `tokens` tokens (always a
/// whole number of blocks) of every request carrying `key`. The blocks are
/// counted in [`BlockManager::used_blocks`] but owned by the cache tier, not
/// by any request; `refs` counts the live requests currently reading them,
/// and entries with `refs == 0` stay resident until LRU eviction reclaims
/// them under memory pressure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PrefixEntry {
    key: u64,
    /// Cached prefix length in tokens (a multiple of the block size).
    tokens: u64,
    /// Blocks the entry owns (`tokens / block_size`).
    blocks: u64,
    /// Live borrowers; only `refs == 0` entries are evictable.
    refs: u64,
    /// Last-touch sequence number for LRU ordering.
    lru: u64,
}

/// Paged KV-cache accounting for one replica.
///
/// # Example
///
/// ```
/// use vidur_scheduler::BlockManager;
/// let mut m = BlockManager::new(100, 16, 0.01);
/// assert!(m.try_reserve(1, 64)); // 4 blocks for 64 tokens
/// assert_eq!(m.free_blocks(), 96);
/// m.release(1);
/// assert_eq!(m.free_blocks(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockManager {
    total_blocks: u64,
    block_size: u32,
    watermark_blocks: u64,
    /// Blocks held per request, indexed densely by request id (0 = not a
    /// holder; a holder always owns ≥ 1 block since requests are non-empty).
    /// Request ids are dense trace indices, so this trades a bounded id-range
    /// vector for allocation-free reserve/grow/release on the per-batch hot
    /// path (the seed's `BTreeMap` allocated a node per admission).
    held: Vec<u64>,
    holders: usize,
    used_blocks: u64,
    /// Whether the prefix-cache tier is armed. All prefix state below stays
    /// empty (and every hot path byte-identical to the pre-prefix manager)
    /// while this is `false`.
    prefix_armed: bool,
    /// Cached prefix entries. A linear scan: real runs share a handful of
    /// system prompts, not thousands.
    prefix_entries: Vec<PrefixEntry>,
    /// LRU clock for [`PrefixEntry::lru`].
    prefix_lru_seq: u64,
    /// Per-request borrowed entry key (`NO_PREFIX` = not borrowing),
    /// id-indexed like `held`. Tracks which entry [`release`](Self::release)
    /// must dereference, exactly once.
    borrow: Vec<u64>,
}

impl BlockManager {
    /// Creates a manager over `total_blocks` blocks of `block_size` tokens,
    /// keeping `watermark_frac` of blocks free during admission.
    ///
    /// # Panics
    ///
    /// Panics if `total_blocks == 0`, `block_size == 0`, or the watermark is
    /// outside `[0, 1)`.
    pub fn new(total_blocks: u64, block_size: u32, watermark_frac: f64) -> Self {
        assert!(total_blocks > 0, "need at least one KV block");
        assert!(block_size > 0, "block size must be positive");
        assert!(
            (0.0..1.0).contains(&watermark_frac),
            "watermark must be in [0, 1)"
        );
        let watermark_blocks = ((total_blocks as f64 * watermark_frac).ceil() as u64)
            .min(total_blocks.saturating_sub(1));
        BlockManager {
            total_blocks,
            block_size,
            watermark_blocks,
            held: Vec::new(),
            holders: 0,
            used_blocks: 0,
            prefix_armed: false,
            prefix_entries: Vec::new(),
            prefix_lru_seq: 0,
            borrow: Vec::new(),
        }
    }

    /// Arms the prefix-cache tier. Requests admitted with a prefix key after
    /// this share reference-counted cached prefix blocks; a disarmed manager
    /// is byte-identical to one built before the tier existed.
    pub fn arm_prefix_cache(&mut self) {
        self.prefix_armed = true;
    }

    /// Whether the prefix-cache tier is armed.
    pub fn prefix_cache_armed(&self) -> bool {
        self.prefix_armed
    }

    /// Sets `id`'s held-block count, keeping the holder count in sync.
    fn set_held(&mut self, id: RequestId, blocks: u64) {
        let idx = id as usize;
        if idx >= self.held.len() {
            self.held.resize(idx + 1, 0);
        }
        let prev = self.held[idx];
        self.held[idx] = blocks;
        match (prev, blocks) {
            (0, b) if b > 0 => self.holders += 1,
            (p, 0) if p > 0 => self.holders -= 1,
            _ => {}
        }
    }

    /// Total blocks under management.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Tokens per block.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.used_blocks
    }

    /// Currently used blocks.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Fraction of blocks in use.
    pub fn utilization(&self) -> f64 {
        self.used_blocks as f64 / self.total_blocks as f64
    }

    /// Blocks needed to cache `tokens` tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size as u64)
    }

    /// Blocks currently held by `id`.
    pub fn held_by(&self, id: RequestId) -> u64 {
        self.held.get(id as usize).copied().unwrap_or(0)
    }

    /// Whether an *admission* reserving blocks for `tokens` tokens would
    /// succeed while respecting the watermark.
    pub fn can_admit(&self, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        self.free_blocks() >= need + self.watermark_blocks
    }

    /// Reserves blocks so `id` holds capacity for `total_tokens` cached
    /// tokens (admission path; respects the watermark). Returns `false`
    /// without side effects if memory is insufficient — after evicting
    /// unreferenced cached prefixes when the prefix tier is armed.
    pub fn try_reserve(&mut self, id: RequestId, total_tokens: u64) -> bool {
        let target = self.blocks_for(total_tokens);
        let current = self.held_by(id);
        if target <= current {
            return true;
        }
        let need = target - current;
        if !self.ensure_free(need + self.watermark_blocks) {
            return false;
        }
        self.used_blocks += need;
        self.set_held(id, target);
        true
    }

    /// Prefix-aware admission reserve: like [`try_reserve`](Self::try_reserve)
    /// for `total_tokens`, but when the prefix tier is armed and the request
    /// carries a prefix (`key != NO_PREFIX`, declared length `prefix_len` of
    /// its `prefill_tokens`-token prompt):
    ///
    /// - **Hit** (key already cached): the request borrows the entry's blocks
    ///   instead of reserving its own for them, and the returned token count
    ///   (> 0, whole blocks, always leaving at least one prefill token to
    ///   compute) is the prefill prefix admission may skip.
    /// - **Miss**: the full footprint is reserved and the aligned prefix
    ///   blocks are donated to a new cache entry so later arrivals hit.
    ///   Returns `Some(0)` — the first request computes its whole prefill.
    ///
    /// Returns `None` without side effects if memory is insufficient even
    /// after evicting every unreferenced cached prefix.
    pub fn try_reserve_prefixed(
        &mut self,
        id: RequestId,
        total_tokens: u64,
        key: u64,
        prefill_tokens: u64,
        prefix_len: u64,
    ) -> Option<u64> {
        if !self.prefix_armed || key == NO_PREFIX {
            return self.try_reserve(id, total_tokens).then_some(0);
        }
        debug_assert_eq!(self.borrowed_key(id), NO_PREFIX, "request already borrows");
        let bs = self.block_size as u64;
        let Some(pos) = self.entry_pos(key) else {
            // Miss: reserve in full, then carve the cache entry out of the
            // request's own footprint (used_blocks is unchanged by the
            // donation — ownership moves, capacity does not).
            if !self.try_reserve(id, total_tokens) {
                return None;
            }
            let aligned = prefix_len.min(prefill_tokens) / bs * bs;
            let blocks = aligned / bs;
            if blocks == 0 {
                return Some(0);
            }
            let held = self.held_by(id);
            debug_assert!(blocks <= held, "prefix cannot exceed the reservation");
            self.set_held(id, held - blocks);
            self.prefix_lru_seq += 1;
            self.prefix_entries.push(PrefixEntry {
                key,
                tokens: aligned,
                blocks,
                refs: 1,
                lru: self.prefix_lru_seq,
            });
            self.set_borrow(id, key);
            return Some(0);
        };
        let hit = self.hit_tokens(self.prefix_entries[pos].tokens, prefill_tokens);
        if hit == 0 {
            // Known key but unusable (sub-block prefix or one-token prompt).
            return self.try_reserve(id, total_tokens).then_some(0);
        }
        // Protect the entry from LRU eviction while we make room.
        self.prefix_entries[pos].refs += 1;
        let target = self.blocks_for(total_tokens).saturating_sub(hit / bs);
        let current = self.held_by(id);
        let need = target.saturating_sub(current);
        if !self.ensure_free(need + self.watermark_blocks) {
            let pos = self.entry_pos(key).expect("referenced entries never evict");
            self.prefix_entries[pos].refs -= 1;
            return None;
        }
        self.used_blocks += need;
        self.set_held(id, target.max(current));
        self.prefix_lru_seq += 1;
        let pos = self.entry_pos(key).expect("referenced entries never evict");
        self.prefix_entries[pos].lru = self.prefix_lru_seq;
        self.set_borrow(id, key);
        Some(hit)
    }

    /// Grows `id`'s reservation to `total_tokens` cached tokens on the
    /// *decode* path — watermark does not apply (watermark exists precisely
    /// to serve these growths), and tokens covered by a borrowed cached
    /// prefix need no blocks of the request's own. Returns `false` if truly
    /// out of blocks, even after evicting unreferenced cached prefixes.
    pub fn try_grow(&mut self, id: RequestId, total_tokens: u64) -> bool {
        let target = self
            .blocks_for(total_tokens)
            .saturating_sub(self.borrowed_blocks(id));
        let current = self.held_by(id);
        if target <= current {
            return true;
        }
        let need = target - current;
        if !self.ensure_free(need) {
            return false;
        }
        self.used_blocks += need;
        self.set_held(id, target);
        true
    }

    /// Releases all blocks held by `id` (request finished or preempted) and
    /// drops its cached-prefix reference, if any — the entry itself stays
    /// resident (LRU-evictable once unreferenced) so future arrivals hit.
    pub fn release(&mut self, id: RequestId) {
        let blocks = self.held_by(id);
        if blocks > 0 {
            debug_assert!(self.used_blocks >= blocks);
            self.used_blocks -= blocks;
            self.set_held(id, 0);
        }
        let key = self.borrowed_key(id);
        if key != NO_PREFIX {
            self.borrow[id as usize] = NO_PREFIX;
            let pos = self.entry_pos(key).expect("borrowed entries never evict");
            let e = &mut self.prefix_entries[pos];
            debug_assert!(e.refs > 0, "borrow without a reference");
            e.refs -= 1;
        }
    }

    /// Number of requests currently holding blocks.
    pub fn num_holders(&self) -> usize {
        self.holders
    }

    /// Expected prefix-cache hit, in tokens, for a request carrying prefix
    /// `key` with a `prefill_tokens`-token prompt — the leading prefill
    /// tokens admission would skip right now. Zero when the tier is
    /// disarmed, the key is unknown, or the cached prefix is shorter than
    /// one block. Routing uses this to publish per-replica cached-prefix
    /// state without mutating anything.
    pub fn prefix_cached_tokens(&self, key: u64, prefill_tokens: u64) -> u64 {
        if !self.prefix_armed || key == NO_PREFIX {
            return 0;
        }
        match self.entry_pos(key) {
            Some(pos) => self.hit_tokens(self.prefix_entries[pos].tokens, prefill_tokens),
            None => 0,
        }
    }

    /// Blocks owned by cached prefix entries (referenced or not).
    pub fn prefix_cached_blocks(&self) -> u64 {
        self.prefix_entries.iter().map(|e| e.blocks).sum()
    }

    /// Number of resident cached prefix entries.
    pub fn num_prefix_entries(&self) -> usize {
        self.prefix_entries.len()
    }

    /// Drops every unreferenced cached prefix entry, reclaiming its blocks.
    /// The crash-eviction path: after a replica releases all of its
    /// requests, this returns the manager to zero used blocks.
    pub fn evict_cached_prefixes(&mut self) {
        let mut freed = 0;
        self.prefix_entries.retain(|e| {
            if e.refs == 0 {
                freed += e.blocks;
                false
            } else {
                true
            }
        });
        debug_assert!(self.used_blocks >= freed);
        self.used_blocks -= freed;
    }

    /// Leading tokens a hit may skip: capped one short of the full prefill
    /// (at least one prefill token must still be computed) and rounded down
    /// to whole blocks.
    fn hit_tokens(&self, entry_tokens: u64, prefill_tokens: u64) -> u64 {
        let bs = self.block_size as u64;
        entry_tokens.min(prefill_tokens.saturating_sub(1)) / bs * bs
    }

    /// Ensures at least `required` free blocks, evicting unreferenced cached
    /// prefixes in LRU order when the tier is armed. Returns whether the
    /// requirement is met.
    fn ensure_free(&mut self, required: u64) -> bool {
        if self.free_blocks() >= required {
            return true;
        }
        if !self.prefix_armed {
            return false;
        }
        while self.free_blocks() < required {
            let victim = self
                .prefix_entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i);
            let Some(i) = victim else {
                return false;
            };
            let evicted = self.prefix_entries.swap_remove(i);
            debug_assert!(self.used_blocks >= evicted.blocks);
            self.used_blocks -= evicted.blocks;
        }
        true
    }

    /// The cache-entry key `id` currently borrows (`NO_PREFIX` if none).
    fn borrowed_key(&self, id: RequestId) -> u64 {
        self.borrow.get(id as usize).copied().unwrap_or(NO_PREFIX)
    }

    /// Blocks `id` reads from a borrowed cached prefix (0 when not
    /// borrowing).
    pub fn borrowed_blocks(&self, id: RequestId) -> u64 {
        let key = self.borrowed_key(id);
        if key == NO_PREFIX {
            return 0;
        }
        let pos = self.entry_pos(key).expect("borrowed entries never evict");
        self.prefix_entries[pos].blocks
    }

    fn set_borrow(&mut self, id: RequestId, key: u64) {
        let idx = id as usize;
        if idx >= self.borrow.len() {
            self.borrow.resize(idx + 1, NO_PREFIX);
        }
        self.borrow[idx] = key;
    }

    fn entry_pos(&self, key: u64) -> Option<usize> {
        self.prefix_entries.iter().position(|e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_and_release_balance() {
        let mut m = BlockManager::new(10, 16, 0.0);
        assert!(m.try_reserve(1, 32)); // 2 blocks
        assert!(m.try_reserve(2, 100)); // 7 blocks
        assert_eq!(m.used_blocks(), 9);
        assert!(!m.try_reserve(3, 32)); // needs 2, only 1 free
        m.release(1);
        assert!(m.try_reserve(3, 32));
        m.release(2);
        m.release(3);
        assert_eq!(m.used_blocks(), 0);
        assert_eq!(m.num_holders(), 0);
    }

    #[test]
    fn watermark_blocks_admission_but_not_growth() {
        // 10 blocks, 20% watermark => admissions must leave 2 free.
        let mut m = BlockManager::new(10, 16, 0.2);
        assert!(m.try_reserve(1, 16 * 8)); // 8 blocks: leaves 2 => ok
        assert!(!m.try_reserve(2, 16)); // would leave 1 < watermark
                                        // But decode growth can dip into the watermark.
        assert!(m.try_grow(1, 16 * 9));
        assert_eq!(m.free_blocks(), 1);
        assert!(m.try_grow(1, 16 * 10));
        assert!(!m.try_grow(1, 16 * 11));
    }

    #[test]
    fn grow_is_incremental() {
        let mut m = BlockManager::new(10, 16, 0.0);
        assert!(m.try_reserve(1, 16));
        assert_eq!(m.held_by(1), 1);
        // Same block covers tokens 1..=16; token 17 needs another.
        assert!(m.try_grow(1, 16));
        assert_eq!(m.held_by(1), 1);
        assert!(m.try_grow(1, 17));
        assert_eq!(m.held_by(1), 2);
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut m = BlockManager::new(10, 16, 0.0);
        m.release(42);
        assert_eq!(m.used_blocks(), 0);
    }

    #[test]
    fn can_admit_matches_try_reserve() {
        let mut m = BlockManager::new(10, 16, 0.1);
        assert_eq!(m.can_admit(100), m.try_reserve(1, 100));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut m = BlockManager::new(10, 16, 0.0);
        m.try_reserve(1, 16 * 5);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn never_over_allocates(
            ops in proptest::collection::vec((0u64..20, 1u64..500, proptest::bool::ANY), 0..200)
        ) {
            let mut m = BlockManager::new(50, 16, 0.05);
            for (id, tokens, grow) in ops {
                if grow {
                    m.try_grow(id, tokens);
                } else if m.held_by(id) == 0 {
                    m.try_reserve(id, tokens);
                } else {
                    m.release(id);
                }
                prop_assert!(m.used_blocks() <= m.total_blocks());
                // Internal consistency: held sum == used.
                let held_sum: u64 = (0..20).map(|i| m.held_by(i)).sum();
                prop_assert_eq!(held_sum, m.used_blocks());
            }
        }
    }
}
