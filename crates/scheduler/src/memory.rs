//! Paged KV-cache block manager (paper §4.5 "memory planner ... memory
//! manager" — the PagedAttention allocation model of vLLM).
//!
//! Tokens are stored in fixed-size blocks; a request holds
//! `ceil(cached_tokens / block_size)` blocks. The manager enforces a
//! watermark: admissions must leave a configurable fraction of blocks free
//! so in-flight decodes can grow without immediate preemption.

use crate::request::RequestId;
use serde::{Deserialize, Serialize};

/// Paged KV-cache accounting for one replica.
///
/// # Example
///
/// ```
/// use vidur_scheduler::BlockManager;
/// let mut m = BlockManager::new(100, 16, 0.01);
/// assert!(m.try_reserve(1, 64)); // 4 blocks for 64 tokens
/// assert_eq!(m.free_blocks(), 96);
/// m.release(1);
/// assert_eq!(m.free_blocks(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockManager {
    total_blocks: u64,
    block_size: u32,
    watermark_blocks: u64,
    /// Blocks held per request, indexed densely by request id (0 = not a
    /// holder; a holder always owns ≥ 1 block since requests are non-empty).
    /// Request ids are dense trace indices, so this trades a bounded id-range
    /// vector for allocation-free reserve/grow/release on the per-batch hot
    /// path (the seed's `BTreeMap` allocated a node per admission).
    held: Vec<u64>,
    holders: usize,
    used_blocks: u64,
}

impl BlockManager {
    /// Creates a manager over `total_blocks` blocks of `block_size` tokens,
    /// keeping `watermark_frac` of blocks free during admission.
    ///
    /// # Panics
    ///
    /// Panics if `total_blocks == 0`, `block_size == 0`, or the watermark is
    /// outside `[0, 1)`.
    pub fn new(total_blocks: u64, block_size: u32, watermark_frac: f64) -> Self {
        assert!(total_blocks > 0, "need at least one KV block");
        assert!(block_size > 0, "block size must be positive");
        assert!(
            (0.0..1.0).contains(&watermark_frac),
            "watermark must be in [0, 1)"
        );
        let watermark_blocks = ((total_blocks as f64 * watermark_frac).ceil() as u64)
            .min(total_blocks.saturating_sub(1));
        BlockManager {
            total_blocks,
            block_size,
            watermark_blocks,
            held: Vec::new(),
            holders: 0,
            used_blocks: 0,
        }
    }

    /// Sets `id`'s held-block count, keeping the holder count in sync.
    fn set_held(&mut self, id: RequestId, blocks: u64) {
        let idx = id as usize;
        if idx >= self.held.len() {
            self.held.resize(idx + 1, 0);
        }
        let prev = self.held[idx];
        self.held[idx] = blocks;
        match (prev, blocks) {
            (0, b) if b > 0 => self.holders += 1,
            (p, 0) if p > 0 => self.holders -= 1,
            _ => {}
        }
    }

    /// Total blocks under management.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Tokens per block.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.used_blocks
    }

    /// Currently used blocks.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Fraction of blocks in use.
    pub fn utilization(&self) -> f64 {
        self.used_blocks as f64 / self.total_blocks as f64
    }

    /// Blocks needed to cache `tokens` tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size as u64)
    }

    /// Blocks currently held by `id`.
    pub fn held_by(&self, id: RequestId) -> u64 {
        self.held.get(id as usize).copied().unwrap_or(0)
    }

    /// Whether an *admission* reserving blocks for `tokens` tokens would
    /// succeed while respecting the watermark.
    pub fn can_admit(&self, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        self.free_blocks() >= need + self.watermark_blocks
    }

    /// Reserves blocks so `id` holds capacity for `total_tokens` cached
    /// tokens (admission path; respects the watermark). Returns `false`
    /// without side effects if memory is insufficient.
    pub fn try_reserve(&mut self, id: RequestId, total_tokens: u64) -> bool {
        let target = self.blocks_for(total_tokens);
        let current = self.held_by(id);
        if target <= current {
            return true;
        }
        let need = target - current;
        if self.free_blocks() < need + self.watermark_blocks {
            return false;
        }
        self.used_blocks += need;
        self.set_held(id, target);
        true
    }

    /// Grows `id`'s reservation to `total_tokens` cached tokens on the
    /// *decode* path — watermark does not apply (watermark exists precisely
    /// to serve these growths). Returns `false` if truly out of blocks.
    pub fn try_grow(&mut self, id: RequestId, total_tokens: u64) -> bool {
        let target = self.blocks_for(total_tokens);
        let current = self.held_by(id);
        if target <= current {
            return true;
        }
        let need = target - current;
        if self.free_blocks() < need {
            return false;
        }
        self.used_blocks += need;
        self.set_held(id, target);
        true
    }

    /// Releases all blocks held by `id` (request finished or preempted).
    pub fn release(&mut self, id: RequestId) {
        let blocks = self.held_by(id);
        if blocks > 0 {
            debug_assert!(self.used_blocks >= blocks);
            self.used_blocks -= blocks;
            self.set_held(id, 0);
        }
    }

    /// Number of requests currently holding blocks.
    pub fn num_holders(&self) -> usize {
        self.holders
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_and_release_balance() {
        let mut m = BlockManager::new(10, 16, 0.0);
        assert!(m.try_reserve(1, 32)); // 2 blocks
        assert!(m.try_reserve(2, 100)); // 7 blocks
        assert_eq!(m.used_blocks(), 9);
        assert!(!m.try_reserve(3, 32)); // needs 2, only 1 free
        m.release(1);
        assert!(m.try_reserve(3, 32));
        m.release(2);
        m.release(3);
        assert_eq!(m.used_blocks(), 0);
        assert_eq!(m.num_holders(), 0);
    }

    #[test]
    fn watermark_blocks_admission_but_not_growth() {
        // 10 blocks, 20% watermark => admissions must leave 2 free.
        let mut m = BlockManager::new(10, 16, 0.2);
        assert!(m.try_reserve(1, 16 * 8)); // 8 blocks: leaves 2 => ok
        assert!(!m.try_reserve(2, 16)); // would leave 1 < watermark
                                        // But decode growth can dip into the watermark.
        assert!(m.try_grow(1, 16 * 9));
        assert_eq!(m.free_blocks(), 1);
        assert!(m.try_grow(1, 16 * 10));
        assert!(!m.try_grow(1, 16 * 11));
    }

    #[test]
    fn grow_is_incremental() {
        let mut m = BlockManager::new(10, 16, 0.0);
        assert!(m.try_reserve(1, 16));
        assert_eq!(m.held_by(1), 1);
        // Same block covers tokens 1..=16; token 17 needs another.
        assert!(m.try_grow(1, 16));
        assert_eq!(m.held_by(1), 1);
        assert!(m.try_grow(1, 17));
        assert_eq!(m.held_by(1), 2);
    }

    #[test]
    fn release_unknown_is_noop() {
        let mut m = BlockManager::new(10, 16, 0.0);
        m.release(42);
        assert_eq!(m.used_blocks(), 0);
    }

    #[test]
    fn can_admit_matches_try_reserve() {
        let mut m = BlockManager::new(10, 16, 0.1);
        assert_eq!(m.can_admit(100), m.try_reserve(1, 100));
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut m = BlockManager::new(10, 16, 0.0);
        m.try_reserve(1, 16 * 5);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn never_over_allocates(
            ops in proptest::collection::vec((0u64..20, 1u64..500, proptest::bool::ANY), 0..200)
        ) {
            let mut m = BlockManager::new(50, 16, 0.05);
            for (id, tokens, grow) in ops {
                if grow {
                    m.try_grow(id, tokens);
                } else if m.held_by(id) == 0 {
                    m.try_reserve(id, tokens);
                } else {
                    m.release(id);
                }
                prop_assert!(m.used_blocks() <= m.total_blocks());
                // Internal consistency: held sum == used.
                let held_sum: u64 = (0..20).map(|i| m.held_by(i)).sum();
                prop_assert_eq!(held_sum, m.used_blocks());
            }
        }
    }
}
