//! Request lifecycle state.
//!
//! A request arrives with a prompt (`prefill_tokens`) and a known output
//! length (`decode_tokens` — traces record how many tokens each query
//! produced, so the simulator replays exact lengths). The first output token
//! is produced by the iteration that completes the prefill; each subsequent
//! decode iteration produces one more.

use serde::{Deserialize, Serialize};
use vidur_core::time::SimTime;

/// Unique request identifier.
pub type RequestId = u64;

/// Sentinel for "no request" in the scheduler's intrusive phase lists.
pub(crate) const NO_REQ: RequestId = RequestId::MAX;

/// Sentinel prefix id for requests that share no prefix (the default).
pub const NO_PREFIX: u64 = u64::MAX;

/// The immutable description of a request, as read from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Prompt length in tokens (must be ≥ 1).
    pub prefill_tokens: u64,
    /// Output length in tokens (must be ≥ 1; the first is produced at
    /// prefill completion).
    pub decode_tokens: u64,
    /// Tenant index, for per-tenant metrics attribution (scheduling itself
    /// is tenant-agnostic).
    pub tenant: u32,
    /// Priority class: 0 is the most urgent. Admission runs strict tiers —
    /// a lower class is always admitted before a higher one, FIFO within a
    /// class — and preemption evicts the highest class first.
    pub priority: u8,
    /// Shared-prefix identity: requests carrying the same id share their
    /// leading `prefix_len` prompt tokens (system prompt / template).
    /// [`NO_PREFIX`] when the request shares nothing.
    pub prefix_id: u64,
    /// Length of the shared prefix in tokens (`0` when `prefix_id` is
    /// [`NO_PREFIX`]; always ≤ `prefill_tokens` otherwise).
    pub prefix_len: u64,
}

impl Request {
    /// Creates a request (tenant 0, priority 0 — the single-tenant default).
    ///
    /// # Panics
    ///
    /// Panics if `prefill_tokens` or `decode_tokens` is zero.
    pub fn new(id: RequestId, arrival: SimTime, prefill_tokens: u64, decode_tokens: u64) -> Self {
        assert!(prefill_tokens > 0, "request {id} has empty prompt");
        assert!(decode_tokens > 0, "request {id} generates no tokens");
        Request {
            id,
            arrival,
            prefill_tokens,
            decode_tokens,
            tenant: 0,
            priority: 0,
            prefix_id: NO_PREFIX,
            prefix_len: 0,
        }
    }

    /// Declares a shared prefix (builder-style): this request's first `len`
    /// prompt tokens are identical across every request carrying `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id != NO_PREFIX` and `len` is zero or exceeds the prompt.
    pub fn with_prefix(mut self, id: u64, len: u64) -> Self {
        if id != NO_PREFIX {
            assert!(
                len >= 1 && len <= self.prefill_tokens,
                "request {} prefix length {len} outside 1..={}",
                self.id,
                self.prefill_tokens
            );
        }
        self.prefix_id = id;
        self.prefix_len = if id == NO_PREFIX { 0 } else { len };
        self
    }

    /// Sets the priority class (builder-style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant index (builder-style).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Total tokens the request will ever hold in KV-cache.
    pub fn total_tokens(&self) -> u64 {
        self.prefill_tokens + self.decode_tokens
    }
}

/// Where a request currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestPhase {
    /// Waiting in the replica queue (never started, or restarted).
    Waiting,
    /// Admitted; prompt partially or fully unprocessed.
    Prefilling,
    /// Prompt done; generating output tokens.
    Decoding,
    /// All output tokens produced.
    Finished,
}

/// Mutable per-request scheduling state tracked by a replica scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackedRequest {
    /// The immutable request description.
    pub spec: Request,
    /// Prompt tokens processed so far.
    pub prefilled: u64,
    /// Output tokens produced so far.
    pub decoded: u64,
    /// Lifecycle phase.
    pub phase: RequestPhase,
    /// Times this request was preempted and restarted (vLLM recompute).
    pub restarts: u32,
    /// Tokens queued in the *current in-flight batch* for this request
    /// (guards against double-scheduling).
    pub inflight_tokens: u64,
    /// Admission sequence number, assigned by the replica scheduler each
    /// time the request (re-)enters the running set. Orders the intrusive
    /// phase lists identically to the seed's single admission-ordered
    /// `running` vector.
    pub(crate) admit_seq: u64,
    /// Intrusive link: previous request in this request's phase list
    /// ([`NO_REQ`] at the head). Maintained by `ReplicaScheduler`.
    pub(crate) prev: RequestId,
    /// Intrusive link: next request in this request's phase list
    /// ([`NO_REQ`] at the tail).
    pub(crate) next: RequestId,
}

impl TrackedRequest {
    /// Wraps a fresh request in its initial state.
    pub fn new(spec: Request) -> Self {
        TrackedRequest {
            spec,
            prefilled: 0,
            decoded: 0,
            phase: RequestPhase::Waiting,
            restarts: 0,
            inflight_tokens: 0,
            admit_seq: 0,
            prev: NO_REQ,
            next: NO_REQ,
        }
    }

    /// KV tokens currently cached for this request.
    pub fn cached_tokens(&self) -> u64 {
        self.prefilled + self.decoded
    }

    /// Prompt tokens still to process.
    pub fn remaining_prefill(&self) -> u64 {
        self.spec.prefill_tokens - self.prefilled
    }

    /// Output tokens still to produce.
    pub fn remaining_decode(&self) -> u64 {
        self.spec.decode_tokens - self.decoded
    }

    /// Returns `true` once the prompt is fully processed.
    pub fn prefill_complete(&self) -> bool {
        self.prefilled == self.spec.prefill_tokens
    }

    /// Returns `true` when all output tokens are produced.
    pub fn finished(&self) -> bool {
        self.decoded == self.spec.decode_tokens
    }

    /// Resets processing state after a preemption-by-recompute: the KV cache
    /// is discarded and the prompt must be re-processed, but output tokens
    /// already *delivered* to the user are preserved and will be recomputed
    /// as part of the restarted prompt.
    pub fn restart(&mut self) {
        // On recompute, the already-generated tokens become part of the new
        // "prompt" work, but for simplicity (and matching Vidur's model) we
        // re-run the original prefill and continue decoding where we left
        // off; the decoded count is retained.
        self.prefilled = 0;
        self.phase = RequestPhase::Waiting;
        self.restarts += 1;
        self.inflight_tokens = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request::new(1, SimTime::ZERO, 100, 10)
    }

    #[test]
    fn lifecycle_accounting() {
        let mut t = TrackedRequest::new(req());
        assert_eq!(t.phase, RequestPhase::Waiting);
        assert_eq!(t.remaining_prefill(), 100);
        assert_eq!(t.cached_tokens(), 0);
        t.prefilled = 60;
        t.phase = RequestPhase::Prefilling;
        assert_eq!(t.remaining_prefill(), 40);
        assert!(!t.prefill_complete());
        t.prefilled = 100;
        t.decoded = 1;
        t.phase = RequestPhase::Decoding;
        assert!(t.prefill_complete());
        assert_eq!(t.cached_tokens(), 101);
        assert_eq!(t.remaining_decode(), 9);
        t.decoded = 10;
        assert!(t.finished());
    }

    #[test]
    fn restart_preserves_decoded_count() {
        let mut t = TrackedRequest::new(req());
        t.prefilled = 100;
        t.decoded = 5;
        t.phase = RequestPhase::Decoding;
        t.restart();
        assert_eq!(t.prefilled, 0);
        assert_eq!(t.decoded, 5);
        assert_eq!(t.phase, RequestPhase::Waiting);
        assert_eq!(t.restarts, 1);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn zero_prefill_rejected() {
        Request::new(1, SimTime::ZERO, 0, 1);
    }

    #[test]
    #[should_panic(expected = "generates no tokens")]
    fn zero_decode_rejected() {
        Request::new(1, SimTime::ZERO, 1, 0);
    }

    #[test]
    fn total_tokens() {
        assert_eq!(req().total_tokens(), 110);
    }
}
