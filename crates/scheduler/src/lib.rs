//! # vidur-scheduler
//!
//! Vidur's three-tier hierarchical scheduler (paper §4.5):
//!
//! 1. **Global scheduler** ([`global`], [`router`]) — routes arriving
//!    requests to replicas. [`router::RoutingTier`] is the live subsystem
//!    (seven policies over an incrementally-maintained replica view,
//!    deferred-queue bookkeeping, per-tenant routing stats);
//!    [`global::GlobalPolicy`] survives as the seed-faithful spec for the
//!    four original policies.
//! 2. **Replica scheduler** ([`replica`]) — forms batches each iteration and
//!    manages KV-cache memory through the paged [`memory::BlockManager`].
//!    Five batching policies are implemented, matching the paper's set:
//!    vLLM, Orca+, Sarathi-Serve (chunked prefills), FasterTransformer, and
//!    LightLLM.
//! 3. **Replica stage scheduler** ([`stage`]) — synchronous pipeline-parallel
//!    execution of a batch across stages with bubble accounting.
//!
//! The scheduler crate is pure bookkeeping: it decides *what* runs, while
//! runtime predictors decide *how long* it takes. The end-to-end simulator
//! (vidur-simulator) drives both from the event loop.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod global;
pub mod memory;
pub mod reference;
pub mod replica;
pub mod request;
pub mod router;
pub mod slab;
pub mod stage;

pub use config::{BatchPolicyKind, SchedulerConfig};
pub use global::{GlobalPolicy, GlobalPolicyKind};
pub use memory::BlockManager;
pub use reference::ReferenceScheduler;
pub use replica::ReplicaScheduler;
pub use request::{Request, RequestId, RequestPhase, TrackedRequest, NO_PREFIX};
pub use router::{
    DeferredEntry, ReplicaHealth, ReplicaLoad, RouteRequest, Router, RouterView, RoutingTier,
    TenantRouting,
};
pub use slab::IdSlab;
pub use stage::PipelineTracker;
