//! Dense id-indexed storage for per-request state.
//!
//! Request ids are dense trace indices in every driver, so the scheduler's
//! per-slice bookkeeping — one lookup per slice on both batch formation and
//! completion, the simulator's hottest non-prediction path — indexes a
//! vector instead of hashing. The API mirrors the `HashMap` subset it
//! replaces (`insert`/`get`/`get_mut`/`remove`/`len` plus `[&id]`), so it
//! is a drop-in swap; a sparse caller only pays empty-slot padding up to
//! its largest id.

use crate::request::RequestId;
use std::ops::Index;

/// A map from [`RequestId`] to `T` backed by a dense vector.
#[derive(Debug, Clone)]
pub struct IdSlab<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab::new()
    }
}

impl<T> IdSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IdSlab {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Inserts `value` under `id`, returning the previous value if any.
    pub fn insert(&mut self, id: RequestId, value: T) -> Option<T> {
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Borrows the value under `id`.
    pub fn get(&self, id: &RequestId) -> Option<&T> {
        self.slots.get(*id as usize).and_then(Option::as_ref)
    }

    /// Mutably borrows the value under `id`.
    pub fn get_mut(&mut self, id: &RequestId) -> Option<&mut T> {
        self.slots.get_mut(*id as usize).and_then(Option::as_mut)
    }

    /// Removes and returns the value under `id`.
    pub fn remove(&mut self, id: &RequestId) -> Option<T> {
        let removed = self.slots.get_mut(*id as usize).and_then(Option::take);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates occupied values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().flatten()
    }

    /// Iterates `(id, value)` pairs in ascending id order.
    pub fn entries(&self) -> impl Iterator<Item = (RequestId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i as RequestId, v)))
    }

    /// Drains the slab, yielding `(id, value)` pairs in ascending id order.
    pub fn drain_entries(&mut self) -> impl Iterator<Item = (RequestId, T)> + '_ {
        self.len = 0;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| v.take().map(|v| (i as RequestId, v)))
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Index<&RequestId> for IdSlab<T> {
    type Output = T;

    fn index(&self, id: &RequestId) -> &T {
        self.get(id).expect("no entry for request id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s: IdSlab<&str> = IdSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(5, "a"), None);
        assert_eq!(s.insert(0, "b"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&5), Some(&"a"));
        assert_eq!(s[&0], "b");
        assert_eq!(s.insert(5, "c"), Some("a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(&5), Some("c"));
        assert_eq!(s.remove(&5), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&99), None);
    }

    #[test]
    fn entries_and_drain_in_id_order() {
        let mut s: IdSlab<&str> = IdSlab::new();
        s.insert(4, "d");
        s.insert(1, "a");
        s.insert(2, "b");
        let pairs: Vec<_> = s.entries().collect();
        assert_eq!(pairs, vec![(1, &"a"), (2, &"b"), (4, &"d")]);
        let drained: Vec<_> = s.drain_entries().collect();
        assert_eq!(drained, vec![(1, "a"), (2, "b"), (4, "d")]);
        assert!(s.is_empty());
        assert_eq!(s.get(&1), None);
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn index_missing_panics() {
        let s: IdSlab<u32> = IdSlab::new();
        let _ = s[&3];
    }
}
